"""Benchmark configuration.

Each benchmark regenerates one of the paper's tables/figures at the
``bench`` scale (tiny datasets, single split, short budgets) so the whole
suite finishes on a laptop CPU.  Set ``REPRO_BENCH_SCALE=small`` (or
``paper``) to rerun them at larger scales.

Every benchmark prints the regenerated table and asserts the paper's
qualitative "shape" (who wins, trend directions); timings are captured by
pytest-benchmark as the cost of regenerating that artifact.
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture(scope="session")
def bench_scale() -> str:
    """Scale tier for benchmark runs (env-overridable)."""
    return os.environ.get("REPRO_BENCH_SCALE", "bench")


def run_once(benchmark, fn, *args, **kwargs):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
