"""Benchmark: engine caches cut repeated-fit and repeated-predict cost.

Two claims, both bit-exact by construction (content-addressed caches):

* the per-pair DTW memo makes epoch-style ``A_dtw^train`` rebuilds —
  where each fresh mask leaves most profile pairs untouched — much
  cheaper than recomputing every pair every epoch;
* the ForecastService serves repeat window traffic from its LRU instead
  of re-running the model.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import STSMConfig, STSMForecaster
from repro.data import WindowSpec, space_split, temporal_split
from repro.data.synthetic import make_pems_bay
from repro.engine import PairwiseDTWCache
from repro.evaluation import forecast_window_starts
from repro.serving import ForecastService
from repro.temporal import build_dtw_adjacency

from conftest import run_once


def _epoch_style_rebuilds(values, steps_per_day, masks, distance_fn=None):
    """Rebuild the DTW adjacency once per mask, like training epochs do."""
    num_nodes = values.shape[1]
    for mask in masks:
        source = np.setdiff1d(np.arange(num_nodes), mask)
        build_dtw_adjacency(
            values,
            observed_index=source,
            target_index=mask,
            steps_per_day=steps_per_day,
            num_nodes=num_nodes,
            distance_fn=distance_fn,
        )


def test_dtw_cache_speeds_up_repeated_rebuilds(benchmark):
    rng = np.random.default_rng(5)
    num_nodes, steps_per_day, days, epochs = 48, 24, 3, 12
    values = rng.normal(size=(steps_per_day * days, num_nodes))
    masks = [
        np.sort(rng.choice(num_nodes, size=num_nodes // 4, replace=False))
        for _ in range(epochs)
    ]

    began = time.perf_counter()
    _epoch_style_rebuilds(values, steps_per_day, masks)
    uncached_seconds = time.perf_counter() - began

    cache = PairwiseDTWCache()

    def cached_run():
        cache.clear()
        _epoch_style_rebuilds(values, steps_per_day, masks, cache.distance_matrix)
        return cache.stats

    stats = run_once(benchmark, cached_run)
    cached_seconds = benchmark.stats.stats.total
    speedup = uncached_seconds / max(cached_seconds, 1e-9)
    print(
        f"\nA_dtw rebuild x{epochs}: uncached {uncached_seconds * 1e3:.1f} ms, "
        f"cached {cached_seconds * 1e3:.1f} ms ({speedup:.1f}x), "
        f"pair hits/misses: {stats['hits']}/{stats['misses']}"
    )
    # Most pairs repeat across masks, so the memo must win clearly.
    assert stats["hits"] > stats["misses"]
    assert cached_seconds < uncached_seconds


def test_service_repeat_traffic_is_cached(benchmark):
    dataset = make_pems_bay(num_sensors=18, num_days=3, seed=31)
    split = space_split(dataset.coords, "horizontal")
    spec = WindowSpec(input_length=6, horizon=6)
    train_ix, _ = temporal_split(dataset.num_steps)
    cfg = STSMConfig(
        hidden_dim=8, num_blocks=1, tcn_levels=2, gcn_depth=1,
        epochs=2, patience=2, batch_size=8, window_stride=8, top_k=5,
    )
    model = STSMForecaster(cfg)
    model.fit(dataset, split, spec, train_ix)
    starts = forecast_window_starts(dataset, spec, max_windows=16)

    service = ForecastService(model, cache_size=64)
    began = time.perf_counter()
    cold = service.forecast(starts)
    cold_seconds = time.perf_counter() - began

    def repeat_traffic():
        return service.forecast(starts)

    warm = run_once(benchmark, repeat_traffic)
    warm_seconds = benchmark.stats.stats.total
    print(
        f"\nForecastService 16 windows: cold {cold_seconds * 1e3:.1f} ms, "
        f"repeat {warm_seconds * 1e3:.1f} ms "
        f"({cold_seconds / max(warm_seconds, 1e-9):.0f}x), "
        f"stats: {service.stats}"
    )
    assert np.array_equal(cold, warm)
    assert service.stats["windows_computed"] == len(starts)  # computed once only
    assert warm_seconds < cold_seconds
