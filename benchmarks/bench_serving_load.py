"""Serving-throughput benchmark: micro-batched scheduler vs unbatched predicts.

Drives identical deterministic multi-threaded traffic (seeded Zipf
window popularity, closed loop) through two serving strategies over the
same fitted STSM model:

* **unbatched** — one-request-per-``predict`` serving: each client
  thread calls ``model.predict([start])`` directly under a lock (models
  do not declare ``thread_safe_predict``), no batching, no cache;
* **scheduler** — a :class:`~repro.serving.MicroBatchScheduler`
  (micro-batch deadline + max-batch trigger, bounded queue) draining
  through the cached/coalescing :class:`~repro.serving.ForecastService`.

Both legs must serve **bitwise direct-predict bytes**: the unbatched leg
is re-checked per window against a fresh single-window ``predict``, and
the scheduler leg is certified by replaying its logged batch
compositions through ``model.predict`` directly and comparing every
served block against the replay.  The full run additionally hosts two
models in a :class:`~repro.serving.ServingRuntime` and drives mixed
routed traffic to exercise multi-model serving.

``--wire`` adds the network dimension: the same seeded-Zipf traffic is
replayed over real HTTP through :class:`~repro.serving.loadgen.WireDriver`
clients against

* an **in-process** :class:`~repro.serving.transport.ForecastHTTPServer`
  thread (smoke mode stops here),
* a **1-worker** server process launched from a checkpoint bundle via
  ``python -m repro.serving serve``, and
* an **N-worker** ``SO_REUSEPORT`` fleet (``--wire-workers``, default 4),

measuring end-to-end HTTP throughput/latency against the in-process
scheduler and the single-worker baseline.  Every wire leg is parity
certified: each worker's predict-batch compositions are fetched over
its control port's ``/v1/batch_log`` endpoint and replayed through a
locally restored copy of the same checkpoint — every served block must
be bitwise one of those direct-``predict`` blocks.

Run::

    PYTHONPATH=src python benchmarks/bench_serving_load.py            # full
    PYTHONPATH=src python benchmarks/bench_serving_load.py --smoke    # CI wiring
    PYTHONPATH=src python benchmarks/bench_serving_load.py --wire     # + HTTP legs

Writes ``BENCH_serving.json`` at the repository root (``BENCH_transport
.json`` with ``--wire``; override with ``--output``; ``-`` skips
writing).  Acceptance targets (full mode): scheduler throughput >= 2x
unbatched under >= 8 concurrent client threads; with ``--wire``, the
``--wire-workers``-worker fleet >= 2x single-worker wire throughput on
machines with >= 2 CPUs (on one CPU every worker count saturates the
same core, so the ratio is recorded but not enforced) — all with parity
on every served byte.  Worker-fleet legs report the median of
``--wire-repeats`` runs; all repeats must pass parity.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.backend import get_backend  # noqa: E402
from repro.core import STSMConfig, STSMForecaster  # noqa: E402
from repro.data import WindowSpec, space_split, temporal_split  # noqa: E402
from repro.data.synthetic import make_dataset  # noqa: E402
from repro.evaluation import forecast_window_starts  # noqa: E402
from repro.serving import (  # noqa: E402
    LoadGenerator,
    LoadSpec,
    MicroBatchScheduler,
    ServingRuntime,
    WireDriver,
)
from repro.serving.transport import (  # noqa: E402
    BundleEntry,
    ForecastClient,
    ForecastHTTPServer,
    load_bundle,
    save_bundle,
)

SPEEDUP_TARGET = 2.0
#: Multi-worker wire scaling gate, enforced on machines with >= 2 CPUs
#: where SO_REUSEPORT workers actually multiply compute.  On a single
#: CPU every worker count saturates the same core, so the 4w/1w ratio
#: measures bistable queueing noise, not scaling — there the gate is
#: informational only (the JSON records the CPU count, the applied
#: gate, and every repeat's throughput so the call is auditable).
WIRE_SPEEDUP_TARGET = 2.0
MODEL_KEY = "stsm/pems-bay"


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def fit_model(dataset_name: str, *, sensors: int, days: int, epochs: int,
              hidden: int, seed: int):
    """Fit a small STSM on a synthetic dataset.

    Returns ``(model, starts pool, recipe)`` — the recipe is the
    dataset-rebuild dict a checkpoint bundle needs.
    """
    recipe = {"name": dataset_name, "num_sensors": sensors, "num_days": days,
              "seed": seed}
    dataset = make_dataset(dataset_name, num_sensors=sensors, num_days=days,
                           seed=seed)
    split = space_split(dataset.coords, "horizontal")
    spec = WindowSpec(input_length=8, horizon=8)
    train_ix, _ = temporal_split(dataset.num_steps)
    config = STSMConfig(
        hidden_dim=hidden, num_blocks=1, tcn_levels=2, gcn_depth=1,
        epochs=epochs, patience=epochs, batch_size=8, window_stride=8,
        top_k=min(6, sensors - 1), seed=seed,
    )
    model = STSMForecaster(config)
    model.fit(dataset, split, spec, train_ix)
    starts = forecast_window_starts(dataset, spec, max_windows=64)
    return model, starts, recipe


def run_unbatched(model, pool: np.ndarray, spec: LoadSpec) -> tuple[dict, bool]:
    """One-``predict``-per-request serving from ``spec.num_threads`` threads."""
    lock = threading.Lock()
    thread_safe = getattr(model, "thread_safe_predict", False)

    def serve(start: int) -> np.ndarray:
        if thread_safe:
            return model.predict(np.asarray([start], dtype=int))[0]
        with lock:
            return model.predict(np.asarray([start], dtype=int))[0]

    report = LoadGenerator(pool.tolist(), spec).run(serve)
    reference = {int(s): model.predict(np.asarray([s], dtype=int))[0] for s in pool}
    parity = all(
        np.array_equal(value, reference[int(start)])
        for per_thread in report.results
        for start, value in per_thread
    )
    return report.summary(), parity


def run_scheduled(
    model, pool: np.ndarray, spec: LoadSpec, *, deadline_ms: float, max_batch: int
) -> tuple[dict, bool]:
    """Micro-batched serving; parity certified by batch-log replay."""
    with MicroBatchScheduler(
        model,
        deadline_ms=deadline_ms,
        max_batch=max_batch,
        max_queue=4096,
        cache_size=max(256, len(pool)),
        log_batches=True,
        name="bench",
    ) as scheduler:
        report = LoadGenerator(pool.tolist(), spec).run(
            lambda start: scheduler.submit(start).result()
        )
        scheduler.drain()
        stats = scheduler.stats
        batch_log = list(scheduler.service.batch_log)

    # Replay every predict call the service actually issued, directly
    # against the model: each served block must be bitwise one of these
    # direct-predict bytes (first computation wins, as in the cache).
    replay: dict[int, np.ndarray] = {}
    for batch in batch_log:
        block = model.predict(batch)
        for row, start in enumerate(batch):
            replay.setdefault(int(start), block[row])
    parity = all(
        np.array_equal(value, replay[int(start)])
        for per_thread in report.results
        for start, value in per_thread
    )

    summary = report.summary()
    summary["scheduler"] = {
        k: stats[k]
        for k in (
            "submitted", "completed", "rejected", "failed", "batches",
            "avg_batch_size", "max_batch_observed", "peak_queue_depth",
            "throughput_rps",
        )
    }
    summary["scheduler"]["latency"] = stats["latency"]
    service = stats["service"]
    summary["service"] = {
        k: service[k]
        for k in (
            "requests", "cache_hits", "cache_hit_pct", "coalesced",
            "predict_calls", "windows_computed",
        )
    }
    return summary, parity


def run_multi_model(models: dict, spec: LoadSpec, *, deadline_ms: float) -> dict:
    """Mixed routed traffic across several hosted models."""
    pool = [
        (key, int(start))
        for key, (_model, starts) in sorted(models.items())
        for start in starts[:16]
    ]
    with ServingRuntime(deadline_ms=deadline_ms, max_queue=4096) as runtime:
        for key, (model, _starts) in models.items():
            runtime.register(key, model)
        report = LoadGenerator(pool, spec).run(
            lambda item: runtime.submit(item[0], item[1]).result(),
            collect_results=False,
        )
        runtime.drain()
        stats = runtime.stats()
    per_model = {
        key: {
            "completed": s["completed"],
            "batches": s["batches"],
            "avg_batch_size": s["avg_batch_size"],
            "p50_ms": s["latency"]["p50_ms"],
            "p99_ms": s["latency"]["p99_ms"],
            "cache_hits": s["service"]["cache_hits"],
        }
        for key, s in stats["models"].items()
    }
    return {**report.summary(), "per_model": per_model, "totals": stats["totals"]}


def _replay_candidates(model, batch_logs: list) -> dict[int, list[np.ndarray]]:
    """Replay logged predict-batch compositions through ``model`` directly.

    Returns every direct-``predict`` block each window start could have
    been served from (a window recomputed in two compositions — e.g. by
    two independent workers — legitimately has two candidates).
    """
    candidates: dict[int, list[np.ndarray]] = {}
    for batch in batch_logs:
        batch = np.asarray(batch, dtype=int)
        block = model.predict(batch)
        for row, start in enumerate(batch):
            candidates.setdefault(int(start), []).append(block[row])
    return candidates


def _wire_parity(report, candidates: dict[int, list[np.ndarray]]) -> bool:
    """Every served block must be bitwise one of the replay candidates."""
    return all(
        any(np.array_equal(value, direct) for direct in candidates.get(int(start), []))
        for per_thread in report.results
        for start, value in per_thread
    )


def run_wire_inprocess(
    model, pool: np.ndarray, spec: LoadSpec, *, deadline_ms: float, max_batch: int
) -> tuple[dict, bool]:
    """HTTP serving from an in-process server thread; replay-certified."""
    with ServingRuntime(
        deadline_ms=deadline_ms, max_batch=max_batch, max_queue=4096,
        cache_size=max(256, len(pool)), log_batches=True,
    ) as runtime:
        runtime.register(MODEL_KEY, model)
        with ForecastHTTPServer(runtime).start() as server:
            server.set_ready()
            with WireDriver("127.0.0.1", server.port, MODEL_KEY) as driver:
                report = LoadGenerator(pool.tolist(), spec).run(driver)
            runtime.drain()
            stats = runtime.stats(MODEL_KEY)
            batch_log = [b.copy() for b in runtime.scheduler(MODEL_KEY).service.batch_log]
            transport = server.counters.snapshot()
    parity = _wire_parity(report, _replay_candidates(model, batch_log))
    summary = report.summary()
    summary["transport"] = transport
    summary["scheduler"] = {k: stats[k] for k in ("completed", "batches",
                                                  "avg_batch_size")}
    summary["service"] = {k: stats["service"][k]
                          for k in ("cache_hits", "cache_hit_pct", "predict_calls")}
    return summary, parity


def _start_worker_fleet(bundle_dir: Path, state_dir: Path, workers: int, *,
                        deadline_ms: float, max_batch: int,
                        fast_path: bool = False, timeout_s: float = 300.0):
    """Launch ``python -m repro.serving serve`` and wait for readiness.

    Returns ``(process, worker_infos)`` — infos carry the shared public
    port and each worker's private control port.
    """
    # Stale state files from a previous (killed) fleet would satisfy the
    # readiness poll instantly and point the load at zombie workers.
    for stale in state_dir.glob("worker-*.json"):
        stale.unlink()
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    argv = [sys.executable, "-m", "repro.serving", "serve",
            "--checkpoint-dir", str(bundle_dir), "--port", "0",
            "--workers", str(workers), "--state-dir", str(state_dir),
            "--deadline-ms", str(deadline_ms), "--max-batch", str(max_batch)]
    if fast_path:
        argv.append("--fast-path")
    process = subprocess.Popen(
        argv, env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    deadline = time.monotonic() + timeout_s
    while True:
        state_files = sorted(state_dir.glob("worker-*.json"))
        if len(state_files) == workers:
            break
        if process.poll() is not None:
            raise RuntimeError(
                f"serve launcher exited early ({process.returncode}):\n"
                f"{process.stdout.read()}"
            )
        if time.monotonic() > deadline:
            process.terminate()
            raise RuntimeError(f"{workers} workers not ready in {timeout_s}s")
        time.sleep(0.1)
    infos = [json.loads(f.read_text()) for f in state_files]
    return process, infos


def run_wire_fleet(
    replay_model, bundle_dir: Path, pool: np.ndarray, spec: LoadSpec, *,
    workers: int, deadline_ms: float, max_batch: int, fast_path: bool = False,
) -> tuple[dict, bool]:
    """HTTP serving from ``workers`` processes behind one SO_REUSEPORT port.

    Parity: each worker's logged batch compositions (fetched over its
    control port) are replayed through ``replay_model`` — a local
    restore of the same checkpoint, so identical weights — and every
    client-received block must match one replay block bitwise.
    """
    state_dir = bundle_dir / f"state-{workers}w{'-fp' if fast_path else ''}"
    state_dir.mkdir(exist_ok=True)
    process, infos = _start_worker_fleet(
        bundle_dir, state_dir, workers,
        deadline_ms=deadline_ms, max_batch=max_batch, fast_path=fast_path,
    )
    try:
        port = infos[0]["port"]
        with ForecastClient("127.0.0.1", port) as probe:
            probe.wait_ready(60.0)
        with WireDriver("127.0.0.1", port, MODEL_KEY) as driver:
            report = LoadGenerator(pool.tolist(), spec).run(driver)
        batch_logs: list[np.ndarray] = []
        per_worker = {}
        for info in infos:
            with ForecastClient("127.0.0.1", info["control_port"]) as control:
                batch_logs.extend(control.batch_log(MODEL_KEY))
                stats = control.stats()
            per_worker[info["worker"]] = {
                "transport": stats["transport"],
                "completed": stats["runtime"]["totals"]["completed"],
                "cache_hit_pct": stats["runtime"]["totals"]["cache_hit_pct"],
            }
    finally:
        process.send_signal(signal.SIGTERM)
        try:
            process.wait(timeout=60)
        except subprocess.TimeoutExpired:
            # Killing only the launcher would orphan the worker
            # processes; take them down by the pids they published.
            for info in infos:
                try:
                    os.kill(info["pid"], signal.SIGKILL)
                except (OSError, KeyError):
                    pass
            process.kill()
            process.wait(timeout=10)
    parity = _wire_parity(report, _replay_candidates(replay_model, batch_logs))
    summary = report.summary()
    summary["workers"] = workers
    summary["per_worker"] = per_worker
    return summary, parity


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny load / single-epoch fit (CI wiring check)")
    parser.add_argument("--threads", type=int, default=None,
                        help="client threads (default: 8 full, 4 smoke)")
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per thread (default: 150 full, 20 smoke)")
    parser.add_argument("--deadline-ms", type=float, default=2.0,
                        help="scheduler micro-batch deadline")
    parser.add_argument("--max-batch", type=int, default=64,
                        help="scheduler max batch trigger")
    parser.add_argument("--zipf", type=float, default=1.1,
                        help="Zipf popularity exponent of the window pool")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--wire", action="store_true",
                        help="add HTTP transport legs (in-process server; full "
                             "mode also 1-worker and --wire-workers processes)")
    parser.add_argument("--wire-workers", type=int, default=4,
                        help="fleet size for the multi-process wire leg")
    parser.add_argument("--wire-threads", type=int, default=None,
                        help="client threads for wire legs (default: 96 full, "
                             "4 smoke — a high-fan-in regime)")
    parser.add_argument("--wire-repeats", type=int, default=None,
                        help="repeats per worker-fleet leg; the median-"
                             "throughput repeat is reported (default: 3 full, "
                             "1 smoke)")
    parser.add_argument("--output", default=None,
                        help="result JSON path (default: <repo>/BENCH_serving.json, "
                             "or BENCH_transport.json with --wire; '-' skips writing)")
    args = parser.parse_args(argv)

    threads = args.threads if args.threads is not None else (4 if args.smoke else 8)
    requests = args.requests if args.requests is not None else (20 if args.smoke else 150)
    wire_threads = (
        args.wire_threads if args.wire_threads is not None
        else (4 if args.smoke else 96)
    )
    wire_repeats = (
        args.wire_repeats if args.wire_repeats is not None
        else (1 if args.smoke else 3)
    )
    if wire_repeats < 1:
        parser.error("--wire-repeats must be >= 1")
    if args.wire and args.wire_workers < 2:
        parser.error("--wire-workers must be >= 2 (the multi-worker leg is "
                     "compared against a 1-worker baseline)")
    fit_kwargs = (
        dict(sensors=16, days=2, epochs=1, hidden=8)
        if args.smoke
        else dict(sensors=24, days=3, epochs=2, hidden=16)
    )

    print(f"[fitting STSM ({'smoke' if args.smoke else 'full'}) ...]")
    model, pool, recipe = fit_model("pems-bay", seed=args.seed, **fit_kwargs)
    spec = LoadSpec(
        num_threads=threads,
        requests_per_thread=requests,
        zipf_exponent=args.zipf,
        seed=args.seed,
    )

    print(f"[unbatched leg: {threads} threads x {requests} requests]")
    unbatched, unbatched_parity = run_unbatched(model, pool, spec)
    print(f"[scheduler leg: deadline {args.deadline_ms} ms, max_batch {args.max_batch}]")
    scheduled, scheduled_parity = run_scheduled(
        model, pool, spec, deadline_ms=args.deadline_ms, max_batch=args.max_batch
    )

    speedup = scheduled["throughput_rps"] / unbatched["throughput_rps"]
    for label, leg in (("unbatched", unbatched), ("scheduler", scheduled)):
        lat = leg["latency"]
        print(
            f"{label:10s} {leg['throughput_rps']:9.0f} req/s   "
            f"p50 {lat['p50_ms']:7.2f} ms   p95 {lat['p95_ms']:7.2f} ms   "
            f"p99 {lat['p99_ms']:7.2f} ms"
        )
    sched = scheduled["scheduler"]
    service = scheduled["service"]
    print(
        f"speedup    {speedup:.2f}x   batches {sched['batches']} "
        f"(avg {sched['avg_batch_size']:.1f}, peak queue {sched['peak_queue_depth']})   "
        f"cache-hit {service['cache_hit_pct']:.1f}%"
    )
    print(f"parity     unbatched={unbatched_parity} scheduler={scheduled_parity}")

    multi = None
    if not args.smoke:
        print("[multi-model leg: 2 hosted models, mixed routed traffic]")
        second, second_pool, _ = fit_model(
            "melbourne", sensors=20, days=3, epochs=2, hidden=16, seed=args.seed + 1
        )
        multi = run_multi_model(
            {"stsm/pems-bay": (model, pool), "stsm/melbourne": (second, second_pool)},
            LoadSpec(
                num_threads=threads,
                requests_per_thread=max(1, requests // 2),
                zipf_exponent=args.zipf,
                seed=args.seed + 7,
            ),
            deadline_ms=args.deadline_ms,
        )
        print(
            f"multi      {multi['throughput_rps']:9.0f} req/s across "
            f"{multi['totals']['models']} models   "
            f"cache-hit {multi['totals']['cache_hit_pct']:.1f}%"
        )

    wire = None
    wire_parity_ok = True
    wire_speedup = None
    if args.wire:
        wire_spec = LoadSpec(
            num_threads=wire_threads,
            requests_per_thread=requests,
            zipf_exponent=args.zipf,
            seed=args.seed + 13,
        )
        # The in-process leg isolates HTTP overhead vs the in-process
        # scheduler; it shares one interpreter with the clients, so it
        # runs at moderate concurrency (fan-in stress belongs to the
        # worker-process legs, where client and server GILs are separate).
        inproc_threads = min(wire_threads, 16)
        inproc_spec = LoadSpec(
            num_threads=inproc_threads,
            requests_per_thread=requests,
            zipf_exponent=args.zipf,
            seed=args.seed + 13,
        )
        print(f"[wire leg: in-process HTTP server, {inproc_threads} client threads]")
        inproc, inproc_parity = run_wire_inprocess(
            model, pool, inproc_spec,
            deadline_ms=args.deadline_ms, max_batch=args.max_batch,
        )
        lat = inproc["latency"]
        print(
            f"wire:inproc {inproc['throughput_rps']:8.0f} req/s   "
            f"p50 {lat['p50_ms']:7.2f} ms   p99 {lat['p99_ms']:7.2f} ms   "
            f"parity={inproc_parity}"
        )
        wire = {
            "client_threads": wire_threads,
            "inprocess_client_threads": inproc_threads,
            "inprocess": inproc,
            "parity": {"inprocess": inproc_parity},
        }
        wire_parity_ok = inproc_parity
        if not args.smoke:
            with tempfile.TemporaryDirectory(prefix="repro-wire-bundle-") as tmp:
                bundle_dir = Path(tmp)
                save_bundle(bundle_dir, {
                    MODEL_KEY: BundleEntry(
                        forecaster=model,
                        dataset=recipe,
                        warmup_starts=[int(s) for s in pool],
                    ),
                })
                # Replay model: restored from the same checkpoint the
                # workers load, so replayed bytes are their bytes.
                replay_model, _ = load_bundle(bundle_dir)[MODEL_KEY]

                def fleet_leg(label: str, workers: int, fast_path: bool):
                    """Median-of-repeats fleet run (closed-loop wire
                    serving is bistable in its queueing regime; one draw
                    is not a number)."""
                    runs = []
                    parity_all = True
                    for _ in range(wire_repeats):
                        summary, parity = run_wire_fleet(
                            replay_model, bundle_dir, pool, wire_spec,
                            workers=workers, deadline_ms=args.deadline_ms,
                            max_batch=args.max_batch, fast_path=fast_path,
                        )
                        runs.append(summary)
                        parity_all = parity_all and parity
                    runs.sort(key=lambda s: s["throughput_rps"])
                    median = runs[len(runs) // 2]
                    median["repeat_throughputs"] = [
                        round(s["throughput_rps"], 1) for s in runs
                    ]
                    lat = median["latency"]
                    print(
                        f"wire:{label:6s} {median['throughput_rps']:8.0f} req/s   "
                        f"p50 {lat['p50_ms']:7.2f} ms   p99 {lat['p99_ms']:7.2f} ms   "
                        f"parity={parity_all}  "
                        f"(repeats: {median['repeat_throughputs']})"
                    )
                    return median, parity_all

                legs = {}
                for n in (1, args.wire_workers):
                    print(f"[wire leg: {n} worker process(es) behind "
                          f"SO_REUSEPORT, {wire_repeats} repeat(s)]")
                    legs[n], parity_n = fleet_leg(f"{n}w", n, False)
                    wire["parity"][f"workers_{n}"] = parity_n
                    wire_parity_ok = wire_parity_ok and parity_n
                # Extra leg: the opt-in cache-hit fast path on one
                # worker — how much single-worker fan-in throughput the
                # queue-hop elimination recovers.
                print(f"[wire leg: 1 worker process with --fast-path, "
                      f"{wire_repeats} repeat(s)]")
                fast_leg, fast_parity = fleet_leg("1w+fp", 1, True)
                wire["parity"]["single_worker_fast_path"] = fast_parity
                wire_parity_ok = wire_parity_ok and fast_parity
            wire["single_worker"] = legs[1]
            wire["multi_worker"] = legs[args.wire_workers]
            wire["single_worker_fast_path"] = fast_leg
            wire["fast_path_gain"] = (
                fast_leg["throughput_rps"] / legs[1]["throughput_rps"]
            )
            wire_speedup = (
                legs[args.wire_workers]["throughput_rps"] / legs[1]["throughput_rps"]
            )
            wire["worker_speedup"] = wire_speedup
            wire["machine_cpus"] = _available_cpus()
            # The >= 2x gate presumes workers can occupy distinct CPUs.
            # On one CPU every worker count saturates the same core and
            # the ratio is queueing noise, so it is reported, not
            # enforced.
            wire["worker_speedup_target"] = (
                WIRE_SPEEDUP_TARGET if wire["machine_cpus"] >= 2 else None
            )
            wire["vs_inprocess_scheduler"] = {
                "scheduler_rps": scheduled["throughput_rps"],
                "wire_single_worker_rps": legs[1]["throughput_rps"],
                "wire_overhead_factor": (
                    scheduled["throughput_rps"] / legs[1]["throughput_rps"]
                ),
            }
            target = wire["worker_speedup_target"]
            print(
                f"wire scale {wire_speedup:.2f}x ({args.wire_workers} workers vs 1, "
                f"{wire['machine_cpus']} CPU(s), "
                + (f"target {target}x" if target is not None
                   else "gate informational on 1 CPU")
                + f")   fast-path gain {wire['fast_path_gain']:.2f}x   "
                f"http-vs-scheduler overhead "
                f"{wire['vs_inprocess_scheduler']['wire_overhead_factor']:.2f}x"
            )

    results = {
        "mode": "smoke" if args.smoke else "full",
        "backend": get_backend().name,
        "machine": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
        "config": {
            "num_threads": threads,
            "requests_per_thread": requests,
            "pool_size": int(len(pool)),
            "zipf_exponent": args.zipf,
            "deadline_ms": args.deadline_ms,
            "max_batch": args.max_batch,
            "seed": args.seed,
            "fit": fit_kwargs,
        },
        "unbatched": unbatched,
        "scheduler": scheduled,
        "speedup": speedup,
        "parity": {"unbatched": unbatched_parity, "scheduler": scheduled_parity},
    }
    if multi is not None:
        results["multi_model"] = multi
    if wire is not None:
        results["config"]["wire_workers"] = args.wire_workers
        results["config"]["wire_threads"] = wire_threads
        results["config"]["wire_repeats"] = wire_repeats
        results["wire"] = wire

    if args.output != "-":
        default_name = "BENCH_transport.json" if args.wire else "BENCH_serving.json"
        output = Path(args.output) if args.output else REPO_ROOT / default_name
        output.write_text(json.dumps(results, indent=2) + "\n")
        print(f"[wrote {output}]")

    if not (unbatched_parity and scheduled_parity and wire_parity_ok):
        print("ERROR: served outputs are not bitwise direct-predict bytes", file=sys.stderr)
        return 1
    if not args.smoke and speedup < SPEEDUP_TARGET:
        print(
            f"ERROR: scheduler speedup {speedup:.2f}x below the "
            f"{SPEEDUP_TARGET}x target",
            file=sys.stderr,
        )
        return 1
    if (
        wire_speedup is not None
        and wire.get("worker_speedup_target") is not None
        and wire_speedup < wire["worker_speedup_target"]
    ):
        print(
            f"ERROR: {args.wire_workers}-worker wire speedup {wire_speedup:.2f}x "
            f"below the {wire['worker_speedup_target']}x target "
            f"({wire['machine_cpus']} CPU(s) available)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
