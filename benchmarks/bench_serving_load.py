"""Serving-throughput benchmark: micro-batched scheduler vs unbatched predicts.

Drives identical deterministic multi-threaded traffic (seeded Zipf
window popularity, closed loop) through two serving strategies over the
same fitted STSM model:

* **unbatched** — one-request-per-``predict`` serving: each client
  thread calls ``model.predict([start])`` directly under a lock (models
  do not declare ``thread_safe_predict``), no batching, no cache;
* **scheduler** — a :class:`~repro.serving.MicroBatchScheduler`
  (micro-batch deadline + max-batch trigger, bounded queue) draining
  through the cached/coalescing :class:`~repro.serving.ForecastService`.

Both legs must serve **bitwise direct-predict bytes**: the unbatched leg
is re-checked per window against a fresh single-window ``predict``, and
the scheduler leg is certified by replaying its logged batch
compositions through ``model.predict`` directly and comparing every
served block against the replay.  The full run additionally hosts two
models in a :class:`~repro.serving.ServingRuntime` and drives mixed
routed traffic to exercise multi-model serving.

Run::

    PYTHONPATH=src python benchmarks/bench_serving_load.py            # full
    PYTHONPATH=src python benchmarks/bench_serving_load.py --smoke    # CI wiring

Writes ``BENCH_serving.json`` at the repository root (override with
``--output``; ``-`` skips writing).  Acceptance target (full mode):
scheduler throughput >= 2x unbatched under >= 8 concurrent client
threads, with parity on every served byte.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import threading
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.backend import get_backend  # noqa: E402
from repro.core import STSMConfig, STSMForecaster  # noqa: E402
from repro.data import WindowSpec, space_split, temporal_split  # noqa: E402
from repro.data.synthetic import make_melbourne, make_pems_bay  # noqa: E402
from repro.evaluation import forecast_window_starts  # noqa: E402
from repro.serving import (  # noqa: E402
    LoadGenerator,
    LoadSpec,
    MicroBatchScheduler,
    ServingRuntime,
)

SPEEDUP_TARGET = 2.0


def fit_model(maker, *, sensors: int, days: int, epochs: int, hidden: int, seed: int):
    """Fit a small STSM on a synthetic dataset; returns (model, starts pool)."""
    dataset = maker(num_sensors=sensors, num_days=days, seed=seed)
    split = space_split(dataset.coords, "horizontal")
    spec = WindowSpec(input_length=8, horizon=8)
    train_ix, _ = temporal_split(dataset.num_steps)
    config = STSMConfig(
        hidden_dim=hidden, num_blocks=1, tcn_levels=2, gcn_depth=1,
        epochs=epochs, patience=epochs, batch_size=8, window_stride=8,
        top_k=min(6, sensors - 1), seed=seed,
    )
    model = STSMForecaster(config)
    model.fit(dataset, split, spec, train_ix)
    starts = forecast_window_starts(dataset, spec, max_windows=64)
    return model, starts


def run_unbatched(model, pool: np.ndarray, spec: LoadSpec) -> tuple[dict, bool]:
    """One-``predict``-per-request serving from ``spec.num_threads`` threads."""
    lock = threading.Lock()
    thread_safe = getattr(model, "thread_safe_predict", False)

    def serve(start: int) -> np.ndarray:
        if thread_safe:
            return model.predict(np.asarray([start], dtype=int))[0]
        with lock:
            return model.predict(np.asarray([start], dtype=int))[0]

    report = LoadGenerator(pool.tolist(), spec).run(serve)
    reference = {int(s): model.predict(np.asarray([s], dtype=int))[0] for s in pool}
    parity = all(
        np.array_equal(value, reference[int(start)])
        for per_thread in report.results
        for start, value in per_thread
    )
    return report.summary(), parity


def run_scheduled(
    model, pool: np.ndarray, spec: LoadSpec, *, deadline_ms: float, max_batch: int
) -> tuple[dict, bool]:
    """Micro-batched serving; parity certified by batch-log replay."""
    with MicroBatchScheduler(
        model,
        deadline_ms=deadline_ms,
        max_batch=max_batch,
        max_queue=4096,
        cache_size=max(256, len(pool)),
        log_batches=True,
        name="bench",
    ) as scheduler:
        report = LoadGenerator(pool.tolist(), spec).run(
            lambda start: scheduler.submit(start).result()
        )
        scheduler.drain()
        stats = scheduler.stats
        batch_log = list(scheduler.service.batch_log)

    # Replay every predict call the service actually issued, directly
    # against the model: each served block must be bitwise one of these
    # direct-predict bytes (first computation wins, as in the cache).
    replay: dict[int, np.ndarray] = {}
    for batch in batch_log:
        block = model.predict(batch)
        for row, start in enumerate(batch):
            replay.setdefault(int(start), block[row])
    parity = all(
        np.array_equal(value, replay[int(start)])
        for per_thread in report.results
        for start, value in per_thread
    )

    summary = report.summary()
    summary["scheduler"] = {
        k: stats[k]
        for k in (
            "submitted", "completed", "rejected", "failed", "batches",
            "avg_batch_size", "max_batch_observed", "peak_queue_depth",
            "throughput_rps",
        )
    }
    summary["scheduler"]["latency"] = stats["latency"]
    service = stats["service"]
    summary["service"] = {
        k: service[k]
        for k in (
            "requests", "cache_hits", "cache_hit_pct", "coalesced",
            "predict_calls", "windows_computed",
        )
    }
    return summary, parity


def run_multi_model(models: dict, spec: LoadSpec, *, deadline_ms: float) -> dict:
    """Mixed routed traffic across several hosted models."""
    pool = [
        (key, int(start))
        for key, (_model, starts) in sorted(models.items())
        for start in starts[:16]
    ]
    with ServingRuntime(deadline_ms=deadline_ms, max_queue=4096) as runtime:
        for key, (model, _starts) in models.items():
            runtime.register(key, model)
        report = LoadGenerator(pool, spec).run(
            lambda item: runtime.submit(item[0], item[1]).result(),
            collect_results=False,
        )
        runtime.drain()
        stats = runtime.stats()
    per_model = {
        key: {
            "completed": s["completed"],
            "batches": s["batches"],
            "avg_batch_size": s["avg_batch_size"],
            "p50_ms": s["latency"]["p50_ms"],
            "p99_ms": s["latency"]["p99_ms"],
            "cache_hits": s["service"]["cache_hits"],
        }
        for key, s in stats["models"].items()
    }
    return {**report.summary(), "per_model": per_model, "totals": stats["totals"]}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny load / single-epoch fit (CI wiring check)")
    parser.add_argument("--threads", type=int, default=None,
                        help="client threads (default: 8 full, 4 smoke)")
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per thread (default: 150 full, 20 smoke)")
    parser.add_argument("--deadline-ms", type=float, default=2.0,
                        help="scheduler micro-batch deadline")
    parser.add_argument("--max-batch", type=int, default=64,
                        help="scheduler max batch trigger")
    parser.add_argument("--zipf", type=float, default=1.1,
                        help="Zipf popularity exponent of the window pool")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", default=None,
                        help="result JSON path (default: <repo>/BENCH_serving.json; "
                             "'-' skips writing)")
    args = parser.parse_args(argv)

    threads = args.threads if args.threads is not None else (4 if args.smoke else 8)
    requests = args.requests if args.requests is not None else (20 if args.smoke else 150)
    fit_kwargs = (
        dict(sensors=16, days=2, epochs=1, hidden=8)
        if args.smoke
        else dict(sensors=24, days=3, epochs=2, hidden=16)
    )

    print(f"[fitting STSM ({'smoke' if args.smoke else 'full'}) ...]")
    model, pool = fit_model(make_pems_bay, seed=args.seed, **fit_kwargs)
    spec = LoadSpec(
        num_threads=threads,
        requests_per_thread=requests,
        zipf_exponent=args.zipf,
        seed=args.seed,
    )

    print(f"[unbatched leg: {threads} threads x {requests} requests]")
    unbatched, unbatched_parity = run_unbatched(model, pool, spec)
    print(f"[scheduler leg: deadline {args.deadline_ms} ms, max_batch {args.max_batch}]")
    scheduled, scheduled_parity = run_scheduled(
        model, pool, spec, deadline_ms=args.deadline_ms, max_batch=args.max_batch
    )

    speedup = scheduled["throughput_rps"] / unbatched["throughput_rps"]
    for label, leg in (("unbatched", unbatched), ("scheduler", scheduled)):
        lat = leg["latency"]
        print(
            f"{label:10s} {leg['throughput_rps']:9.0f} req/s   "
            f"p50 {lat['p50_ms']:7.2f} ms   p95 {lat['p95_ms']:7.2f} ms   "
            f"p99 {lat['p99_ms']:7.2f} ms"
        )
    sched = scheduled["scheduler"]
    service = scheduled["service"]
    print(
        f"speedup    {speedup:.2f}x   batches {sched['batches']} "
        f"(avg {sched['avg_batch_size']:.1f}, peak queue {sched['peak_queue_depth']})   "
        f"cache-hit {service['cache_hit_pct']:.1f}%"
    )
    print(f"parity     unbatched={unbatched_parity} scheduler={scheduled_parity}")

    multi = None
    if not args.smoke:
        print("[multi-model leg: 2 hosted models, mixed routed traffic]")
        second, second_pool = fit_model(
            make_melbourne, sensors=20, days=3, epochs=2, hidden=16, seed=args.seed + 1
        )
        multi = run_multi_model(
            {"stsm/pems-bay": (model, pool), "stsm/melbourne": (second, second_pool)},
            LoadSpec(
                num_threads=threads,
                requests_per_thread=max(1, requests // 2),
                zipf_exponent=args.zipf,
                seed=args.seed + 7,
            ),
            deadline_ms=args.deadline_ms,
        )
        print(
            f"multi      {multi['throughput_rps']:9.0f} req/s across "
            f"{multi['totals']['models']} models   "
            f"cache-hit {multi['totals']['cache_hit_pct']:.1f}%"
        )

    results = {
        "mode": "smoke" if args.smoke else "full",
        "backend": get_backend().name,
        "machine": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
        "config": {
            "num_threads": threads,
            "requests_per_thread": requests,
            "pool_size": int(len(pool)),
            "zipf_exponent": args.zipf,
            "deadline_ms": args.deadline_ms,
            "max_batch": args.max_batch,
            "seed": args.seed,
            "fit": fit_kwargs,
        },
        "unbatched": unbatched,
        "scheduler": scheduled,
        "speedup": speedup,
        "parity": {"unbatched": unbatched_parity, "scheduler": scheduled_parity},
    }
    if multi is not None:
        results["multi_model"] = multi

    if args.output != "-":
        output = Path(args.output) if args.output else REPO_ROOT / "BENCH_serving.json"
        output.write_text(json.dumps(results, indent=2) + "\n")
        print(f"[wrote {output}]")

    if not (unbatched_parity and scheduled_parity):
        print("ERROR: served outputs are not bitwise direct-predict bytes", file=sys.stderr)
        return 1
    if not args.smoke and speedup < SPEEDUP_TARGET:
        print(
            f"ERROR: scheduler speedup {speedup:.2f}x below the "
            f"{SPEEDUP_TARGET}x target",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
