"""Benchmark: regenerate Table 2 (dataset statistics) and time the
synthetic generators themselves."""

from __future__ import annotations

from repro.experiments import run_experiment
from repro.data.synthetic import make_pems_bay

from conftest import run_once


def test_table2_stats(benchmark, bench_scale):
    result = run_once(benchmark, run_experiment, "table2_stats", scale_name=bench_scale)
    print("\n" + result["text"])
    rows = {row["Dataset"]: row for row in result["rows"]}
    assert set(rows) == {"pems-bay", "pems-07", "pems-08", "melbourne", "airq"}
    # Interval structure must match the paper's Table 2.
    assert rows["pems-bay"]["Interval"] == "5 min"
    assert rows["melbourne"]["Interval"] == "15 min"
    assert rows["airq"]["Interval"] == "60 min"


def test_generator_throughput(benchmark):
    """Time the traffic simulator (many benches depend on its speed)."""
    dataset = benchmark(make_pems_bay, num_sensors=24, num_days=3)
    assert dataset.num_locations == 24
