"""Benchmarks: regenerate Figures 5, 6 and 11 (sensor maps, partitioning).

Shape assertions: each dataset renders a non-degenerate sensor map; the
partition map carries all three marker classes; the ring split's mean
radii are ordered train < validation < test (centre outward).
"""

from __future__ import annotations

from repro.experiments import run_experiment

from conftest import run_once


def test_fig5_sensor_maps(benchmark, bench_scale):
    result = run_once(benchmark, run_experiment, "fig5_sensor_maps", scale_name=bench_scale)
    print("\n" + result["text"])
    assert set(result["maps"]) == {"pems-bay", "pems-07", "pems-08", "melbourne", "airq"}
    for key, art in result["maps"].items():
        assert art.count("o") >= 5, f"{key} map should show sensors"


def test_fig6_partitioning(benchmark, bench_scale):
    result = run_once(benchmark, run_experiment, "fig6_partitioning", scale_name=bench_scale)
    print("\n" + result["text"])
    counts = {row["Set"]: row["Locations"] for row in result["rows"]}
    assert counts["train"] > counts["validation"]
    assert counts["test"] >= counts["train"]  # 4:1:5 proportions
    assert "T" in result["text"] and "U" in result["text"]


def test_fig11_ring_map(benchmark, bench_scale):
    result = run_once(benchmark, run_experiment, "fig11_ring_map", scale_name=bench_scale)
    print("\n" + result["text"])
    radii = result["radii"]
    assert radii["train"] < radii["validation"] < radii["test"], (
        f"ring split must grow outward: {radii}"
    )
