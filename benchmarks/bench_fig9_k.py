"""Benchmark: regenerate Figure 9 (impact of top-K).

Shape assertion: STSM is robust to K on the freeway dataset — the RMSE
spread across the K sweep stays within a moderate band of its best value
(the paper shows near-flat curves on PEMS-Bay).
"""

from __future__ import annotations

from repro.experiments import run_experiment

from conftest import run_once


def test_fig9_k(benchmark, bench_scale):
    result = run_once(
        benchmark,
        run_experiment,
        "fig9_k",
        scale_name=bench_scale,
        models=["STSM"],
        ks=(4, 8, 12),
    )
    print("\n" + result["text"])
    rmses = [row["RMSE"] for row in result["rows"] if row["Model"] == "STSM"]
    spread = (max(rmses) - min(rmses)) / min(rmses)
    assert spread < 0.5, f"K sweep should be reasonably flat, spread={spread:.2f}"
