"""Guard against silent benchmark-format drift.

CI runs every benchmark in ``--smoke`` mode and uploads the produced
JSON as workflow artifacts; this checker then diffs each produced file's
*schema* against the committed ``BENCH_*.json`` baseline at the repo
root.  A benchmark whose output shape changed (renamed key, list that
became a dict, number that became a string) fails the build instead of
silently rotting the committed baselines and their downstream readers.

Values are ignored — smoke runs use tiny shapes — only structure is
compared.  Lists collapse to their element shape (smoke runs have fewer
seeds/repeats), and the check is one-directional: a produced document
must be a *structural subset* of its baseline.  Dict keys only the
(full-run) baseline has — e.g. the serving benchmark's full-only
``multi_model`` leg, or extra forward/backward cases — may be absent
from a smoke run, but a key the baseline does not know, or a shared
key whose shape changed, is drift and fails.

Usage::

    python benchmarks/check_bench_schema.py PRODUCED BASELINE [PRODUCED BASELINE ...]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

WILDCARD = "*"

#: Optional legs that only exist when an optional dependency is present
#: on the producing machine (e.g. CI's torch leg produces torch timings
#: the torch-less committed baseline cannot carry).  Maps
#: ``(dict_path, produced_key)`` — ``produced_key`` may be WILDCARD —
#: to the *sibling* baseline key whose skeleton the extra key must
#: match.  Everything else stays strict.
OPTIONAL_SIBLINGS: dict[tuple[str, str], str] = {
    ("$.seconds", "torch"): "numpy_ref",
    ("$", "speedup_torch"): "speedup",
    ("$.torch", "device"): "detail",
    # bench_sweep --jobs-list N adds jobsN_* legs the committed baseline
    # (jobs 2 and 4) cannot enumerate; each must look like a jobs2 leg.
    # Harmless for other benchmarks: the sibling must exist in *their*
    # baseline for the wildcard to apply, and none of them has one.
    ("$.seconds", WILDCARD): "jobs2_cold",
    ("$.speedup", WILDCARD): "jobs2_cold",
    ("$.telemetry.worker_pids", WILDCARD): "jobs2_cold",
}


def skeleton(value):
    """Reduce a JSON value to its type structure.

    Scalars become type names (bool / number / string / null); dicts
    keep their keys (key names are exactly where rename-drift shows);
    lists whose members all share one skeleton collapse to a single
    element shape, so differing seed/repeat counts compare equal.
    """
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "string"
    if value is None:
        return "null"
    if isinstance(value, list):
        items = [skeleton(v) for v in value]
        if not items:
            return [WILDCARD]
        if all(item == items[0] for item in items):
            return [items[0]]
        return items
    if isinstance(value, dict):
        return {key: skeleton(v) for key, v in value.items()}
    raise TypeError(f"unexpected JSON type {type(value).__name__}")


def matches(produced, baseline, path: str, problems: list[str]) -> None:
    """Structural-subset comparison; appends mismatch descriptions."""
    if isinstance(produced, list) and isinstance(baseline, list):
        if produced == [WILDCARD] or baseline == [WILDCARD]:
            return  # an empty list matches any list
        if len(produced) == 1 and len(baseline) == 1:
            matches(produced[0], baseline[0], f"{path}[]", problems)
            return
        if len(produced) != len(baseline):
            problems.append(f"{path}: list shape {produced} != baseline {baseline}")
            return
        for index, (inner_a, inner_b) in enumerate(zip(produced, baseline)):
            matches(inner_a, inner_b, f"{path}[{index}]", problems)
        return
    if isinstance(produced, dict) and isinstance(baseline, dict):
        # Subset rule: keys only the (full-run) baseline has are fine in
        # a smoke run; keys the baseline has never seen are drift —
        # unless OPTIONAL_SIBLINGS names a sibling baseline key whose
        # skeleton the extra key matches (optional-dependency legs).
        for key in sorted(set(produced) - set(baseline)):
            sibling = OPTIONAL_SIBLINGS.get((path, key)) or OPTIONAL_SIBLINGS.get(
                (path, WILDCARD)
            )
            if sibling is not None and sibling in baseline:
                matches(produced[key], baseline[sibling], f"{path}.{key}", problems)
            else:
                problems.append(
                    f"{path}: key absent from the committed baseline ['{key}']"
                )
        for key in sorted(set(produced) & set(baseline)):
            matches(produced[key], baseline[key], f"{path}.{key}", problems)
        return
    if produced != baseline:
        problems.append(f"{path}: {produced!r} != baseline {baseline!r}")


def check_pair(produced_path: Path, baseline_path: Path) -> list[str]:
    produced = skeleton(json.loads(produced_path.read_text()))
    baseline = skeleton(json.loads(baseline_path.read_text()))
    problems: list[str] = []
    matches(produced, baseline, "$", problems)
    return problems


def main(argv: list[str] | None = None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    if not argv or len(argv) % 2:
        print(__doc__.strip().splitlines()[-1], file=sys.stderr)
        return 2
    failed = False
    for produced, baseline in zip(argv[0::2], argv[1::2]):
        produced_path, baseline_path = Path(produced), Path(baseline)
        for path in (produced_path, baseline_path):
            if not path.exists():
                print(f"MISSING  {path}", file=sys.stderr)
                failed = True
                break
        else:
            problems = check_pair(produced_path, baseline_path)
            if problems:
                failed = True
                print(f"DRIFT    {produced_path} vs {baseline_path}:")
                for problem in problems:
                    print(f"         {problem}")
            else:
                print(f"OK       {produced_path} matches {baseline_path}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
