"""Benchmark: regenerate Table 9 (ring space split on PEMS-Bay).

Shape assertion: STSM beats GE-GAN and IGNNK under the ring split and
stays competitive with INCREASE (paper: STSM wins all four metrics).
"""

from __future__ import annotations

from repro.experiments import run_experiment

from conftest import run_once


def test_table9_ring(benchmark, bench_scale):
    result = run_once(benchmark, run_experiment, "table9_ring", scale_name=bench_scale)
    print("\n" + result["text"])
    rmse = {row["Model"]: row["RMSE"] for row in result["rows"]}
    assert rmse["STSM"] < rmse["GE-GAN"] * 1.05
    assert rmse["STSM"] < rmse["IGNNK"] * 1.05
    assert rmse["STSM"] < rmse["INCREASE"] * 1.15
