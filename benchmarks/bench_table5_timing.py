"""Benchmark: regenerate Table 5 (training and testing time).

Shape assertion: per prediction workload, STSM's test time stays below the
per-node kriging baselines' (IGNNK/INCREASE) — the paper's headline timing
claim — while all timings are reported for the record.
"""

from __future__ import annotations

from repro.experiments import run_experiment

from conftest import run_once


def test_table5_timing(benchmark, bench_scale):
    result = run_once(
        benchmark,
        run_experiment,
        "table5_timing",
        scale_name=bench_scale,
        datasets=["pems-bay", "melbourne"],
    )
    print("\n" + result["text"])
    rows = result["rows"]
    by_dataset: dict[str, dict[str, dict]] = {}
    for row in rows:
        by_dataset.setdefault(row["Dataset"], {})[row["Model"]] = row
    for dataset, models in by_dataset.items():
        # Wall-clock comparisons are inherently noisy on shared CPUs; the
        # paper's claim is that STSM's test path is not slower in kind
        # than the per-node kriging loop, so allow a generous band.
        assert models["STSM"]["_test_seconds"] < models["INCREASE"]["_test_seconds"] * 2.5, (
            f"STSM test time should not exceed INCREASE's substantially on {dataset}"
        )
        assert all(row["_train_seconds"] > 0 for row in models.values())
