"""Benchmark (extension): progressive sensor deployment.

Regenerates the paper's §1 motivating scenario (staged deployment, the
Hong Kong case) as a measured curve.  Shape assertions (see the
experiment docstring for the mechanism):

* the global IDW reference is never misled by deployment (flat to
  improving, 5% tolerance);
* the learned models recover from the half-deployment dip: final-stage
  core RMSE is below the mid-stage RMSE;
* STSM stays in INCREASE's accuracy band at every stage.
"""

from __future__ import annotations

from repro.experiments import run_experiment

from conftest import run_once


def test_ext_progressive(benchmark, bench_scale):
    result = run_once(
        benchmark,
        run_experiment,
        "ext_progressive",
        scale_name=bench_scale,
        dataset_key="pems-bay",
    )
    print("\n" + result["text"])

    idw = result["core_rmse"]["IDW"]
    assert all(later <= earlier * 1.05 for earlier, later in zip(idw, idw[1:])), (
        "global IDW should never be misled by additional deployment"
    )
    for name in ("INCREASE", "STSM"):
        curve = result["core_rmse"][name]
        assert curve[-1] <= curve[1] * 1.05, (
            f"{name}: completing deployment should recover the mid-stage dip"
        )
    stsm = result["core_rmse"]["STSM"]
    increase = result["core_rmse"]["INCREASE"]
    for stage, (ours, theirs) in enumerate(zip(stsm, increase)):
        assert ours < theirs * 1.4, f"STSM should stay in band at stage {stage}"
