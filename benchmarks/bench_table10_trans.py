"""Benchmark: regenerate Table 10 (transformer temporal module).

Shape assertion: STSM-trans runs end to end and lands in the same accuracy
band as STSM (paper: within ~1% RMSE of each other, trans slightly ahead).
"""

from __future__ import annotations

from repro.experiments import run_experiment

from conftest import run_once


def test_table10_trans(benchmark, bench_scale):
    result = run_once(benchmark, run_experiment, "table10_trans", scale_name=bench_scale)
    print("\n" + result["text"])
    rmse = {row["Model"]: row["RMSE"] for row in result["rows"]}
    # The paper reports a <1% gap; at reduced scale we allow a wider band
    # but the two must be the same order of accuracy.
    assert rmse["STSM-trans"] < rmse["STSM"] * 1.35, (
        f"STSM-trans should be in STSM's accuracy band, got {rmse}"
    )
