"""Benchmark: regenerate Table 8 (similarity gain of selective masking).

Shape assertion: selective masking yields a higher mean similarity to the
unobserved region than random masking on a majority of datasets (the paper
reports positive gains on all five; small-scale POI fields are noisier, so
we require >= 4/5 positive and a positive mean).
"""

from __future__ import annotations

import numpy as np

from repro.experiments import run_experiment

from conftest import run_once


def test_table8_simgain(benchmark, bench_scale):
    result = run_once(benchmark, run_experiment, "table8_simgain", scale_name=bench_scale)
    print("\n" + result["text"])
    gains = [row["Gain%"] for row in result["rows"]]
    assert sum(g > 0 for g in gains) >= len(gains) - 1, f"gains mostly positive, got {gains}"
    assert np.mean(gains) > 0, f"mean gain should be positive, got {gains}"
