"""Micro-benchmark: vectorised edge sparsification in temporal_adjacency.

The ``q_kk``/``q_ku`` top-pair edge writes used to be nested Python
loops; they are now fancy-indexed scatter assignments.  This benchmark
keeps the loop reference implementation around, asserts the vectorised
version produces the identical adjacency, and reports the speedup at a
paper-scale node count.
"""

from __future__ import annotations

import time

import numpy as np

from repro.temporal import temporal_adjacency

from conftest import run_once


def _temporal_adjacency_loops(
    observed_distances, cross_distances, observed_index, target_index, num_nodes,
    q_kk=1, q_ku=1,
):
    """Pre-vectorisation reference (the original nested loops)."""
    observed_index = np.asarray(observed_index, dtype=int)
    n_obs = len(observed_index)
    adjacency = np.zeros((num_nodes, num_nodes))
    if n_obs > 1 and q_kk > 0:
        budget = min(q_kk, n_obs - 1)
        masked = observed_distances + np.diag(np.full(n_obs, np.inf))
        nearest = np.argsort(masked, axis=1)[:, :budget]
        for local_i, partners in enumerate(nearest):
            gi = observed_index[local_i]
            for local_j in partners:
                gj = observed_index[int(local_j)]
                adjacency[gi, gj] = 1.0
                adjacency[gj, gi] = 1.0
    if cross_distances is not None and target_index is not None and len(target_index) and q_ku > 0:
        target_index = np.asarray(target_index, dtype=int)
        budget = min(q_ku, n_obs)
        nearest = np.argsort(cross_distances, axis=0)[:budget, :]
        for col, tgt in enumerate(target_index):
            for local_i in nearest[:, col]:
                adjacency[tgt, observed_index[int(local_i)]] = 1.0
    return adjacency


def test_vectorised_sparsification_matches_and_wins(benchmark):
    rng = np.random.default_rng(11)
    num_nodes = 1200
    observed_index = np.sort(rng.choice(num_nodes, size=900, replace=False))
    target_index = np.setdiff1d(np.arange(num_nodes), observed_index)
    n_obs, n_tgt = len(observed_index), len(target_index)
    observed_distances = rng.random((n_obs, n_obs))
    observed_distances = (observed_distances + observed_distances.T) / 2
    np.fill_diagonal(observed_distances, 0.0)
    cross_distances = rng.random((n_obs, n_tgt))
    kwargs = dict(q_kk=3, q_ku=2)

    began = time.perf_counter()
    reference = _temporal_adjacency_loops(
        observed_distances, cross_distances, observed_index, target_index,
        num_nodes, **kwargs,
    )
    loop_seconds = time.perf_counter() - began

    vectorised = run_once(
        benchmark,
        temporal_adjacency,
        observed_distances,
        cross_distances,
        observed_index,
        target_index,
        num_nodes,
        **kwargs,
    )
    vec_seconds = benchmark.stats.stats.total
    print(
        f"\ntemporal_adjacency N={num_nodes}: loops {loop_seconds * 1e3:.1f} ms, "
        f"vectorised {vec_seconds * 1e3:.1f} ms "
        f"({loop_seconds / max(vec_seconds, 1e-9):.1f}x)"
    )
    assert np.array_equal(reference, vectorised)
    # Generous bound: the scatter writes must not be slower than the loops.
    assert vec_seconds < loop_seconds
