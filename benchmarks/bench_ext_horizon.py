"""Benchmark (extension): error vs forecast lead time.

Shape assertions (see the experiment docstring for why the per-lead curve
itself is not asserted at bench scale):

* every learned model stays at or below the historical-average floor at
  every lead time (2% tolerance);
* averaged over leads, both learned models clearly beat the floor.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import run_experiment

from conftest import run_once


def test_ext_horizon(benchmark, bench_scale):
    result = run_once(
        benchmark,
        run_experiment,
        "ext_horizon",
        scale_name=bench_scale,
        dataset_key="pems-bay",
    )
    print("\n" + result["text"])

    floor = np.asarray(result["curves"]["HistoricalAverage"])
    for name in ("INCREASE", "STSM"):
        curve = np.asarray(result["curves"][name])
        assert np.all(curve <= floor * 1.02), (
            f"{name} should not lose to the seasonal floor at any lead"
        )
        assert curve.mean() < floor.mean() * 0.95, (
            f"{name} should clearly beat the floor on average"
        )
