"""Streaming ingestion + incremental refit benchmark: fresh models, zero drops.

Replays a synthetic sensor feed on a simulated clock into a
:class:`~repro.streaming.StreamBuffer`, runs a
:class:`~repro.streaming.RefitScheduler` over the rolling window
(warm-started from the previous refit's checkpoint, DTW pairs and
masked adjacencies shared through the
:class:`~repro.engine.ArtifactStore`), and blue/green swaps every
refreshed model into a live :class:`~repro.serving.ServingRuntime`
behind a real HTTP server while concurrent wire clients hammer the
model key without pause.  Three hard gates:

* **parity** — every refit's weights and direct-``predict`` bytes must
  be bitwise identical to a from-scratch fit of the same window
  (:func:`~repro.streaming.fit_reference`: in-memory warm state, all
  cross-fit caches off), and every block served over the wire must be
  bitwise one of the blocks obtained by replaying the deployed
  services' logged batch compositions through those references;
* **no drops** — across every swap, zero client errors, zero
  failed/rejected requests, and accepted == completed over the retired
  and live scheduler counters combined;
* **warm speedup** (full mode) — the mean warm incremental refit must
  beat a cold from-scratch fit (full training budget, private cold
  caches) on the same window by ``WARM_SPEEDUP_TARGET``; both sides are
  measured under the same concurrent serving load, the operational
  refresh-while-serving regime.

Also reported: per-refit refit-lag (trigger-row arrival → model live),
swap telemetry, store reuse counters, and the ``/v1/stats`` streaming
section as fetched over the wire.

Run::

    PYTHONPATH=src python benchmarks/bench_streaming.py            # full
    PYTHONPATH=src python benchmarks/bench_streaming.py --smoke    # CI wiring

Writes ``BENCH_streaming.json`` at the repository root (override with
``--output``; ``-`` skips writing).  Exits non-zero on any parity
failure, any dropped request, or (full mode) a warm speedup below
target.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.backend import get_backend  # noqa: E402
from repro.core import STSMConfig, STSMForecaster  # noqa: E402
from repro.data import WindowSpec, space_split  # noqa: E402
from repro.data.synthetic import make_dataset  # noqa: E402
from repro.engine import ArtifactStore, reset_store  # noqa: E402
from repro.serving import ServingRuntime, WireDriver  # noqa: E402
from repro.serving.transport import ForecastClient, ForecastHTTPServer  # noqa: E402
from repro.streaming import (  # noqa: E402
    FeedReplayer,
    LiveSwapBridge,
    RefitPolicy,
    RefitScheduler,
    StreamBuffer,
    fit_reference,
)

#: Full-mode gate: mean warm incremental refit vs cold from-scratch fit
#: (full training budget, private cold caches) on the same window.
WARM_SPEEDUP_TARGET = 1.5
MODEL_KEY = "stsm/pems-bay"


def _state_bytes(model) -> dict[str, bytes]:
    return {k: v.tobytes() for k, v in model.network.state_dict().items()}


def run_live(args, *, dataset, split, spec, config, policy, checkpoint_root):
    """The live phase: clocked replay → rolling refits → blue/green swaps
    under continuous concurrent wire load.

    Returns everything the parity and reporting phases need: the
    scheduler (buffer + records), per-refit models/services/wall times,
    the hammered (start, block) samples, and the runtime/wire telemetry.
    """
    last_trigger = policy.trigger_watermark(policy.max_refits - 1)
    buffer = StreamBuffer(dataset)
    replayer = FeedReplayer(
        dataset, buffer, speedup=1.0, interval_s=args.interval_s,
        stop_step=last_trigger, seed=args.seed,
    )
    store = ArtifactStore()
    scheduler = RefitScheduler(
        buffer, config, split, spec, policy, checkpoint_root, store=store
    )

    usable = policy.window_steps - spec.total
    pool = [int(s) for s in range(0, usable + 1, 4)]
    models, services, walls = [], [], []
    served: list[list[tuple[int, bytes]]] = [[] for _ in range(args.threads)]
    errors: list[Exception] = []
    stop = threading.Event()

    with ServingRuntime(
        deadline_ms=args.deadline_ms, max_queue=4096, cache_size=max(256, len(pool))
    ) as runtime:
        bridge = LiveSwapBridge(runtime, MODEL_KEY, store=store, log_batches=True)
        with ForecastHTTPServer(runtime).start() as server:
            server.set_ready()
            with WireDriver("127.0.0.1", server.port, MODEL_KEY) as driver:

                def hammer(worker: int) -> None:
                    i = 0
                    while not stop.is_set():
                        start = pool[(worker + i) % len(pool)]
                        try:
                            block = driver(start)
                        except Exception as error:  # noqa: BLE001
                            errors.append(error)
                            return
                        served[worker].append((start, block.tobytes()))
                        i += 1

                threads = [
                    threading.Thread(target=hammer, args=(w,))
                    for w in range(args.threads)
                ]
                replayer.start()
                try:
                    for index in range(policy.max_refits):
                        target = scheduler.next_trigger()
                        if not buffer.wait_for_watermark(target, timeout=300.0):
                            raise RuntimeError(
                                f"watermark {target} never arrived (replay "
                                f"delivered {replayer.delivered})"
                            )
                        begun = time.perf_counter()
                        record = scheduler.run_once(timeout=0)
                        walls.append(time.perf_counter() - begun)
                        models.append(scheduler.model)
                        services.append(bridge.deploy(scheduler.model, record))
                        print(
                            f"[refit {index}: window {record.window_start}-"
                            f"{record.window_end}  warm={record.warm_started}  "
                            f"fit {walls[-1]:.2f}s  lag "
                            f"{bridge.deploys[-1]['refit_lag_seconds']:.2f}s]"
                        )
                        if index == 0:
                            # Traffic starts the moment a model is live and
                            # runs uninterrupted across every later swap.
                            for thread in threads:
                                thread.start()
                    # Cold from-scratch baseline (full training budget,
                    # private cold caches) fitted under the same
                    # concurrent serving load the warm refits absorbed —
                    # the operational refresh-while-serving comparison.
                    cold_view = buffer.dataset_view(
                        *policy.window(policy.max_refits - 1), name_suffix="cold"
                    )
                    cold_model = STSMForecaster(
                        config.replace(cache_store=False), name="STSM-cold"
                    )
                    begun = time.perf_counter()
                    cold_model.fit(
                        cold_view, split, spec, np.arange(cold_view.num_steps)
                    )
                    cold_wall = time.perf_counter() - begun
                    time.sleep(0.2)
                finally:
                    stop.set()
                    for thread in threads:
                        if thread.is_alive():
                            thread.join(timeout=60.0)
                    replayer.stop()
                    replayer.join(timeout=10.0)
            runtime.drain()
            with ForecastClient("127.0.0.1", server.port) as client:
                wire_stats = client.stats()
            transport = server.counters.snapshot()
        stats = runtime.stats()

    return {
        "scheduler": scheduler,
        "cold_wall": cold_wall,
        "replayer": replayer,
        "models": models,
        "services": services,
        "walls": walls,
        "served": [s for per_thread in served for s in per_thread],
        "errors": errors,
        "runtime_stats": stats,
        "wire_stats": wire_stats,
        "transport": transport,
    }


def check_parity(scheduler, models, services) -> dict:
    """The hard parity gate: refit weights/predict bytes vs from-scratch
    references, then every deployed service's logged batch compositions
    replayed through its reference."""
    spec_total = scheduler.spec.total
    usable = scheduler.policy.window_steps - spec_total
    starts = np.arange(0, usable + 1, 4)
    refits = []
    candidates: dict[int, set[bytes]] = {}
    for index, (model, service) in enumerate(zip(models, services)):
        reference = fit_reference(scheduler, index)
        state, ref_state = _state_bytes(model), _state_bytes(reference)
        state_ok = state == ref_state
        predict_ok = (
            model.predict(starts).tobytes() == reference.predict(starts).tobytes()
        )
        replayed = 0
        for batch in service.batch_log:
            batch = np.asarray(batch, dtype=int)
            blocks = reference.predict(batch)
            for start, block in zip(batch, blocks):
                candidates.setdefault(int(start), set()).add(block.tobytes())
            replayed += len(batch)
        refits.append({
            "index": index,
            "state_bitwise": state_ok,
            "predict_bitwise": predict_ok,
            "batch_rows_replayed": replayed,
        })
    return {"refits": refits, "candidates": candidates}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny feed / single-epoch refits (CI wiring check)")
    parser.add_argument("--threads", type=int, default=None,
                        help="concurrent wire clients (default: 8 full, 4 smoke)")
    parser.add_argument("--refits", type=int, default=None,
                        help="rolling refits to run (default: 3 full, 2 smoke; "
                             "must be >= 2 so at least one refit warm-starts)")
    parser.add_argument("--interval-s", type=float, default=None,
                        help="simulated-clock seconds per feed row "
                             "(default: 0.005 full, 0.002 smoke)")
    parser.add_argument("--deadline-ms", type=float, default=2.0,
                        help="serving micro-batch deadline")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", default=None,
                        help="result JSON path (default: "
                             "<repo>/BENCH_streaming.json; '-' skips writing)")
    args = parser.parse_args(argv)

    args.threads = args.threads if args.threads is not None else (4 if args.smoke else 8)
    refits = args.refits if args.refits is not None else (2 if args.smoke else 3)
    if refits < 2:
        parser.error("--refits must be >= 2 (refit 1+ proves the warm-start chain)")
    args.interval_s = (
        args.interval_s if args.interval_s is not None
        else (0.002 if args.smoke else 0.005)
    )
    # Feed/model sizing.  batch_size and window_stride are chosen so the
    # rolling window always yields >= 1 *full* training batch: the
    # contrastive loss drops partial batches, and a window whose only
    # batch is partial would never update a weight — making every parity
    # assertion below vacuously true.
    if args.smoke:
        feed = dict(num_sensors=10, num_days=1)
        window_steps, refit_every = 64, 32
        refit_epochs, cold_epochs, hidden = 1, 2, 8
        batch_size = 4
    else:
        feed = dict(num_sensors=16, num_days=2)
        window_steps, refit_every = 128, 64
        refit_epochs, cold_epochs, hidden = 2, 6, 16
        batch_size = 8
    policy = RefitPolicy(
        window_steps=window_steps, refit_every=refit_every,
        refit_epochs=refit_epochs, max_refits=refits,
    )
    dataset = make_dataset("pems-bay", seed=args.seed, **feed)
    last_trigger = policy.trigger_watermark(refits - 1)
    if last_trigger > dataset.num_steps:
        parser.error(
            f"{refits} refits need {last_trigger} feed steps; the "
            f"{'smoke' if args.smoke else 'full'} feed has {dataset.num_steps}"
        )
    split = space_split(dataset.coords, "horizontal")
    spec = WindowSpec(input_length=8, horizon=8)
    config = STSMConfig(
        hidden_dim=hidden, num_blocks=1, tcn_levels=2, gcn_depth=1,
        epochs=cold_epochs, patience=cold_epochs, batch_size=batch_size,
        window_stride=4, top_k=min(6, feed["num_sensors"] - 1), seed=args.seed,
    )

    print(
        f"[{'smoke' if args.smoke else 'full'} feed: {dataset.num_steps} steps x "
        f"{feed['num_sensors']} sensors, {refits} refits over "
        f"{window_steps}-step windows every {refit_every} steps, "
        f"{args.threads} wire clients]"
    )
    try:
        with tempfile.TemporaryDirectory(prefix="repro-streaming-bench-") as tmp:
            live = run_live(
                args, dataset=dataset, split=split, spec=spec, config=config,
                policy=policy, checkpoint_root=Path(tmp) / "refits",
            )
            scheduler = live["scheduler"]

            # ----------------------------------------------------------
            # Gate 1: bitwise parity (weights, predicts, served bytes).
            # ----------------------------------------------------------
            print("[parity: from-scratch reference fits + batch-log replay]")
            parity = check_parity(scheduler, live["models"], live["services"])
            candidates = parity.pop("candidates")
            served_checked = len(live["served"])
            served_ok = all(
                block in candidates.get(start, ())
                for start, block in live["served"]
            )
            parity["served_wire"] = served_ok
            parity["served_blocks_checked"] = served_checked
            parity_ok = served_ok and all(
                r["state_bitwise"] and r["predict_bitwise"] for r in parity["refits"]
            )
            print(
                f"parity     refits="
                f"{[r['state_bitwise'] and r['predict_bitwise'] for r in parity['refits']]}"
                f"  wire={served_ok} ({served_checked} served blocks)"
            )

            # ----------------------------------------------------------
            # Gate 2: no request dropped or errored across the swaps.
            # ----------------------------------------------------------
            stats = live["runtime_stats"]
            retired = stats["swaps"]["retired"]
            totals = stats["totals"]
            no_drop = {
                "client_errors": len(live["errors"]),
                "served_blocks": served_checked,
                "swaps": stats["swaps"]["count"],
                "submitted": retired["submitted"] + totals["submitted"],
                "completed": retired["completed"] + totals["completed"],
                "failed": retired["failed"] + totals["failed"],
                "rejected": retired["rejected"] + totals["rejected"],
            }
            no_drop["ok"] = (
                not live["errors"]
                and served_checked > 0
                and no_drop["swaps"] == refits - 1
                and no_drop["failed"] == 0
                and no_drop["rejected"] == 0
                and no_drop["submitted"] == no_drop["completed"]
            )
            print(
                f"no-drop    ok={no_drop['ok']}  swaps={no_drop['swaps']}  "
                f"submitted={no_drop['submitted']}  completed={no_drop['completed']}  "
                f"failed={no_drop['failed']}  rejected={no_drop['rejected']}"
            )

            # ----------------------------------------------------------
            # Gate 3 (full): warm incremental refit vs cold from-scratch.
            # ----------------------------------------------------------
            cold_wall = live["cold_wall"]
            warm_walls = live["walls"][1:]
            warm_mean = sum(warm_walls) / len(warm_walls)
            warm_speedup = cold_wall / warm_mean
            warm = {
                "cold_epochs": cold_epochs,
                "refit_epochs": refit_epochs,
                "cold_seconds": cold_wall,
                "warm_seconds_mean": warm_mean,
                "warm_seconds": warm_walls,
                "speedup": warm_speedup,
                "target": WARM_SPEEDUP_TARGET,
                # Smoke shapes are too small for timing to mean anything;
                # the gate only binds in full mode.
                "enforced": not args.smoke,
            }
            print(
                f"warm-vs-cold {warm_speedup:.2f}x  (cold {cold_wall:.2f}s @ "
                f"{cold_epochs} epochs vs warm {warm_mean:.2f}s @ "
                f"{refit_epochs} epochs)"
            )

            bridge_section = stats["streaming"]
            wire_runtime = live["wire_stats"]["runtime"]
            results = {
                "mode": "smoke" if args.smoke else "full",
                "backend": get_backend().name,
                "machine": {
                    "python": platform.python_version(),
                    "numpy": np.__version__,
                    "platform": platform.platform(),
                },
                "config": {
                    "feed": {"name": "pems-bay", **feed,
                             "steps": dataset.num_steps, "seed": args.seed},
                    "window_steps": window_steps,
                    "refit_every": refit_every,
                    "refits": refits,
                    "refit_epochs": refit_epochs,
                    "cold_epochs": cold_epochs,
                    "hidden": hidden,
                    "interval_s": args.interval_s,
                    "deadline_ms": args.deadline_ms,
                    "threads": args.threads,
                },
                "replay": live["replayer"].stats,
                "refits": [r.as_dict() for r in scheduler.records],
                "refit_lag": bridge_section["refit_lag"],
                "swap": {
                    "deploys": bridge_section["deploys"],
                    "swaps": bridge_section["swaps"],
                    "count": stats["swaps"]["count"],
                    "swap_seconds_max": max(
                        d["swap_seconds"] for d in bridge_section["history"]
                    ),
                },
                "no_drop": no_drop,
                "parity": parity,
                "warm_vs_cold": warm,
                "transport": live["transport"],
                "stats_on_wire": {
                    "streaming": "streaming" in wire_runtime,
                    "store": "store" in wire_runtime,
                },
                "store": scheduler.store.stats["totals"],
            }
    finally:
        reset_store()

    if args.output != "-":
        output = Path(args.output) if args.output else REPO_ROOT / "BENCH_streaming.json"
        output.write_text(json.dumps(results, indent=2) + "\n")
        print(f"[wrote {output}]")

    if not parity_ok:
        print(
            "ERROR: incremental refit is not bitwise identical to the "
            "from-scratch reference", file=sys.stderr,
        )
        return 1
    if not no_drop["ok"]:
        print("ERROR: requests dropped or errored across a swap", file=sys.stderr)
        return 1
    if not (results["stats_on_wire"]["streaming"] and results["stats_on_wire"]["store"]):
        print("ERROR: streaming/store telemetry missing from GET /v1/stats",
              file=sys.stderr)
        return 1
    if warm["enforced"] and warm_speedup < warm["target"]:
        print(
            f"ERROR: warm refit speedup {warm_speedup:.2f}x below the "
            f"{warm['target']}x target", file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
