"""Cross-fit artifact-store benchmark: sweeps stop re-paying DTW.

Three legs, all over the same fixed-seed STSM fits:

* **sweep_nostore** — a 3-seed sweep with per-fit cache isolation (the
  pre-store behaviour): every fit re-pays the quadratic DTW adjacency
  builds even though the dataset never changed;
* **sweep_store** — the same sweep drawing from one shared
  :class:`~repro.engine.ArtifactStore` with a disk tier: the first fit
  seeds the store, the second and later fits reuse every unchanged DTW
  pair and masked adjacency (acceptance target: >= 2x wall-clock on the
  second-and-later fits);
* **cold_disk** — a fresh store instance over the persisted directory
  with an empty memory tier (a new process), re-running one fit entirely
  from disk hits;
* **sweep_quota** — the same sweep against a disk tier capped at ~40%
  of the unbounded leg's footprint: the LRU reaper must evict whole
  segments (hard gate), the post-GC tier must sit at or under the quota
  (hard gate), and the hit rate may trail the unbounded sweep by at
  most 10% relative (full mode).

Every leg's per-seed metrics (loss history, best validation RMSE, a
sha256 over the predictions) are certified *identical* to the
store-disabled sweep — the store is bit-exact by contract (an evicted
entry is a miss that recomputes, never a wrong answer), and this
benchmark fails if it is not.

Run::

    PYTHONPATH=src python benchmarks/bench_cache_store.py           # full
    PYTHONPATH=src python benchmarks/bench_cache_store.py --smoke   # CI wiring

Writes ``BENCH_cache_store.json`` at the repository root (override with
``--output``; ``-`` skips writing).

CI sweep-cache mode (the ``sweep-cache`` workflow job)::

    REPRO_CACHE_DIR=/tmp/cache python benchmarks/bench_cache_store.py \
        --ci-sweep first  --sweep-out run1.json
    REPRO_CACHE_DIR=/tmp/cache python benchmarks/bench_cache_store.py \
        --ci-sweep second --sweep-out run2.json --compare run1.json

runs a 2-seed mini-sweep through the real ``run_matrix`` path twice
against one cache directory; the ``second`` phase exits non-zero unless
the store recorded hits *and* the sweep metrics are bit-identical to the
first run's.
"""

from __future__ import annotations

import argparse
import dataclasses
import hashlib
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import STSMConfig, STSMForecaster  # noqa: E402
from repro.data import WindowSpec, space_split, temporal_split  # noqa: E402
from repro.data.synthetic import make_pems_bay  # noqa: E402
from repro.engine import ArtifactStore, StoreConfig, open_store, reset_store  # noqa: E402
from repro.evaluation import forecast_window_starts  # noqa: E402

SEEDS = (0, 1, 2)


def _fit_once(seed: int, cache_store: bool, shape: dict) -> dict:
    """One fixed-seed STSM fit + predict; returns timing and metric digests."""
    dataset = make_pems_bay(
        num_sensors=shape["sensors"], num_days=shape["days"], seed=7
    )
    split = space_split(dataset.coords, "horizontal")
    spec = WindowSpec(input_length=8, horizon=8)
    train_ix, _ = temporal_split(dataset.num_steps)
    config = STSMConfig(
        epochs=shape["epochs"],
        patience=shape["epochs"],
        hidden_dim=shape["hidden"],
        num_blocks=1,
        top_k=8,
        window_stride=shape["stride"],
        dtw_resolution=shape["resolution"],
        seed=seed,
        cache_store=cache_store,
    )
    model = STSMForecaster(config)
    began = time.perf_counter()
    report = model.fit(dataset, split, spec, train_ix)
    fit_seconds = time.perf_counter() - began
    starts = forecast_window_starts(dataset, spec, max_windows=4)
    predictions = model.predict(starts)
    return {
        "seconds": fit_seconds,
        "history": [float(x) for x in report.history],
        "best_val_rmse": float(report.extra["best_val_rmse"]),
        "predictions_sha256": hashlib.sha256(predictions.tobytes()).hexdigest(),
    }


def _metrics_of(run: dict) -> tuple:
    return (run["history"], run["best_val_rmse"], run["predictions_sha256"])


def run_benchmark(args: argparse.Namespace) -> int:
    if args.smoke:
        shape = dict(sensors=16, days=1, epochs=1, hidden=8, stride=8, resolution=24)
        seeds = SEEDS[:2]
    else:
        # DTW-dominated shape: at 80 sensors / 96-point profiles the
        # adjacency builds dwarf the (deliberately small) network, which
        # is exactly the regime the paper's tables 6-9 sweeps live in.
        shape = dict(sensors=80, days=2, epochs=2, hidden=8, stride=16, resolution=96)
        seeds = SEEDS

    reset_store()
    nostore = [_fit_once(seed, False, shape) for seed in seeds]

    cache_dir = Path(tempfile.mkdtemp(prefix="bench-cache-store-"))
    store = open_store(StoreConfig(disk_dir=cache_dir))
    warm = [_fit_once(seed, True, shape) for seed in seeds]
    store.persist()
    unbounded_bytes = store.disk_usage()
    warm_stats = store.stats["totals"]

    # Cold start: a brand-new process would see only the disk tier.
    reset_store()
    cold_store = open_store(store=ArtifactStore(disk_dir=cache_dir))
    cold = _fit_once(seeds[0], True, shape)
    cold_stats = cold_store.stats["totals"]
    reset_store()

    # Quota leg: the identical sweep against a tier capped well below
    # the unbounded footprint, so the LRU reaper has to evict.
    quota = max(1, int(unbounded_bytes * 0.4))
    quota_dir = Path(tempfile.mkdtemp(prefix="bench-cache-quota-"))
    quota_store = open_store(StoreConfig(disk_dir=quota_dir, max_bytes=quota))
    quota_began = time.perf_counter()
    bounded = [_fit_once(seed, True, shape) for seed in seeds]
    quota_seconds = time.perf_counter() - quota_began
    quota_store.persist()  # quota store: persist() enforces the cap itself
    quota_bytes_after = quota_store.disk_usage()
    quota_stats = quota_store.stats["totals"]
    reset_store()

    identical = (
        all(_metrics_of(a) == _metrics_of(b) for a, b in zip(nostore, warm))
        and _metrics_of(cold) == _metrics_of(nostore[0])
        and all(_metrics_of(a) == _metrics_of(b) for a, b in zip(nostore, bounded))
    )

    repeat_speedup = float(
        np.mean([r["seconds"] for r in nostore[1:]])
        / max(np.mean([r["seconds"] for r in warm[1:]]), 1e-9)
    )
    cold_speedup = float(nostore[0]["seconds"] / max(cold["seconds"], 1e-9))

    def _hit_rate(stats: dict) -> float:
        served = stats["hits"] + stats["disk_hits"]
        return served / max(served + stats["misses"], 1)

    warm_hit_rate = _hit_rate(warm_stats)
    quota_hit_rate = _hit_rate(quota_stats)
    evicted_segments = quota_stats["lifecycle"]["evicted_segments"]

    results = {
        "mode": "smoke" if args.smoke else "full",
        "machine": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
        "shape": shape,
        "seeds": list(seeds),
        "seconds": {
            "sweep_nostore": [r["seconds"] for r in nostore],
            "sweep_store": [r["seconds"] for r in warm],
            "cold_disk": cold["seconds"],
            "sweep_quota": quota_seconds,
        },
        "speedup": {
            "repeat_fits": repeat_speedup,
            "cold_start_from_disk": cold_speedup,
        },
        "quota": {
            "unbounded_bytes": unbounded_bytes,
            "quota_bytes": quota,
            "disk_bytes_after_gc": quota_bytes_after,
            "evicted_segments": evicted_segments,
            "hit_rate_unbounded": warm_hit_rate,
            "hit_rate_quota": quota_hit_rate,
        },
        "store_stats": {"warm": warm_stats, "cold": cold_stats, "quota": quota_stats},
        "parity": {
            "identical_metrics": identical,
            "best_val_rmse": [r["best_val_rmse"] for r in nostore],
            "predictions_sha256": [r["predictions_sha256"] for r in nostore],
        },
    }

    for leg in ("sweep_nostore", "sweep_store"):
        rendered = "  ".join(f"{s:6.2f}s" for s in results["seconds"][leg])
        print(f"{leg:14s} {rendered}")
    print(f"{'cold_disk':14s} {results['seconds']['cold_disk']:6.2f}s")
    print(
        f"speedup        repeat_fits {repeat_speedup:.2f}x   "
        f"cold_start {cold_speedup:.2f}x   metrics identical: {identical}"
    )
    print(
        f"quota          {quota_bytes_after}/{quota} bytes after gc "
        f"(unbounded {unbounded_bytes})   evicted_segments {evicted_segments}   "
        f"hit_rate {quota_hit_rate:.3f} vs {warm_hit_rate:.3f} unbounded"
    )

    if args.output != "-":
        output = Path(args.output) if args.output else REPO_ROOT / "BENCH_cache_store.json"
        output.parent.mkdir(parents=True, exist_ok=True)
        output.write_text(json.dumps(results, indent=2) + "\n")
        print(f"[wrote {output}]")

    if not identical:
        print("ERROR: store-enabled metrics drifted from the uncached sweep", file=sys.stderr)
        return 1
    if quota_bytes_after > quota:
        print(f"ERROR: post-GC disk tier ({quota_bytes_after} bytes) exceeds the "
              f"{quota}-byte quota", file=sys.stderr)
        return 1
    if evicted_segments <= 0:
        print("ERROR: the quota leg never forced an eviction — the reaper is dead "
              "or the quota is vacuous", file=sys.stderr)
        return 1
    if not args.smoke and repeat_speedup < 2.0:
        print("ERROR: repeat-fit speedup below the 2x target", file=sys.stderr)
        return 1
    if not args.smoke and quota_hit_rate < warm_hit_rate * 0.9:
        print(f"ERROR: quota-leg hit rate {quota_hit_rate:.3f} trails the unbounded "
              f"rate {warm_hit_rate:.3f} by more than 10%", file=sys.stderr)
        return 1
    return 0


# ----------------------------------------------------------------------
# CI sweep-cache mode
# ----------------------------------------------------------------------
def _mini_sweep() -> dict:
    """A 2-seed STSM mini-sweep through the real run_matrix path."""
    from repro.data.synthetic import make_dataset
    from repro.experiments.configs import get_scale
    from repro.experiments.runners import run_matrix, splits_for

    scale = dataclasses.replace(
        get_scale("bench"),
        dataset_sizes={"pems-bay": (22, 2)},
        split_kinds=("horizontal",),
        stsm={**get_scale("bench").stsm, "epochs": 3, "patience": 3},
        max_test_windows=6,
    )
    dataset = make_dataset("pems-bay", num_sensors=22, num_days=2, seed=7)
    splits = splits_for(dataset, scale)
    metrics: dict = {}
    for seed in (0, 1):
        out = run_matrix(
            dataset, "pems-bay", ["STSM"], scale,
            splits=splits, seed=seed, use_service=True,
        )
        entry = out["STSM"]
        metrics[f"seed{seed}"] = {
            "rmse": float(entry["metrics"].rmse),
            "mae": float(entry["metrics"].mae),
            "mape": float(entry["metrics"].mape),
            "r2": float(entry["metrics"].r2),
        }
    return metrics


def run_ci_sweep(args: argparse.Namespace) -> int:
    from repro.engine import CACHE_DIR_ENV, active_store

    if not os.environ.get(CACHE_DIR_ENV):
        print(f"ERROR: --ci-sweep requires {CACHE_DIR_ENV} to be set", file=sys.stderr)
        return 2
    began = time.perf_counter()
    metrics = _mini_sweep()
    store = active_store(True)
    store.persist()
    stats = store.stats["totals"]
    payload = {
        "phase": args.ci_sweep,
        "elapsed_seconds": round(time.perf_counter() - began, 2),
        "metrics": metrics,
        "store_stats": stats,
    }
    out = Path(args.sweep_out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[{args.ci_sweep}] metrics: {json.dumps(metrics)}")
    print(f"[{args.ci_sweep}] store: {json.dumps(stats)}")

    if args.ci_sweep == "second":
        # Memory hits alone would be vacuous (the sweep's own fits hit
        # in-process); cross-process persistence is only proven by hits
        # that came off the disk tier.
        if stats["disk_hits"] <= 0:
            print("ERROR: second run recorded no disk-tier hits — cross-process "
                  "persistence is broken", file=sys.stderr)
            return 1
        total_hits = stats["hits"] + stats["disk_hits"]
        if not args.compare:
            print("ERROR: --ci-sweep second needs --compare <first-run.json>",
                  file=sys.stderr)
            return 2
        first = json.loads(Path(args.compare).read_text())
        if first["metrics"] != metrics:
            print("ERROR: cached sweep metrics drifted from the first run:\n"
                  f"  first:  {json.dumps(first['metrics'])}\n"
                  f"  second: {json.dumps(metrics)}", file=sys.stderr)
            return 1
        if first["store_stats"]["disk_hits"] > 0:
            print("NOTE: first run already saw disk hits (pre-warmed cache dir)")
        print(f"[second] OK: {total_hits} store hits, metrics bit-identical")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny shapes, no speedup gate (CI wiring check)")
    parser.add_argument("--output", default=None,
                        help="result JSON path (default: <repo>/BENCH_cache_store.json; "
                             "'-' skips writing)")
    parser.add_argument("--ci-sweep", choices=("first", "second"), default=None,
                        help="CI mode: run the 2-seed mini-sweep against "
                             "$REPRO_CACHE_DIR (phase 'second' asserts store hits "
                             "and bit-identical metrics)")
    parser.add_argument("--sweep-out", default="sweep-cache.json",
                        help="where --ci-sweep writes its metrics + store stats")
    parser.add_argument("--compare", default=None,
                        help="first-phase JSON to certify the second phase against")
    args = parser.parse_args(argv)
    if args.ci_sweep:
        return run_ci_sweep(args)
    return run_benchmark(args)


if __name__ == "__main__":
    sys.exit(main())
