"""Benchmark (extension): robustness to missing-at-times training data.

Shape assertions:

* degradation is graceful: at every corruption rate each model's RMSE
  stays within 25% of its clean-data RMSE (no cliff);
* the models still produce sane forecasts (positive finite errors) at
  40% missingness.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import run_experiment

from conftest import run_once


def test_ext_robustness(benchmark, bench_scale):
    result = run_once(
        benchmark,
        run_experiment,
        "ext_robustness",
        scale_name=bench_scale,
        dataset_key="pems-bay",
    )
    print("\n" + result["text"])

    for name, curve in result["curves"].items():
        clean = curve[0]
        assert clean > 0 and np.isfinite(curve).all()
        for rate, rmse in zip(result["rates"], curve):
            assert rmse <= clean * 1.25, (
                f"{name} degrades too sharply at {rate:.0%} missingness"
            )
