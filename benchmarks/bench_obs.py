"""Observability-overhead benchmark: serving with REPRO_OBS off vs on.

Drives identical seeded-Zipf wire traffic (closed loop, per-thread
:class:`~repro.serving.loadgen.WireDriver` clients against an
in-process :class:`~repro.serving.transport.ForecastHTTPServer`)
through the same fitted STSM model in two modes, interleaved
``--repeats`` times to cancel thermal/background drift:

* **disabled** — ``set_obs_enabled(False)``: no trace headers, no span
  recording, the steady-state configuration;
* **enabled** — ``set_obs_enabled(True)``: every request is traced end
  to end (client span -> wire header -> server/scheduler/service/store
  spans) and the metrics registry is live.

Three certifications, all enforced by the exit code:

* **parity** — the served forecast bytes must be positionwise bitwise
  identical across every leg of both modes (observability may read
  timings and counts, never model bytes);
* **trace** — a dedicated cold probe request in each enabled leg must
  yield ONE trace id whose ``GET /v1/traces`` export contains the full
  span chain (client -> server -> scheduler -> service -> store), and
  the ``GET /metrics`` exposition must carry every required metric
  family (this is the CI wiring check);
* **overhead** — full mode only: the median enabled throughput must be
  within :data:`OVERHEAD_LIMIT_PCT` (5%) of the median disabled
  throughput.  Smoke runs record the number but do not gate on it
  (single-CPU CI runners make sub-5% timing calls meaningless).

Run::

    PYTHONPATH=src python benchmarks/bench_obs.py            # full
    PYTHONPATH=src python benchmarks/bench_obs.py --smoke    # CI wiring

Writes ``BENCH_obs.json`` at the repository root (override with
``--output``; ``-`` skips writing).  Smoke and full runs emit the same
JSON key set, so the committed baseline schema-gates both.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_serving_load import fit_model  # noqa: E402

from repro.backend import get_backend  # noqa: E402
from repro.engine import ArtifactStore  # noqa: E402
from repro.obs import get_recorder, set_obs_enabled  # noqa: E402
from repro.serving import (  # noqa: E402
    LoadGenerator,
    LoadSpec,
    ServingRuntime,
    WireDriver,
)
from repro.serving.service import ForecastService  # noqa: E402
from repro.serving.transport import ForecastClient, ForecastHTTPServer  # noqa: E402

#: Full-mode gate: tracing every request end to end may cost at most
#: this much of the disabled-mode serving throughput (median vs median).
OVERHEAD_LIMIT_PCT = 5.0
MODEL_KEY = "stsm/pems-bay"

#: Span names one cold traced request must produce at every layer.
REQUIRED_SPANS = (
    "client.request",
    "server.request",
    "scheduler.queue_wait",
    "scheduler.batch_dispatch",
    "service.cache_lookup",
    "service.predict",
    "store.get",
)

#: Metric families the ``/metrics`` exposition must always carry.
REQUIRED_METRICS = (
    "repro_request_latency_seconds_bucket",
    "repro_request_latency_seconds_count",
    "repro_requests_submitted_total",
    "repro_requests_completed_total",
    "repro_batches_total",
    "repro_cache_hits_total",
    "repro_predict_calls_total",
    "repro_store_hits_total",
    "repro_transport_requests_total",
    "repro_queue_depth",
)


def run_leg(
    model,
    pool: list[int],
    spec: LoadSpec,
    *,
    obs_on: bool,
    deadline_ms: float,
    max_batch: int,
    probe_start: int | None,
) -> tuple[dict, list, dict | None]:
    """One serving leg: fresh store/service/runtime, wire load, teardown.

    Every leg rebuilds the whole stack so cache state is identical
    across legs (first request to a window always computes, repeats
    always hit).  With ``obs_on`` and a ``probe_start``, a dedicated
    traced probe request — a window *excluded* from the load pool, so
    its full cold path runs — is issued after the measured load and its
    trace/metrics exports are certified.
    """
    set_obs_enabled(obs_on)
    recorder = get_recorder()
    recorder.clear()
    store = ArtifactStore()
    service = ForecastService(
        model, store=store, store_scope=b"bench-obs",
        cache_size=max(256, len(pool) + 1),
    )
    probe = None
    try:
        with ServingRuntime(
            deadline_ms=deadline_ms, max_batch=max_batch, max_queue=4096
        ) as runtime:
            runtime.attach_store(store)
            runtime.register(MODEL_KEY, service)
            with ForecastHTTPServer(runtime).start() as server:
                server.set_ready()
                with WireDriver("127.0.0.1", server.port, MODEL_KEY) as driver:
                    report = LoadGenerator(pool, spec).run(driver)
                runtime.drain()
                if obs_on and probe_start is not None:
                    probe = _run_probe(model, server.port, probe_start)
    finally:
        set_obs_enabled(False)
        recorder.clear()
    return report.summary(), report.results, probe


def _run_probe(model, port: int, probe_start: int) -> dict:
    """One cold traced request; certify span chain + /metrics names."""
    with ForecastClient("127.0.0.1", port, trace=True) as client:
        block = client.forecast_one(MODEL_KEY, probe_start)
        trace_id = client.last_trace_id
        exported = client.traces(trace_id)
        metrics_text = client.metrics_text()
    names = sorted({span["name"] for span in exported})
    direct = model.predict(np.asarray([probe_start], dtype=int))[0]
    return {
        "trace_id": trace_id,
        "span_count": len(exported),
        "span_names": names,
        "one_trace_id": all(span["trace"] == trace_id for span in exported),
        "required_spans_present": all(
            required in names for required in REQUIRED_SPANS
        ),
        "required_metrics_present": all(
            required in metrics_text for required in REQUIRED_METRICS
        ),
        "probe_parity": bool(np.array_equal(block, direct)),
    }


def positionwise_parity(reference: list, results: list) -> bool:
    """Same (start, bytes) at every (thread, position) across two legs."""
    if len(reference) != len(results):
        return False
    for ref_thread, got_thread in zip(reference, results):
        if len(ref_thread) != len(got_thread):
            return False
        for (ref_start, ref_value), (got_start, got_value) in zip(
            ref_thread, got_thread
        ):
            if ref_start != got_start or not np.array_equal(ref_value, got_value):
                return False
    return True


def _median_leg(summaries: list[dict]) -> dict:
    """The median-throughput repeat, annotated with every repeat's rate."""
    ordered = sorted(summaries, key=lambda s: s["throughput_rps"])
    median = dict(ordered[len(ordered) // 2])
    median["repeat_throughputs"] = [
        round(s["throughput_rps"], 1) for s in ordered
    ]
    return median


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny load / single-epoch fit (CI wiring check; "
                             "overhead recorded but not gated)")
    parser.add_argument("--threads", type=int, default=None,
                        help="client threads (default: 8 full, 4 smoke)")
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per thread (default: 150 full, 20 smoke)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="interleaved repeats per mode; medians are "
                             "compared (default: 3 full, 1 smoke)")
    parser.add_argument("--deadline-ms", type=float, default=2.0,
                        help="scheduler micro-batch deadline")
    parser.add_argument("--max-batch", type=int, default=64,
                        help="scheduler max batch trigger")
    parser.add_argument("--zipf", type=float, default=1.1,
                        help="Zipf popularity exponent of the window pool")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", default=None,
                        help="result JSON path (default: <repo>/BENCH_obs.json; "
                             "'-' skips writing)")
    args = parser.parse_args(argv)

    threads = args.threads if args.threads is not None else (4 if args.smoke else 8)
    requests = args.requests if args.requests is not None else (20 if args.smoke else 150)
    repeats = args.repeats if args.repeats is not None else (1 if args.smoke else 3)
    if repeats < 1:
        parser.error("--repeats must be >= 1")
    fit_kwargs = (
        dict(sensors=16, days=2, epochs=1, hidden=8)
        if args.smoke
        else dict(sensors=24, days=3, epochs=2, hidden=16)
    )

    # Fit with observability off so the cached array backend is the
    # plain (uncounted) one in both modes — the legs then differ only
    # in the serving-path instrumentation this benchmark measures.
    set_obs_enabled(False)
    print(f"[fitting STSM ({'smoke' if args.smoke else 'full'}) ...]")
    model, pool, _recipe = fit_model("pems-bay", seed=args.seed, **fit_kwargs)
    # The coldest-ranked window is held out of the load pool so the
    # enabled-leg probe request is guaranteed a full cold path
    # (queue wait -> batch dispatch -> cache lookup -> predict -> store).
    pool = [int(s) for s in pool]
    load_pool, probe_start = pool[:-1], pool[-1]
    spec = LoadSpec(
        num_threads=threads,
        requests_per_thread=requests,
        zipf_exponent=args.zipf,
        seed=args.seed,
    )

    legs: dict[str, list[dict]] = {"disabled": [], "enabled": []}
    probes: list[dict] = []
    reference_results: list | None = None
    parity = True
    try:
        for repeat in range(repeats):
            for mode, obs_on in (("disabled", False), ("enabled", True)):
                print(f"[{mode} leg {repeat + 1}/{repeats}: "
                      f"{threads} threads x {requests} requests]")
                summary, results, probe = run_leg(
                    model, load_pool, spec, obs_on=obs_on,
                    deadline_ms=args.deadline_ms, max_batch=args.max_batch,
                    probe_start=probe_start if obs_on else None,
                )
                legs[mode].append(summary)
                if probe is not None:
                    probes.append(probe)
                if reference_results is None:
                    reference_results = results
                else:
                    parity = parity and positionwise_parity(
                        reference_results, results
                    )
    finally:
        set_obs_enabled(None)

    disabled = _median_leg(legs["disabled"])
    enabled = _median_leg(legs["enabled"])
    overhead_pct = (
        disabled["throughput_rps"] / enabled["throughput_rps"] - 1.0
    ) * 100.0
    trace = probes[0]
    trace_ok = all(
        p["one_trace_id"] and p["required_spans_present"]
        and p["required_metrics_present"] and p["probe_parity"]
        for p in probes
    )

    for label, leg in (("disabled", disabled), ("enabled", enabled)):
        lat = leg["latency"]
        print(
            f"{label:9s} {leg['throughput_rps']:9.0f} req/s   "
            f"p50 {lat['p50_ms']:7.2f} ms   p99 {lat['p99_ms']:7.2f} ms   "
            f"(repeats: {leg['repeat_throughputs']})"
        )
    print(
        f"overhead  {overhead_pct:+.2f}%   "
        f"(limit {OVERHEAD_LIMIT_PCT}%, "
        + ("enforced" if not args.smoke else "informational in smoke")
        + ")"
    )
    print(
        f"trace     id={trace['trace_id']}  {trace['span_count']} span(s)  "
        f"chain={'ok' if trace_ok else 'BROKEN'}   parity={parity}"
    )

    results_doc = {
        "mode": "smoke" if args.smoke else "full",
        "backend": get_backend().name,
        "machine": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
        "config": {
            "num_threads": threads,
            "requests_per_thread": requests,
            "repeats": repeats,
            "pool_size": len(load_pool),
            "zipf_exponent": args.zipf,
            "deadline_ms": args.deadline_ms,
            "max_batch": args.max_batch,
            "seed": args.seed,
            "fit": fit_kwargs,
        },
        "disabled": disabled,
        "enabled": enabled,
        "overhead_pct": overhead_pct,
        "overhead_limit_pct": OVERHEAD_LIMIT_PCT,
        "overhead_gate_enforced": not args.smoke,
        "parity": {"bitwise_across_modes": parity},
        "trace": trace,
        "metrics": {
            "required_names": list(REQUIRED_METRICS),
            "all_present": all(p["required_metrics_present"] for p in probes),
        },
    }

    if args.output != "-":
        output = Path(args.output) if args.output else REPO_ROOT / "BENCH_obs.json"
        output.write_text(json.dumps(results_doc, indent=2) + "\n")
        print(f"[wrote {output}]")

    if not parity:
        print("ERROR: served bytes differ between obs modes", file=sys.stderr)
        return 1
    if not trace_ok:
        print("ERROR: trace/metrics certification failed "
              "(span chain, required metric names, or probe parity)",
              file=sys.stderr)
        return 1
    if not args.smoke and overhead_pct > OVERHEAD_LIMIT_PCT:
        print(
            f"ERROR: observability overhead {overhead_pct:.2f}% exceeds the "
            f"{OVERHEAD_LIMIT_PCT}% limit",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
