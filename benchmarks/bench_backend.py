"""Array-backend benchmark: ``numpy_fused`` (and ``torch``) vs ``numpy_ref``.

Measures the two hot paths the backend seam was built for:

* **forward+backward** — one STSM network training step (forward, loss,
  full backward) at a serving-representative batch shape;
* **fit** — a complete small ``STSMForecaster.fit`` + ``predict``,
  covering the optimiser, the engine loop and the conv/graph kernels.

When PyTorch is importable the ``torch`` backend is benchmarked on the
same cases (forward+backward, batch-32, full fit) and reported as
``speedup_torch``; the result JSON always carries a ``torch`` stanza
recording whether torch was available on the producing machine, so the
committed baseline is honest about what it measured.

Run::

    PYTHONPATH=src python benchmarks/bench_backend.py            # full
    PYTHONPATH=src python benchmarks/bench_backend.py --smoke    # CI smoke

Writes ``BENCH_backend.json`` at the repository root (override with
``--output``).  The committed copy records the speedup on the machine
that produced it; the acceptance target is >= 1.3x on forward+backward.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.autograd import Tensor  # noqa: E402
from repro.backend import available_backends, backend_available, use_backend  # noqa: E402
from repro.core import STSMConfig, STSMForecaster  # noqa: E402
from repro.core.network import STSMNetwork  # noqa: E402
from repro.data import WindowSpec, space_split, temporal_split  # noqa: E402
from repro.data.synthetic import make_pems_bay  # noqa: E402
from repro.nn import mse_loss  # noqa: E402

BACKENDS = ("numpy_ref", "numpy_fused")


def _torch_status() -> dict:
    """The result JSON's honesty stanza about the optional torch legs."""
    if not backend_available("torch"):
        return {
            "available": False,
            "detail": "torch not installed on the producing machine; "
                      "torch legs absent",
        }
    import torch

    from repro.backend import get_backend, use_backend as _scope

    with _scope("torch"):
        device = str(get_backend().device)
    return {
        "available": True,
        "detail": f"torch {torch.__version__}",
        "device": device,
    }


def _training_step(backend: str, *, batch, steps, nodes, hidden):
    """Build one STSM training step (forward + loss + backward) closure."""
    with use_backend(backend):
        config = STSMConfig(hidden_dim=hidden, num_blocks=2, seed=0)
        network = STSMNetwork(config, horizon=steps, input_length=steps)
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(batch, steps, nodes, 1)))
        te = Tensor(rng.normal(size=(batch, steps, 1)))
        adjacency = Tensor(np.abs(rng.normal(size=(nodes, nodes))))
        target = Tensor(rng.normal(size=(batch, steps, nodes, 1)))

    def step():
        with use_backend(backend):
            predictions, graph_repr = network(x, te, adjacency, adjacency)
            loss = mse_loss(predictions, target) + 0.1 * graph_repr.sum()
            network.zero_grad()
            loss.backward()

    return step


def bench_forward_backward(backends, *, batch, steps, nodes, hidden, repeats) -> dict:
    """Best-of-``repeats`` training-step time per backend, interleaved.

    Rounds alternate between the backends so slow drift (thermal /
    noisy-neighbour effects on shared machines) hits both equally
    instead of biasing whichever ran last.
    """
    steps_by_backend = {
        backend: _training_step(backend, batch=batch, steps=steps, nodes=nodes, hidden=hidden)
        for backend in backends
    }
    for step in steps_by_backend.values():  # warm-up: einsum paths, allocator
        step()
    best = {backend: float("inf") for backend in backends}
    for _ in range(repeats):
        for backend, step in steps_by_backend.items():
            began = time.perf_counter()
            step()
            best[backend] = min(best[backend], time.perf_counter() - began)
    return best


def bench_full_fit(backend: str, *, sensors, days, epochs, hidden) -> float:
    """A complete small STSM fit + predict under ``backend``."""
    dataset = make_pems_bay(num_sensors=sensors, num_days=days, seed=7)
    split = space_split(dataset.coords, "horizontal")
    spec = WindowSpec(input_length=8, horizon=8)
    train_ix, _ = temporal_split(dataset.num_steps)
    starts = np.arange(dataset.num_steps - spec.total - 8, dataset.num_steps - spec.total)

    config = STSMConfig(
        epochs=epochs, hidden_dim=hidden, num_blocks=1, top_k=8, seed=0, backend=backend
    )
    model = STSMForecaster(config=config)
    began = time.perf_counter()
    model.fit(dataset, split, spec, train_ix)
    model.predict(starts)
    return time.perf_counter() - began


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny shapes / single repeat (CI wiring check)")
    parser.add_argument("--output", default=None,
                        help="result JSON path (default: <repo>/BENCH_backend.json; "
                             "'-' skips writing)")
    args = parser.parse_args(argv)

    if args.smoke:
        fwd_cases = {"forward_backward": dict(batch=4, steps=8, nodes=16, hidden=16, repeats=2)}
        fit_kwargs = dict(sensors=12, days=1, epochs=1, hidden=8)
    else:
        # The headline case uses a batch-16 serving step (where the fused
        # kernels dominate); the batch-32 training step is reported
        # alongside it — larger batches shift more time into BLAS GEMMs,
        # which both backends share.
        fwd_cases = {
            "forward_backward": dict(batch=16, steps=12, nodes=48, hidden=32, repeats=5),
            "forward_backward_b32": dict(batch=32, steps=12, nodes=48, hidden=32, repeats=5),
        }
        fit_kwargs = dict(sensors=48, days=3, epochs=3, hidden=32)

    torch_status = _torch_status()
    backends = list(BACKENDS) + (["torch"] if torch_status["available"] else [])

    results: dict = {
        "mode": "smoke" if args.smoke else "full",
        "backends": backends,
        "machine": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
        "torch": torch_status,
        "shapes": {**fwd_cases, "full_fit": fit_kwargs},
        "seconds": {},
    }
    assert set(backends) <= set(available_backends())

    results["seconds"] = {backend: {} for backend in backends}
    for case, kwargs in fwd_cases.items():
        for backend, seconds in bench_forward_backward(backends, **kwargs).items():
            results["seconds"][backend][case] = seconds
    # Fits alternate backends for the same drift-control reason.
    fit_rounds = 1 if args.smoke else 2
    best_fit = {backend: float("inf") for backend in backends}
    for _ in range(fit_rounds):
        for backend in backends:
            best_fit[backend] = min(best_fit[backend], bench_full_fit(backend, **fit_kwargs))
    for backend in backends:
        results["seconds"][backend]["full_fit"] = best_fit[backend]
    for backend in backends:
        rendered = "   ".join(
            f"{case} {seconds * 1e3:8.1f} ms" if case != "full_fit" else f"full_fit {seconds:6.2f} s"
            for case, seconds in results["seconds"][backend].items()
        )
        print(f"{backend:12s}  {rendered}")

    ref = results["seconds"]["numpy_ref"]
    fused = results["seconds"]["numpy_fused"]
    results["speedup"] = {case: ref[case] / fused[case] for case in ref}
    print("speedup       " + "   ".join(f"{case} {s:.2f}x" for case, s in results["speedup"].items()))
    if torch_status["available"]:
        torch_seconds = results["seconds"]["torch"]
        results["speedup_torch"] = {case: ref[case] / torch_seconds[case] for case in ref}
        print("speedup_torch " + "   ".join(
            f"{case} {s:.2f}x" for case, s in results["speedup_torch"].items()
        ))

    if args.output != "-":
        output = Path(args.output) if args.output else REPO_ROOT / "BENCH_backend.json"
        output.write_text(json.dumps(results, indent=2) + "\n")
        print(f"[wrote {output}]")

    if not args.smoke and results["speedup"]["forward_backward"] < 1.3:
        print("WARNING: forward+backward speedup below the 1.3x target", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
