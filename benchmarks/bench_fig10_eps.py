"""Benchmark: regenerate Figure 10 (impact of the sub-graph threshold ε_sg).

Shape assertion: STSM is robust to ε_sg — RMSE fluctuations across the
threshold sweep are small relative to the observation magnitude, as the
paper reports for the freeway datasets.
"""

from __future__ import annotations

from repro.experiments import run_experiment

from conftest import run_once


def test_fig10_eps(benchmark, bench_scale):
    result = run_once(
        benchmark,
        run_experiment,
        "fig10_eps",
        scale_name=bench_scale,
        models=["STSM", "STSM-RNC"],
        thresholds=(0.4, 0.6, 0.8),
    )
    print("\n" + result["text"])
    for model in ("STSM", "STSM-RNC"):
        rmses = [row["RMSE"] for row in result["rows"] if row["Model"] == model]
        spread = (max(rmses) - min(rmses)) / min(rmses)
        assert spread < 0.6, f"{model} eps_sg sweep too volatile: spread={spread:.2f}"
