"""Benchmark: regenerate Table 4 (overall model comparison).

Shape assertions (paper's qualitative result):

* every STSM variant beats GE-GAN and IGNNK on RMSE on the traffic datasets;
* the best STSM variant is competitive with INCREASE (within 10% RMSE) and
  beats it on at least one dataset.
"""

from __future__ import annotations

from repro.experiments import run_experiment

from conftest import run_once


def test_table4_overall(benchmark, bench_scale):
    result = run_once(
        benchmark,
        run_experiment,
        "table4_overall",
        scale_name=bench_scale,
        datasets=["pems-bay", "pems-07", "pems-08", "melbourne", "airq"],
    )
    print("\n" + result["text"])

    # The synthetic urban grid is more spatially homogeneous than real
    # Melbourne streets, which flatters INCREASE's neighbour aggregation;
    # see EXPERIMENTS.md (Table 4 notes) for the calibration discussion.
    increase_band = {"melbourne": 1.30}
    stsm_wins_over_increase = 0
    for dataset, matrix in result["matrices"].items():
        rmse = {name: info["metrics"].rmse for name, info in matrix.items()}
        best_stsm = min(rmse[m] for m in ("STSM", "STSM-R", "STSM-NC", "STSM-RNC"))
        assert best_stsm < rmse["GE-GAN"] * 1.05, f"STSM should beat GE-GAN on {dataset}"
        assert best_stsm < rmse["IGNNK"] * 1.05, f"STSM should beat IGNNK on {dataset}"
        band = increase_band.get(dataset, 1.10)
        assert best_stsm < rmse["INCREASE"] * band, (
            f"best STSM variant should be within {band:.0%} of INCREASE on {dataset}"
        )
        if best_stsm < rmse["INCREASE"]:
            stsm_wins_over_increase += 1
    assert stsm_wins_over_increase >= 2, "STSM should beat INCREASE on several datasets"
