"""Benchmark: regenerate Table 7 (varying the density of sensors).

Shape assertion: STSM beats GE-GAN/IGNNK at every density and is
competitive with INCREASE across densities (paper: best in 19/20 cells).
"""

from __future__ import annotations

from repro.experiments import run_experiment

from conftest import run_once


def test_table7_density(benchmark, bench_scale):
    counts = (16, 24, 32) if bench_scale != "paper" else None
    result = run_once(
        benchmark, run_experiment, "table7_density", scale_name=bench_scale, counts=counts
    )
    print("\n" + result["text"])
    by_count: dict[int, dict[str, float]] = {}
    for row in result["rows"]:
        by_count.setdefault(row["#Sensors"], {})[row["Model"]] = row["RMSE"]
    for count, rmse in by_count.items():
        assert rmse["STSM"] < rmse["GE-GAN"] * 1.05, f"STSM vs GE-GAN at {count} sensors"
        assert rmse["STSM"] < rmse["IGNNK"] * 1.05, f"STSM vs IGNNK at {count} sensors"
        assert rmse["STSM"] < rmse["INCREASE"] * 1.15, f"STSM vs INCREASE at {count} sensors"
