"""Parallel sweep-executor benchmark: ``run_matrix`` serial vs ``--jobs``.

One mixed model × split × seed grid is evaluated through the real
``run_matrix`` path in several legs:

* **serial_cold** — ``jobs=1`` against a fresh cache directory (the
  baseline every parallel leg must reproduce bit-for-bit);
* **jobsN_cold** — the same grid across N worker processes, each leg
  against its own fresh cache directory, so the timing includes every
  spawn/bootstrap cost and no cross-leg artifact reuse;
* **serial_warm / jobsN_warm** — the same grid over the *shared* store
  directory the serial_cold leg populated: workers (and the serial
  loop) start from a warm disk tier, the regime a long sweep session
  actually runs in.

Parity is a hard gate in every mode: all legs must produce identical
metrics and loss histories (the executor's determinism contract — see
DESIGN.md §13).  The >= 1.7x ``jobs=4`` speedup target is enforced only
on machines with >= 4 CPUs; on smaller boxes (the 1-CPU CI runner) the
timings are recorded as informational and the benchmark only certifies
functional correctness.

Run::

    PYTHONPATH=src python benchmarks/bench_sweep.py           # full
    PYTHONPATH=src python benchmarks/bench_sweep.py --smoke   # CI wiring

Writes ``BENCH_sweep.json`` at the repository root (override with
``--output``; ``-`` skips writing).  ``--jobs-list 2,4,8`` adds legs.
"""

from __future__ import annotations

import argparse
import dataclasses
import hashlib
import json
import os
import platform
import shutil
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.data.synthetic import make_dataset  # noqa: E402
from repro.engine import StoreConfig, open_store, reset_store  # noqa: E402
from repro.experiments.configs import get_scale  # noqa: E402
from repro.experiments.runners import run_matrix, splits_for  # noqa: E402


def _grid(smoke: bool) -> dict:
    """The benchmark grid: dataset, scale, splits, models, seeds."""
    if smoke:
        models = ["STSM", "HistoricalAverage"]
        sensors, days, epochs, split_kinds = 16, 2, 1, ("horizontal",)
    else:
        # Mixed costs on purpose: STSM fits dominate, GE-GAN fills the
        # middle, the naive baseline rides the tail — the shape the
        # cost-aware scheduler is built for.
        models = ["STSM", "GE-GAN", "HistoricalAverage"]
        sensors, days, epochs, split_kinds = 24, 2, 3, ("horizontal", "vertical")
    bench = get_scale("bench")
    scale = dataclasses.replace(
        bench,
        dataset_sizes={"pems-bay": (sensors, days)},
        split_kinds=split_kinds,
        stsm={**bench.stsm, "epochs": epochs, "patience": epochs},
        gegan={"iterations": 150},
        max_test_windows=4,
    )
    dataset = make_dataset("pems-bay", num_sensors=sensors, num_days=days, seed=7)
    splits = splits_for(dataset, scale)
    seeds = (0, 1)
    return {
        "dataset": dataset,
        "scale": scale,
        "splits": splits,
        "models": models,
        "seeds": seeds,
        "cells": len(models) * len(splits) * len(seeds),
    }


def _flatten_metrics(matrix: dict) -> dict:
    """Per-model metric floats + loss histories, JSON-stable ordering."""
    out: dict = {}
    for model_name in sorted(matrix):
        info = matrix[model_name]
        metrics = info["metrics"]
        out[model_name] = {
            "rmse": float(metrics.rmse),
            "mae": float(metrics.mae),
            "mape": float(metrics.mape),
            "r2": float(metrics.r2),
            "histories": [
                [float(x) for x in r.fit_report.history] for r in info["results"]
            ],
        }
    return out


def _run_leg(label: str, jobs: int, cache_dir: Path, grid: dict) -> dict:
    """One timed run_matrix pass over the grid against ``cache_dir``."""
    reset_store()
    open_store(StoreConfig(disk_dir=cache_dir))
    began = time.perf_counter()
    matrix = run_matrix(
        grid["dataset"],
        "pems-bay",
        grid["models"],
        grid["scale"],
        splits=grid["splits"],
        seeds=grid["seeds"],
        jobs=jobs,
        cache_store=True,
    )
    seconds = time.perf_counter() - began
    reset_store()
    flat = _flatten_metrics(matrix)
    sweeps = [r.extra["sweep"] for info in matrix.values() for r in info["results"]]
    leg = {
        "label": label,
        "seconds": seconds,
        "metrics": flat,
        "digest": hashlib.sha256(
            json.dumps(flat, sort_keys=True).encode()
        ).hexdigest(),
        "max_attempts": max(s["attempts"] for s in sweeps),
        "worker_pids": len({s["worker_pid"] for s in sweeps}),
        "cell_seconds_sum": float(sum(s["cell_seconds"] for s in sweeps)),
    }
    print(
        f"{label:12s} {seconds:7.2f}s  (jobs={jobs}, "
        f"{leg['worker_pids']} worker pid(s), "
        f"cell time {leg['cell_seconds_sum']:.2f}s)"
    )
    return leg


def run_benchmark(args: argparse.Namespace) -> int:
    jobs_list = [int(part) for part in args.jobs_list.split(",") if part.strip()]
    if args.smoke:
        jobs_list = [j for j in jobs_list if j <= 2] or [2]
    grid = _grid(args.smoke)
    cpus = os.cpu_count() or 1
    print(
        f"grid: {grid['cells']} cells "
        f"({len(grid['models'])} models x {len(grid['splits'])} splits x "
        f"{len(grid['seeds'])} seeds), {cpus} CPU(s), jobs legs {jobs_list}"
    )

    scratch = Path(tempfile.mkdtemp(prefix="bench-sweep-"))
    legs: dict[str, dict] = {}
    try:
        # Cold legs: every leg pays its full cost against an empty store.
        shared_dir = scratch / "serial_cold"
        legs["serial_cold"] = _run_leg("serial_cold", 1, shared_dir, grid)
        for jobs in jobs_list:
            legs[f"jobs{jobs}_cold"] = _run_leg(
                f"jobs{jobs}_cold", jobs, scratch / f"jobs{jobs}_cold", grid
            )
        # Warm legs: everyone shares the directory serial_cold populated.
        if not args.smoke:
            legs["serial_warm"] = _run_leg("serial_warm", 1, shared_dir, grid)
            for jobs in jobs_list:
                legs[f"jobs{jobs}_warm"] = _run_leg(
                    f"jobs{jobs}_warm", jobs, shared_dir, grid
                )
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    baseline = legs["serial_cold"]
    identical = all(leg["digest"] == baseline["digest"] for leg in legs.values())
    speedup = {
        name: float(legs["serial_cold"]["seconds"] / max(leg["seconds"], 1e-9))
        if name.endswith("_cold")
        else float(legs["serial_warm"]["seconds"] / max(leg["seconds"], 1e-9))
        for name, leg in legs.items()
        if name not in ("serial_cold", "serial_warm")
    }

    results = {
        "mode": "smoke" if args.smoke else "full",
        "machine": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "cpu_count": cpus,
        },
        "grid": {
            "models": grid["models"],
            "splits": len(grid["splits"]),
            "seeds": list(grid["seeds"]),
            "cells": grid["cells"],
        },
        "jobs_list": jobs_list,
        "seconds": {name: leg["seconds"] for name, leg in legs.items()},
        "speedup": speedup,
        "telemetry": {
            "max_attempts": max(leg["max_attempts"] for leg in legs.values()),
            "worker_pids": {name: leg["worker_pids"] for name, leg in legs.items()},
        },
        "parity": {
            "identical_metrics": identical,
            "metrics_sha256": baseline["digest"],
            "metrics": baseline["metrics"],
        },
    }

    rendered = "   ".join(f"{name} {value:.2f}x" for name, value in speedup.items())
    print(f"speedup        {rendered}   metrics identical: {identical}")

    if args.output != "-":
        output = Path(args.output) if args.output else REPO_ROOT / "BENCH_sweep.json"
        output.parent.mkdir(parents=True, exist_ok=True)
        output.write_text(json.dumps(results, indent=2) + "\n")
        print(f"[wrote {output}]")

    if not identical:
        print(
            "ERROR: parallel legs drifted from the serial metrics — the "
            "executor's determinism contract is broken",
            file=sys.stderr,
        )
        return 1
    # The speedup target only means something with real cores to use;
    # on smaller boxes the timings above are informational.
    if not args.smoke and cpus >= 4 and 4 in jobs_list:
        if speedup["jobs4_cold"] < 1.7:
            print(
                f"ERROR: jobs=4 speedup {speedup['jobs4_cold']:.2f}x is below "
                "the 1.7x target on a >=4-CPU machine",
                file=sys.stderr,
            )
            return 1
    elif not args.smoke:
        print(f"NOTE: {cpus} CPU(s) — speedup gate skipped (needs >= 4)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny grid, serial + jobs=2 cold legs only "
                             "(functional check for 1-CPU CI)")
    parser.add_argument("--jobs-list", default="2,4",
                        help="comma-separated worker counts to benchmark "
                             "(default: 2,4)")
    parser.add_argument("--output", default=None,
                        help="result JSON path (default: <repo>/BENCH_sweep.json; "
                             "'-' skips writing)")
    args = parser.parse_args(argv)
    return run_benchmark(args)


if __name__ == "__main__":
    sys.exit(main())
