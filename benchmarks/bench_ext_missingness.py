"""Benchmark: scattered vs contiguous missingness (the paper's motivation).

Shape assertions (paper §1): every model finds the contiguous pattern
harder than the scattered one, and the kriging baselines' *contiguity
penalty* is at least as large as STSM's — the gap STSM was designed to
close.
"""

from __future__ import annotations

from repro.experiments import run_experiment

from conftest import run_once


def test_ext_missingness(benchmark, bench_scale):
    result = run_once(benchmark, run_experiment, "ext_missingness", scale_name=bench_scale)
    print("\n" + result["text"])
    penalties = {row["Model"]: row["Penalty%"] for row in result["penalties"]}
    # Contiguous missingness must be harder for the kriging baselines.
    assert penalties["IGNNK"] > 0, f"IGNNK should degrade under contiguity: {penalties}"
    assert penalties["INCREASE"] > 0, f"INCREASE should degrade under contiguity: {penalties}"
    # STSM's penalty should not exceed the worst baseline's by much — its
    # whole design targets the contiguous case.
    worst_baseline = max(penalties["IGNNK"], penalties["INCREASE"])
    assert penalties["STSM"] <= worst_baseline + 15.0, (
        f"STSM's contiguity penalty should be competitive: {penalties}"
    )
