"""Benchmark (extension): prediction-interval quality for the unobserved
region.

Shape assertions:

* every method's PICP is a proper fraction and its intervals have
  positive width;
* the ensemble's CRPS beats (or ties within 25%) MC dropout — ensembles
  are the stronger predictive distribution in the UQ literature;
* the GP's closed-form intervals achieve non-trivial coverage (> 0.3) and
  cover far better than the epistemic-only neural intervals, which
  under-cover when extrapolating into a sensor-free region.
"""

from __future__ import annotations

from repro.experiments import run_experiment

from conftest import run_once


def test_ext_uncertainty(benchmark, bench_scale):
    result = run_once(
        benchmark,
        run_experiment,
        "ext_uncertainty",
        scale_name=bench_scale,
        dataset_key="pems-bay",
    )
    print("\n" + result["text"])

    by_model = {row["Model"]: row for row in result["rows"]}
    for row in result["rows"]:
        assert 0.0 <= row["PICP"] <= 1.0
        assert row["MPIW"] > 0.0
    assert (
        by_model["STSM-Ensemble"]["CRPS"] <= by_model["STSM-MCDropout"]["CRPS"] * 1.25
    )
    assert by_model["GP-Kriging"]["PICP"] > 0.3
    assert by_model["GP-Kriging"]["PICP"] > by_model["STSM-MCDropout"]["PICP"]
