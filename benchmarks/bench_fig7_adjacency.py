"""Benchmark: regenerate Figure 7 (adjacency sparsity structure).

Shape assertion: A_sg (the sub-graph matrix, higher threshold) is sparser
than A_s — the paper's "more blank space" observation.
"""

from __future__ import annotations

from repro.experiments import run_experiment

from conftest import run_once


def test_fig7_adjacency(benchmark, bench_scale):
    result = run_once(benchmark, run_experiment, "fig7_adjacency", scale_name=bench_scale)
    print("\n" + result["text"])
    assert result["a_sg_sparser"], "A_sg must be sparser than A_s (paper Fig. 7)"
    densities = {row["Matrix"]: row["Density"] for row in result["rows"]}
    assert 0.0 < densities["A_s"] < 0.6, "A_s should be sparse but non-empty"
