"""Benchmark: multi-region extension (paper's stated future work).

Shape assertions: the pipeline handles 1-3 disjoint unobserved regions end
to end, errors stay in the single-region accuracy band (scattered regions
are not catastrophically harder — each patch is smaller), and selective
masking remains competitive with random masking under multiple regions.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import run_experiment

from conftest import run_once


def test_ext_multiregion(benchmark, bench_scale):
    result = run_once(
        benchmark,
        run_experiment,
        "ext_multiregion",
        scale_name=bench_scale,
        region_counts=(1, 2),
    )
    print("\n" + result["text"])
    by_regions: dict[int, dict[str, float]] = {}
    for row in result["rows"]:
        by_regions.setdefault(row["Regions"], {})[row["Model"]] = row["RMSE"]
    single = min(by_regions[1].values())
    multi = min(by_regions[2].values())
    assert multi < single * 1.5, (
        f"two scattered regions should not be catastrophically harder: {by_regions}"
    )
    assert by_regions[2]["STSM"] < by_regions[2]["STSM-R"] * 1.25, (
        f"multi-region selective masking should stay competitive: {by_regions[2]}"
    )
