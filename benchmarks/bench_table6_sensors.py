"""Benchmark: regenerate Table 6 (varying the number of sensors).

Shape assertion: STSM beats GE-GAN and IGNNK on RMSE at every sensor
count, and stays within 10% of INCREASE (the paper shows STSM leading on
RMSE/R² at all four sizes).
"""

from __future__ import annotations

from repro.experiments import run_experiment

from conftest import run_once


def test_table6_sensors(benchmark, bench_scale):
    result = run_once(
        benchmark, run_experiment, "table6_sensors", scale_name=bench_scale, partitions=3
    )
    print("\n" + result["text"])
    by_count: dict[int, dict[str, float]] = {}
    for row in result["rows"]:
        by_count.setdefault(row["#Sensors"], {})[row["Model"]] = row["RMSE"]
    for count, rmse in by_count.items():
        assert rmse["STSM"] < rmse["GE-GAN"] * 1.05, f"STSM vs GE-GAN at {count} sensors"
        assert rmse["STSM"] < rmse["IGNNK"] * 1.05, f"STSM vs IGNNK at {count} sensors"
        assert rmse["STSM"] < rmse["INCREASE"] * 1.15, f"STSM vs INCREASE at {count} sensors"
