"""Benchmark (extension): classical methods vs neural models.

Regenerates the related-work comparison the paper describes but never
measures (§2.2).  Shape assertions:

* every learned/classical model beats nothing-at-all — finite errors;
* STSM's RMSE is competitive with the best classical method (the neural
  model should not lose badly to 1960s kriging on its own task);
* GP kriging produces a valid probabilistic ordering (non-negative
  kriging variance was asserted at unit level; here we check accuracy).
"""

from __future__ import annotations

from repro.experiments import run_experiment

from conftest import run_once


def test_ext_classical(benchmark, bench_scale):
    result = run_once(
        benchmark,
        run_experiment,
        "ext_classical",
        scale_name=bench_scale,
        dataset_key="pems-bay",
    )
    print("\n" + result["text"])

    rmse = {row["Model"]: row["RMSE"] for row in result["rows"]}
    assert all(value > 0 for value in rmse.values())
    best_classical = min(rmse["GP-Kriging"], rmse["MatrixCompletion"])
    assert rmse["STSM"] < best_classical * 1.25, (
        "STSM should be competitive with the classical methods"
    )
