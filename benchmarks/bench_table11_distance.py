"""Benchmark: regenerate Table 11 (distance functions).

Shape assertion: the three distance variants land in one accuracy band
(the paper's deltas are small: 8.61 / 8.71 / 8.99 RMSE).  The paper's
exact ordering (Euclidean best) does not transfer to this substrate: the
synthetic congestion field propagates along the corridor graph by
construction, which makes road-network distance genuinely informative
here, while the real PEMS data rewards Euclidean interpolation.  See
EXPERIMENTS.md (Table 11 notes).
"""

from __future__ import annotations

from repro.experiments import run_experiment

from conftest import run_once


def test_table11_distance(benchmark, bench_scale):
    result = run_once(benchmark, run_experiment, "table11_distance", scale_name=bench_scale)
    print("\n" + result["text"])
    rmse = {row["Model"]: row["RMSE"] for row in result["rows"]}
    best, worst = min(rmse.values()), max(rmse.values())
    assert worst <= best * 1.20, f"distance variants should be one accuracy band: {rmse}"
