"""Benchmark: regenerate Figure 8 (RMSE vs unobserved ratio).

Shape assertion: STSM's RMSE stays at or below INCREASE's on most points
of the sweep (the paper allows one exception across all datasets).
"""

from __future__ import annotations

from repro.experiments import run_experiment

from conftest import run_once


def test_fig8_ratio(benchmark, bench_scale):
    result = run_once(
        benchmark,
        run_experiment,
        "fig8_ratio",
        scale_name=bench_scale,
        datasets=["pems-bay"],
        ratios=(0.3, 0.5),
    )
    print("\n" + result["text"])
    by_ratio: dict[float, dict[str, float]] = {}
    for row in result["rows"]:
        by_ratio.setdefault(row["Ratio"], {})[row["Model"]] = row["RMSE"]
    wins = sum(1 for r in by_ratio.values() if r["STSM"] <= r["INCREASE"] * 1.10)
    assert wins >= len(by_ratio) - 1, (
        f"STSM should track/beat INCREASE across ratios, got {by_ratio}"
    )
