"""Benchmarks: extension ablations (DESIGN.md §6).

* DTW adjacency on/off — the paper asserts the temporal adjacency
  "strengthens the learning capability of GCNs"; this measures it.
* Pseudo-observation strategy — top-k IDW vs the literal all-source Eq. 3
  vs nearest-copy.
* Spatial module — the paper's gated GCN vs graph attention (the spatial
  mirror of Table 10's temporal swap).
"""

from __future__ import annotations

from repro.experiments import run_experiment

from conftest import run_once


def test_ablation_dtw(benchmark, bench_scale):
    result = run_once(benchmark, run_experiment, "ablation_dtw", scale_name=bench_scale)
    print("\n" + result["text"])
    rmse = {row["Variant"]: row["RMSE"] for row in result["rows"]}
    # Both variants must run; the DTW branch should not be catastrophic.
    assert rmse["STSM (with A_dtw)"] < rmse["STSM (no A_dtw)"] * 1.5


def test_ablation_pseudo(benchmark, bench_scale):
    result = run_once(benchmark, run_experiment, "ablation_pseudo", scale_name=bench_scale)
    print("\n" + result["text"])
    rmse = {row["Variant"]: row["RMSE"] for row in result["rows"]}
    # Local IDW should not lose to the diffuse all-source fill at this
    # sensor density (the calibration rationale recorded in DESIGN.md).
    assert rmse["IDW top-3 (default)"] <= rmse["IDW all sources (Eq. 3 literal)"] * 1.10


def test_ablation_spatial(benchmark, bench_scale):
    result = run_once(benchmark, run_experiment, "ablation_spatial", scale_name=bench_scale)
    print("\n" + result["text"])
    rmse = {row["SpatialModule"]: row["RMSE"] for row in result["rows"]}
    # Attention over pseudo-observation features is noisier than the fixed
    # GCN weights; GAT must stay in the same accuracy band regardless.
    assert rmse["gat"] < rmse["gcn"] * 1.5
