"""repro — reproduction of "Spatial-temporal Forecasting for Regions
without Observations" (STSM, EDBT 2024).

Quick start::

    from repro.data.synthetic import make_pems_bay
    from repro.data import space_split, WindowSpec
    from repro.core import make_stsm
    from repro.evaluation import evaluate_forecaster

    dataset = make_pems_bay(num_sensors=40, num_days=4)
    split = space_split(dataset.coords, "horizontal")
    model = make_stsm("pems-bay", epochs=10)
    result = evaluate_forecaster(model, dataset, split,
                                 WindowSpec(input_length=12, horizon=12))
    print(result.metrics)

Subpackages: ``autograd`` / ``nn`` / ``optim`` (neural substrate),
``graph`` / ``temporal`` (spatial and temporal utilities), ``data``
(datasets, splits, synthetic presets), ``engine`` (shared trainer,
early stopping, memoisation caches), ``core`` (STSM), ``baselines``
(GE-GAN, IGNNK, INCREASE), ``evaluation`` (metrics + harness),
``serving`` (batched, cached forecast service), ``experiments`` (one
runner per paper table/figure).
"""

from . import (
    autograd,
    baselines,
    core,
    data,
    engine,
    evaluation,
    experiments,
    graph,
    nn,
    optim,
    serving,
    temporal,
    viz,
)
from .interfaces import FitReport, Forecaster

__version__ = "1.1.0"

__all__ = [
    "autograd",
    "nn",
    "optim",
    "graph",
    "temporal",
    "data",
    "engine",
    "core",
    "baselines",
    "evaluation",
    "serving",
    "experiments",
    "viz",
    "Forecaster",
    "FitReport",
    "__version__",
]
