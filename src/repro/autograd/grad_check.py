"""Finite-difference gradient verification.

Used throughout the test suite to certify that every autograd op's backward
pass matches a central-difference numerical derivative.  This is the
correctness anchor for the whole neural substrate.

Both helpers take an optional ``backend`` (registry name or
:class:`~repro.backend.ArrayBackend` instance): the function evaluations
*and* the autograd replay run under that backend, so the same check
certifies every registered backend — the parity suite runs it against
``numpy_ref`` and ``numpy_fused`` alike.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..backend import ArrayBackend, use_backend
from .tensor import Tensor

__all__ = ["numerical_gradient", "check_gradients"]


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    wrt: int,
    eps: float = 1e-6,
    backend: str | ArrayBackend | None = None,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. input ``wrt``."""
    target = inputs[wrt]
    grad = np.zeros(tuple(target.data.shape), dtype=np.float64)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    with use_backend(backend):
        for i in range(int(flat.shape[0])):
            # float() snapshots the element: a torch ``flat[i]`` is a
            # 0-d view of the storage and would read back the perturbed
            # value after assignment.
            original = float(flat[i])
            flat[i] = original + eps
            upper = float(fn(*inputs).data.sum())
            flat[i] = original - eps
            lower = float(fn(*inputs).data.sum())
            flat[i] = original
            grad_flat[i] = (upper - lower) / (2.0 * eps)
    return grad


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    atol: float = 1e-5,
    rtol: float = 1e-4,
    eps: float = 1e-6,
    backend: str | ArrayBackend | None = None,
) -> None:
    """Assert that autograd gradients match numerical ones for all inputs.

    Raises ``AssertionError`` with a diagnostic message on mismatch.
    """
    for tensor in inputs:
        tensor.zero_grad()
    with use_backend(backend):
        out = fn(*inputs)
        out.sum().backward()
    for index, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        expected = numerical_gradient(fn, inputs, index, eps=eps, backend=backend)
        # Host-normalise: backend-native grads (torch tensors) compare
        # through numpy, where mixed tensor/ndarray arithmetic is not
        # guaranteed across versions.
        actual = (
            np.asarray(tensor.grad)
            if tensor.grad is not None
            else np.zeros(tuple(tensor.data.shape))
        )
        if not np.allclose(actual, expected, atol=atol, rtol=rtol):
            worst = np.abs(actual - expected).max()
            raise AssertionError(
                f"gradient mismatch for input {index} under backend "
                f"{backend if isinstance(backend, str) else getattr(backend, 'name', 'active')}: "
                f"max abs diff {worst:.3e}\n"
                f"autograd:\n{actual}\nnumerical:\n{expected}"
            )
