"""Finite-difference gradient verification.

Used throughout the test suite to certify that every autograd op's backward
pass matches a central-difference numerical derivative.  This is the
correctness anchor for the whole neural substrate.

Both helpers take an optional ``backend`` (registry name or
:class:`~repro.backend.ArrayBackend` instance): the function evaluations
*and* the autograd replay run under that backend, so the same check
certifies every registered backend — the parity suite runs it against
``numpy_ref`` and ``numpy_fused`` alike.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..backend import ArrayBackend, use_backend
from .tensor import Tensor

__all__ = ["numerical_gradient", "check_gradients"]


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    wrt: int,
    eps: float = 1e-6,
    backend: str | ArrayBackend | None = None,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. input ``wrt``."""
    target = inputs[wrt]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    with use_backend(backend):
        for i in range(flat.size):
            original = flat[i]
            flat[i] = original + eps
            upper = float(fn(*inputs).data.sum())
            flat[i] = original - eps
            lower = float(fn(*inputs).data.sum())
            flat[i] = original
            grad_flat[i] = (upper - lower) / (2.0 * eps)
    return grad


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    atol: float = 1e-5,
    rtol: float = 1e-4,
    eps: float = 1e-6,
    backend: str | ArrayBackend | None = None,
) -> None:
    """Assert that autograd gradients match numerical ones for all inputs.

    Raises ``AssertionError`` with a diagnostic message on mismatch.
    """
    for tensor in inputs:
        tensor.zero_grad()
    with use_backend(backend):
        out = fn(*inputs)
        out.sum().backward()
    for index, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        expected = numerical_gradient(fn, inputs, index, eps=eps, backend=backend)
        actual = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        if not np.allclose(actual, expected, atol=atol, rtol=rtol):
            worst = np.abs(actual - expected).max()
            raise AssertionError(
                f"gradient mismatch for input {index} under backend "
                f"{backend if isinstance(backend, str) else getattr(backend, 'name', 'active')}: "
                f"max abs diff {worst:.3e}\n"
                f"autograd:\n{actual}\nnumerical:\n{expected}"
            )
