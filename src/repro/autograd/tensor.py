"""Core reverse-mode automatic differentiation tensor.

This module provides :class:`Tensor`, a thin wrapper around a numpy array
that records the operations applied to it on a tape and can replay them
backwards to accumulate gradients.  It is the substrate on which every
neural module in this repository is built (the paper's reference
implementation uses PyTorch; see DESIGN.md for the substitution rationale).

Design notes
------------
* Gradients are dense numpy arrays of the same shape as ``data``.
* Broadcasting follows numpy semantics; backward passes "unbroadcast" by
  summing gradients over the broadcast axes.
* The graph is a DAG of ``Tensor`` nodes.  ``backward`` runs a topological
  sort and calls each node's local backward closure exactly once.
* A module-level flag (:func:`no_grad`) disables taping, which makes
  inference allocation-free apart from the forward arrays.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "as_tensor"]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient taping inside its block."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether operations are currently recorded on the tape."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to undo numpy broadcasting.

    numpy broadcasting may prepend axes and/or stretch length-1 axes.  The
    adjoint of broadcasting is summation over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over stretched axes.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor with reverse-mode autodiff support.

    Parameters
    ----------
    data:
        Array-like value.  Stored as ``float64`` unless already a float
        numpy array (``float32`` is preserved).
    requires_grad:
        Whether gradients should be accumulated into ``self.grad`` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: Sequence["Tensor"] = (),
        _backward: Callable[[np.ndarray], None] | None = None,
        name: str | None = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if arr.dtype not in (np.float32, np.float64):
            arr = arr.astype(np.float64)
        self.data: np.ndarray = arr
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._parents: tuple[Tensor, ...] = tuple(_parents)
        self._backward = _backward
        self.name = name

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=8)}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self.data.item()

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the tape."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Return a taped identity copy (gradient flows through)."""
        return self.reshape(self.shape)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to ``None``."""
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create a result node, taping it only when grad mode is on."""
        track = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        if not track:
            return Tensor(data)
        return Tensor(data, requires_grad=True, _parents=parents, _backward=backward)

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this node's gradient buffer."""
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.array(grad, dtype=self.data.dtype, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | float | None = None) -> None:
        """Run reverse-mode autodiff from this node.

        Parameters
        ----------
        grad:
            Seed gradient.  Defaults to 1 for scalar tensors; required for
            non-scalar roots.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() on a non-scalar tensor requires an explicit gradient")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).astype(self.data.dtype)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited and parent.requires_grad:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other._accumulate(_unbroadcast(-grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad * other.data, self.shape))
            other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad / other.data, self.shape))
            other._accumulate(_unbroadcast(-grad * self.data / (other.data ** 2), other.shape))

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log composition")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Matrix multiplication
    # ------------------------------------------------------------------
    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:
                self._accumulate(grad * b)
                other._accumulate(grad * a)
                return
            if a.ndim == 1:
                # (k,) @ (..., k, n) -> (..., n)
                grad_a = (grad[..., None, :] * np.swapaxes(b, -1, -2)).sum(axis=tuple(range(grad.ndim - 1)) + (-1,))
                self._accumulate(_unbroadcast(grad_a.reshape(a.shape), a.shape))
                other._accumulate(_unbroadcast(a[:, None] * grad[..., None, :], b.shape))
                return
            if b.ndim == 1:
                # (..., m, k) @ (k,) -> (..., m)
                self._accumulate(_unbroadcast(grad[..., :, None] * b, a.shape))
                grad_b = (np.swapaxes(a, -1, -2) @ grad[..., :, None])[..., 0]
                if grad_b.ndim > 1:
                    grad_b = grad_b.sum(axis=tuple(range(grad_b.ndim - 1)))
                other._accumulate(grad_b)
                return
            grad_a = grad @ np.swapaxes(b, -1, -2)
            grad_b = np.swapaxes(a, -1, -2) @ grad
            self._accumulate(_unbroadcast(grad_a, a.shape))
            other._accumulate(_unbroadcast(grad_b, b.shape))

        return Tensor._make(out_data, (self, other), backward)

    def __rmatmul__(self, other) -> "Tensor":
        return as_tensor(other).__matmul__(self)

    # ------------------------------------------------------------------
    # Elementwise transcendental functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / out_data)

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.sign(self.data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data ** 2))

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis if isinstance(axis, tuple) else (axis,))
            self._accumulate(np.broadcast_to(g, self.shape).astype(self.data.dtype))

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def _minmax(self, axis, keepdims: bool, mode: str) -> "Tensor":
        reducer = np.max if mode == "max" else np.min
        out_data = reducer(self.data, axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            expanded = out_data
            g = grad
            if axis is not None and not keepdims:
                ax = axis if isinstance(axis, tuple) else (axis,)
                expanded = np.expand_dims(expanded, axis=ax)
                g = np.expand_dims(g, axis=ax)
            mask = (self.data == expanded).astype(self.data.dtype)
            # Split gradient evenly among ties so the op stays a subgradient.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(g * mask / counts)

        return Tensor._make(out_data, (self,), backward)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        return self._minmax(axis, keepdims, "max")

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return self._minmax(axis, keepdims, "min")

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        out_data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(tuple(axes))

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(np.array(out_data, copy=True), (self,), backward)

    def squeeze(self, axis=None) -> "Tensor":
        out_shape = np.squeeze(self.data, axis=axis).shape
        return self.reshape(out_shape)

    def unsqueeze(self, axis: int) -> "Tensor":
        out_shape = np.expand_dims(self.data, axis=axis).shape
        return self.reshape(out_shape)


def as_tensor(value) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy when already one)."""
    return value if isinstance(value, Tensor) else Tensor(value)
