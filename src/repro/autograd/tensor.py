"""Core reverse-mode automatic differentiation tensor.

This module provides :class:`Tensor`, a thin wrapper around an array that
records the operations applied to it on a tape and can replay them
backwards to accumulate gradients.  It is the substrate on which every
neural module in this repository is built (the paper's reference
implementation uses PyTorch; see DESIGN.md for the substitution rationale).

Every array operation is issued through the active
:class:`~repro.backend.ArrayBackend` (``repro.backend.get_backend()``),
never through numpy directly, so the whole autograd stack dispatches to
whichever backend is selected (``numpy_ref`` reproduces the historical
bit-exact numbers; ``numpy_fused`` trades bit-identity for speed).

Design notes
------------
* Gradients are dense arrays of the same shape as ``data``.
* Broadcasting follows numpy semantics; backward passes "unbroadcast" by
  summing gradients over the broadcast axes.
* The graph is a DAG of ``Tensor`` nodes.  ``backward`` runs a topological
  sort and calls each node's local backward closure exactly once.
* A thread-local flag (:func:`no_grad`) disables taping, which makes
  inference allocation-free apart from the forward arrays.  Per-thread
  scoping matters: serving threads run ``predict`` under ``no_grad()``
  while the streaming subsystem may be training a refit on another
  thread of the same process.
* Most backward closures capture the backend active at forward time,
  but gradient accumulation, unbroadcasting and the seed gradient
  resolve the backend live — a taped graph must therefore be replayed
  under the backend (or a value-compatible backend) that built it.
  Both shipped numpy backends are mutually compatible; a device
  backend's graphs must run backward under the same backend.
"""

from __future__ import annotations

import contextlib
import math
import threading
from typing import Callable, Sequence

import numpy as np

from ..backend import get_backend

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "as_tensor"]

# Grad mode is per-thread: a serving thread running ``predict`` under
# ``no_grad()`` must not stop a concurrent training thread from taping
# (the streaming subsystem refits a model while the previous one serves
# in the same process).
_GRAD_STATE = threading.local()


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient taping inside its block."""
    previous = is_grad_enabled()
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


def is_grad_enabled() -> bool:
    """Return whether operations are currently recorded on the tape."""
    return getattr(_GRAD_STATE, "enabled", True)


def _unbroadcast(grad, shape: tuple[int, ...]):
    """Sum ``grad`` down to ``shape`` to undo broadcasting.

    Broadcasting may prepend axes and/or stretch length-1 axes.  The
    adjoint of broadcasting is summation over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    b = get_backend()
    # Sum over prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = b.sum(grad, axis=tuple(range(extra)))
    # Sum over stretched axes.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = b.sum(grad, axis=axes, keepdims=True)
    return b.reshape(grad, shape)


class Tensor:
    """A backend-array tensor with reverse-mode autodiff support.

    Parameters
    ----------
    data:
        Array-like value.  Stored as ``float64`` unless already a float
        array (``float32`` is preserved).
    requires_grad:
        Whether gradients should be accumulated into ``self.grad`` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: Sequence["Tensor"] = (),
        _backward: Callable | None = None,
        name: str | None = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = get_backend().to_float_array(data)
        self.grad = None
        self.requires_grad = bool(requires_grad)
        self._parents: tuple[Tensor, ...] = tuple(_parents)
        self._backward = _backward
        self.name = name

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        # Computed from the shape: on torch tensors ``.size`` is a
        # method, so this is the one spelling that works everywhere.
        return int(math.prod(self.data.shape))

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        rendered = np.array2string(get_backend().to_numpy(self.data), precision=4, threshold=8)
        return f"Tensor({rendered}{grad_flag})"

    def numpy(self):
        """Return the underlying array as numpy (no copy when host-side)."""
        return get_backend().to_numpy(self.data)

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        arr = get_backend().to_numpy(self.data)
        return float(arr.reshape(-1)[0]) if arr.size == 1 else arr.item()

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the tape."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Return a taped identity copy (gradient flows through)."""
        return self.reshape(self.shape)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to ``None``."""
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data,
        parents: Sequence["Tensor"],
        backward: Callable,
    ) -> "Tensor":
        """Create a result node, taping it only when grad mode is on."""
        track = is_grad_enabled() and any(p.requires_grad for p in parents)
        if not track:
            return Tensor(data)
        return Tensor(data, requires_grad=True, _parents=parents, _backward=backward)

    def _accumulate(self, grad, owned: bool = False) -> None:
        """Add ``grad`` into this node's gradient buffer.

        ``owned=True`` asserts the caller passes a freshly allocated
        array that nothing else references (the adjoint it just
        computed), so the first accumulation can adopt it instead of
        paying a defensive copy.  Callers forwarding *shared* arrays —
        the incoming ``grad`` itself, or a view of it — must leave
        ``owned`` False.
        """
        if not self.requires_grad:
            return
        b = get_backend()
        if self.grad is None:
            if owned and grad.dtype == self.data.dtype:
                self.grad = grad
            else:
                self.grad = b.copy_cast(grad, self.data.dtype)
        else:
            b.iadd(self.grad, grad)

    def backward(self, grad=None) -> None:
        """Run reverse-mode autodiff from this node.

        Parameters
        ----------
        grad:
            Seed gradient.  Defaults to 1 for scalar tensors; required for
            non-scalar roots.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        b = get_backend()
        if grad is None:
            if self.size != 1:
                raise RuntimeError("backward() on a non-scalar tensor requires an explicit gradient")
            grad = b.ones_like(self.data)
        grad = b.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            grad = b.cast(b.broadcast_to(grad, self.data.shape), self.data.dtype)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited and parent.requires_grad:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = get_backend().add(self.data, other.data)

        def backward(grad) -> None:
            for tensor in (self, other):
                reduced = _unbroadcast(grad, tensor.shape)
                tensor._accumulate(reduced, owned=reduced is not grad)

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        b = get_backend()

        def backward(grad) -> None:
            self._accumulate(b.negative(grad), owned=True)

        return Tensor._make(b.negative(self.data), (self,), backward)

    def __sub__(self, other) -> "Tensor":
        other = as_tensor(other)
        b = get_backend()
        out_data = b.subtract(self.data, other.data)

        def backward(grad) -> None:
            reduced = _unbroadcast(grad, self.shape)
            self._accumulate(reduced, owned=reduced is not grad)
            other._accumulate(_unbroadcast(b.negative(grad), other.shape), owned=True)

        return Tensor._make(out_data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)
        b = get_backend()
        out_data = b.multiply(self.data, other.data)

        def backward(grad) -> None:
            self._accumulate(_unbroadcast(b.multiply(grad, other.data), self.shape), owned=True)
            other._accumulate(_unbroadcast(b.multiply(grad, self.data), other.shape), owned=True)

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)
        b = get_backend()
        out_data = b.divide(self.data, other.data)

        def backward(grad) -> None:
            self._accumulate(_unbroadcast(b.divide(grad, other.data), self.shape), owned=True)
            other._accumulate(
                _unbroadcast(
                    b.divide(b.multiply(b.negative(grad), self.data), b.power(other.data, 2)),
                    other.shape,
                ),
                owned=True,
            )

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log composition")
        b = get_backend()
        out_data = b.power(self.data, exponent)

        def backward(grad) -> None:
            self._accumulate(
                b.multiply(b.multiply(grad, exponent), b.power(self.data, exponent - 1)),
                owned=True,
            )

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Matrix multiplication
    # ------------------------------------------------------------------
    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        b = get_backend()
        out_data = b.matmul(self.data, other.data)

        def backward(grad) -> None:
            lhs, rhs = self.data, other.data
            if lhs.ndim == 1 and rhs.ndim == 1:
                self._accumulate(b.multiply(grad, rhs), owned=True)
                other._accumulate(b.multiply(grad, lhs), owned=True)
                return
            if lhs.ndim == 1:
                # (k,) @ (..., k, n) -> (..., n)
                grad_a = b.sum(
                    b.multiply(grad[..., None, :], b.swapaxes(rhs, -1, -2)),
                    axis=tuple(range(grad.ndim - 1)) + (-1,),
                )
                self._accumulate(_unbroadcast(b.reshape(grad_a, lhs.shape), lhs.shape), owned=True)
                other._accumulate(
                    _unbroadcast(b.multiply(lhs[:, None], grad[..., None, :]), rhs.shape),
                    owned=True,
                )
                return
            if rhs.ndim == 1:
                # (..., m, k) @ (k,) -> (..., m)
                self._accumulate(
                    _unbroadcast(b.multiply(grad[..., :, None], rhs), lhs.shape), owned=True
                )
                grad_b = b.matmul(b.swapaxes(lhs, -1, -2), grad[..., :, None])[..., 0]
                if grad_b.ndim > 1:
                    grad_b = b.sum(grad_b, axis=tuple(range(grad_b.ndim - 1)))
                other._accumulate(grad_b, owned=True)
                return
            grad_a = b.matmul(grad, b.swapaxes(rhs, -1, -2))
            grad_b = b.matmul(b.swapaxes(lhs, -1, -2), grad)
            self._accumulate(_unbroadcast(grad_a, lhs.shape), owned=True)
            other._accumulate(_unbroadcast(grad_b, rhs.shape), owned=True)

        return Tensor._make(out_data, (self, other), backward)

    def __rmatmul__(self, other) -> "Tensor":
        return as_tensor(other).__matmul__(self)

    # ------------------------------------------------------------------
    # Elementwise transcendental functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        b = get_backend()
        out_data = b.exp(self.data)

        def backward(grad) -> None:
            self._accumulate(b.multiply(grad, out_data), owned=True)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        b = get_backend()
        out_data = b.log(self.data)

        def backward(grad) -> None:
            self._accumulate(b.divide(grad, self.data), owned=True)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        b = get_backend()
        out_data = b.sqrt(self.data)

        def backward(grad) -> None:
            self._accumulate(b.divide(b.multiply(grad, 0.5), out_data), owned=True)

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        b = get_backend()
        out_data = b.abs(self.data)

        def backward(grad) -> None:
            self._accumulate(b.multiply(grad, b.sign(self.data)), owned=True)

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        b = get_backend()
        out_data, mask = b.relu(self.data)

        def backward(grad) -> None:
            self._accumulate(b.relu_backward(grad, mask), owned=True)

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        b = get_backend()
        out_data = b.sigmoid(self.data)

        def backward(grad) -> None:
            self._accumulate(b.sigmoid_backward(grad, out_data), owned=True)

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        b = get_backend()
        out_data = b.tanh(self.data)

        def backward(grad) -> None:
            self._accumulate(b.tanh_backward(grad, out_data), owned=True)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        b = get_backend()
        out_data = b.sum(self.data, axis=axis, keepdims=keepdims)

        def backward(grad) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = b.expand_dims(g, axis=axis if isinstance(axis, tuple) else (axis,))
            self._accumulate(b.cast(b.broadcast_to(g, self.shape), self.data.dtype), owned=True)

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        elif isinstance(axis, tuple):
            count = int(math.prod(self.shape[a] for a in axis))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def _minmax(self, axis, keepdims: bool, mode: str) -> "Tensor":
        b = get_backend()
        reducer = b.amax if mode == "max" else b.amin
        out_data = reducer(self.data, axis=axis, keepdims=keepdims)

        def backward(grad) -> None:
            expanded = out_data
            g = grad
            if axis is not None and not keepdims:
                ax = axis if isinstance(axis, tuple) else (axis,)
                expanded = b.expand_dims(expanded, axis=ax)
                g = b.expand_dims(g, axis=ax)
            mask = b.cast(b.equal(self.data, expanded), self.data.dtype)
            # Split gradient evenly among ties so the op stays a subgradient.
            counts = (
                b.sum(mask, axis=axis, keepdims=True) if axis is not None else b.sum(mask)
            )
            self._accumulate(b.divide(b.multiply(g, mask), counts), owned=True)

        return Tensor._make(out_data, (self,), backward)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        return self._minmax(axis, keepdims, "max")

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return self._minmax(axis, keepdims, "min")

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        b = get_backend()
        out_data = b.reshape(self.data, shape)
        original = self.shape

        def backward(grad) -> None:
            self._accumulate(b.reshape(grad, original))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        b = get_backend()
        out_data = b.transpose(self.data, axes)
        inverse = tuple(int(i) for i in np.argsort(axes))

        def backward(grad) -> None:
            self._accumulate(b.transpose(grad, inverse))

        return Tensor._make(out_data, (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(tuple(axes))

    def __getitem__(self, index) -> "Tensor":
        b = get_backend()
        out_data = b.getitem(self.data, index)

        def backward(grad) -> None:
            full = b.zeros_like(self.data)
            b.scatter_add(full, index, grad)
            self._accumulate(full, owned=True)

        return Tensor._make(b.copy(out_data), (self,), backward)

    def squeeze(self, axis=None) -> "Tensor":
        out_shape = get_backend().squeeze(self.data, axis=axis).shape
        return self.reshape(out_shape)

    def unsqueeze(self, axis: int) -> "Tensor":
        out_shape = get_backend().expand_dims(self.data, axis=axis).shape
        return self.reshape(out_shape)


def as_tensor(value) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy when already one)."""
    return value if isinstance(value, Tensor) else Tensor(value)
