"""Functional operations on :class:`~repro.autograd.tensor.Tensor`.

These complement the methods on ``Tensor`` with multi-input ops
(concatenate, stack, where, elementwise max), stabilised softmax variants,
dropout, embedding lookup, and the dilated 1-D convolution used by the
paper's temporal module (Eq. 5).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .tensor import Tensor, as_tensor, is_grad_enabled

__all__ = [
    "concatenate",
    "stack",
    "pad",
    "where",
    "maximum",
    "minimum",
    "softmax",
    "log_softmax",
    "dropout",
    "embedding",
    "conv1d",
    "clip_values",
    "leaky_relu",
    "elu",
    "gelu",
    "softplus",
]


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` (adjoint: split the gradient)."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(start, stop)
            tensor._accumulate(grad[tuple(index)])

    return Tensor._make(out_data, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slabs = np.split(grad, len(tensors), axis=axis)
        for tensor, slab in zip(tensors, slabs):
            tensor._accumulate(np.squeeze(slab, axis=axis))

    return Tensor._make(out_data, tuple(tensors), backward)


def pad(tensor: Tensor, pad_width, constant: float = 0.0) -> Tensor:
    """Zero (or constant) padding; the adjoint slices the gradient back."""
    tensor = as_tensor(tensor)
    out_data = np.pad(tensor.data, pad_width, constant_values=constant)
    slices = tuple(
        slice(before, before + n) for (before, _after), n in zip(pad_width, tensor.shape)
    )

    def backward(grad: np.ndarray) -> None:
        tensor._accumulate(grad[slices])

    return Tensor._make(out_data, (tensor,), backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select; ``condition`` is a constant boolean array."""
    a, b = as_tensor(a), as_tensor(b)
    cond = np.asarray(condition, dtype=bool)
    out_data = np.where(cond, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        from .tensor import _unbroadcast

        a._accumulate(_unbroadcast(grad * cond, a.shape))
        b._accumulate(_unbroadcast(grad * ~cond, b.shape))

    return Tensor._make(out_data, (a, b), backward)


def maximum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise max of two tensors; ties split the gradient equally."""
    a, b = as_tensor(a), as_tensor(b)
    out_data = np.maximum(a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        from .tensor import _unbroadcast

        a_wins = (a.data > b.data).astype(grad.dtype)
        b_wins = (b.data > a.data).astype(grad.dtype)
        tie = (a.data == b.data).astype(grad.dtype) * 0.5
        a._accumulate(_unbroadcast(grad * (a_wins + tie), a.shape))
        b._accumulate(_unbroadcast(grad * (b_wins + tie), b.shape))

    return Tensor._make(out_data, (a, b), backward)


def minimum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise min of two tensors; ties split the gradient equally."""
    return -maximum(-as_tensor(a), -as_tensor(b))


def softmax(tensor: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stabilised softmax along ``axis``."""
    tensor = as_tensor(tensor)
    shifted = tensor.data - tensor.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        dot = (grad * out_data).sum(axis=axis, keepdims=True)
        tensor._accumulate(out_data * (grad - dot))

    return Tensor._make(out_data, (tensor,), backward)


def log_softmax(tensor: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stabilised log-softmax along ``axis``."""
    tensor = as_tensor(tensor)
    shifted = tensor.data - tensor.data.max(axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_norm
    soft = np.exp(out_data)

    def backward(grad: np.ndarray) -> None:
        tensor._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(out_data, (tensor,), backward)


def dropout(tensor: Tensor, rate: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout: scales kept units by ``1 / (1 - rate)`` at train time."""
    tensor = as_tensor(tensor)
    if not training or rate <= 0.0:
        return tensor
    if rate >= 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    keep = 1.0 - rate
    mask = (rng.random(tensor.shape) < keep).astype(tensor.dtype) / keep
    out_data = tensor.data * mask

    def backward(grad: np.ndarray) -> None:
        tensor._accumulate(grad * mask)

    return Tensor._make(out_data, (tensor,), backward)


def embedding(table: Tensor, indices: np.ndarray) -> Tensor:
    """Row lookup ``table[indices]`` with scatter-add adjoint."""
    table = as_tensor(table)
    idx = np.asarray(indices, dtype=np.int64)
    out_data = table.data[idx]

    def backward(grad: np.ndarray) -> None:
        full = np.zeros_like(table.data)
        np.add.at(full, idx, grad)
        table._accumulate(full)

    return Tensor._make(np.array(out_data, copy=True), (table,), backward)


def clip_values(tensor: Tensor, low: float, high: float) -> Tensor:
    """Clamp values; the gradient passes only through the unclipped region."""
    tensor = as_tensor(tensor)
    out_data = np.clip(tensor.data, low, high)
    mask = ((tensor.data >= low) & (tensor.data <= high)).astype(tensor.dtype)

    def backward(grad: np.ndarray) -> None:
        tensor._accumulate(grad * mask)

    return Tensor._make(out_data, (tensor,), backward)


def leaky_relu(tensor: Tensor, negative_slope: float = 0.2) -> Tensor:
    """``x`` for positive inputs, ``slope * x`` otherwise (GAT's default 0.2)."""
    tensor = as_tensor(tensor)
    positive = tensor.data > 0
    out_data = np.where(positive, tensor.data, negative_slope * tensor.data)

    def backward(grad: np.ndarray) -> None:
        tensor._accumulate(grad * np.where(positive, 1.0, negative_slope))

    return Tensor._make(out_data, (tensor,), backward)


def elu(tensor: Tensor, alpha: float = 1.0) -> Tensor:
    """Exponential linear unit: ``x`` if positive else ``α (eˣ − 1)``."""
    tensor = as_tensor(tensor)
    positive = tensor.data > 0
    exp_term = alpha * (np.exp(np.minimum(tensor.data, 0.0)) - 1.0)
    out_data = np.where(positive, tensor.data, exp_term)

    def backward(grad: np.ndarray) -> None:
        tensor._accumulate(grad * np.where(positive, 1.0, exp_term + alpha))

    return Tensor._make(out_data, (tensor,), backward)


def gelu(tensor: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation)."""
    tensor = as_tensor(tensor)
    x = tensor.data
    c = np.sqrt(2.0 / np.pi)
    inner = c * (x + 0.044715 * x ** 3)
    tanh_inner = np.tanh(inner)
    out_data = 0.5 * x * (1.0 + tanh_inner)

    def backward(grad: np.ndarray) -> None:
        sech2 = 1.0 - tanh_inner ** 2
        d_inner = c * (1.0 + 3.0 * 0.044715 * x ** 2)
        local = 0.5 * (1.0 + tanh_inner) + 0.5 * x * sech2 * d_inner
        tensor._accumulate(grad * local)

    return Tensor._make(out_data, (tensor,), backward)


def softplus(tensor: Tensor, beta: float = 1.0) -> Tensor:
    """``log(1 + exp(βx)) / β`` — a smooth ReLU; stable for large inputs."""
    if beta <= 0:
        raise ValueError(f"beta must be positive, got {beta}")
    tensor = as_tensor(tensor)
    scaled = beta * tensor.data
    # log1p(exp(s)) = max(s, 0) + log1p(exp(-|s|)) avoids overflow; the
    # sigmoid below uses the same trick for its exp.
    out_data = (np.maximum(scaled, 0.0) + np.log1p(np.exp(-np.abs(scaled)))) / beta
    exp_neg = np.exp(-np.abs(scaled))
    sig = np.where(scaled >= 0, 1.0 / (1.0 + exp_neg), exp_neg / (1.0 + exp_neg))

    def backward(grad: np.ndarray) -> None:
        tensor._accumulate(grad * sig)

    return Tensor._make(out_data, (tensor,), backward)


def _conv1d_output_length(length: int, kernel: int, dilation: int, padding: int) -> int:
    effective = (kernel - 1) * dilation + 1
    return length + 2 * padding - effective + 1


def conv1d(
    inputs: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    dilation: int = 1,
    padding: int = 0,
) -> Tensor:
    """Dilated 1-D convolution (the paper's TCN primitive, Eq. 5).

    Parameters
    ----------
    inputs:
        ``(batch, channels_in, length)``.
    weight:
        ``(channels_out, channels_in, kernel)``.
    bias:
        Optional ``(channels_out,)``.
    dilation:
        Spacing between kernel taps (paper uses ``2**j``).
    padding:
        Symmetric zero padding applied to the length axis.

    Returns
    -------
    Tensor
        ``(batch, channels_out, length_out)``.
    """
    inputs = as_tensor(inputs)
    weight = as_tensor(weight)
    batch, c_in, length = inputs.shape
    c_out, c_in_w, kernel = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"channel mismatch: input has {c_in}, weight expects {c_in_w}")
    out_len = _conv1d_output_length(length, kernel, dilation, padding)
    if out_len <= 0:
        raise ValueError(
            f"conv1d output length would be {out_len} "
            f"(length={length}, kernel={kernel}, dilation={dilation}, padding={padding})"
        )

    padded = np.pad(inputs.data, ((0, 0), (0, 0), (padding, padding))) if padding else inputs.data
    # Gather taps: cols[b, c, k, t] = padded[b, c, t + k * dilation]
    tap_index = np.arange(out_len)[None, :] + dilation * np.arange(kernel)[:, None]
    cols = padded[:, :, tap_index]  # (batch, c_in, kernel, out_len)
    w = weight.data  # (c_out, c_in, kernel)
    out_data = np.einsum("bckt,ock->bot", cols, w, optimize=True)
    if bias is not None:
        out_data = out_data + bias.data[None, :, None]

    parents: tuple[Tensor, ...] = (inputs, weight) if bias is None else (inputs, weight, bias)

    def backward(grad: np.ndarray) -> None:
        # grad: (batch, c_out, out_len)
        grad_w = np.einsum("bot,bckt->ock", grad, cols, optimize=True)
        weight._accumulate(grad_w)
        if bias is not None:
            bias._accumulate(grad.sum(axis=(0, 2)))
        grad_cols = np.einsum("bot,ock->bckt", grad, w, optimize=True)
        grad_padded = np.zeros_like(padded)
        np.add.at(grad_padded, (slice(None), slice(None), tap_index), grad_cols)
        if padding:
            grad_padded = grad_padded[:, :, padding:-padding]
        inputs._accumulate(grad_padded)

    return Tensor._make(out_data, parents, backward)
