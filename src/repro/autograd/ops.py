"""Functional operations on :class:`~repro.autograd.tensor.Tensor`.

These complement the methods on ``Tensor`` with multi-input ops
(concatenate, stack, where, elementwise max), stabilised softmax variants,
dropout, embedding lookup, and the dilated 1-D convolution used by the
paper's temporal module (Eq. 5).

All array math routes through the active
:class:`~repro.backend.ArrayBackend`; numpy appears only for host-side
bookkeeping (index arithmetic, shape accounting).
"""

from __future__ import annotations

import itertools
import math
from typing import Sequence

import numpy as np

from ..backend import get_backend
from .tensor import Tensor, _unbroadcast, as_tensor

__all__ = [
    "concatenate",
    "stack",
    "pad",
    "where",
    "maximum",
    "minimum",
    "softmax",
    "log_softmax",
    "dropout",
    "embedding",
    "conv1d",
    "clip_values",
    "leaky_relu",
    "elu",
    "gelu",
    "softplus",
]


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` (adjoint: split the gradient)."""
    tensors = [as_tensor(t) for t in tensors]
    b = get_backend()
    out_data = b.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = list(itertools.accumulate([0] + sizes))

    def backward(grad) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(start, stop)
            tensor._accumulate(grad[tuple(index)])

    return Tensor._make(out_data, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    b = get_backend()
    out_data = b.stack([t.data for t in tensors], axis=axis)

    def backward(grad) -> None:
        slabs = b.split(grad, len(tensors), axis=axis)
        for tensor, slab in zip(tensors, slabs):
            tensor._accumulate(b.squeeze(slab, axis=axis))

    return Tensor._make(out_data, tuple(tensors), backward)


def pad(tensor: Tensor, pad_width, constant: float = 0.0) -> Tensor:
    """Zero (or constant) padding; the adjoint slices the gradient back."""
    tensor = as_tensor(tensor)
    b = get_backend()
    out_data = b.pad(tensor.data, pad_width, constant=constant)
    slices = tuple(
        slice(before, before + n) for (before, _after), n in zip(pad_width, tensor.shape)
    )

    def backward(grad) -> None:
        tensor._accumulate(grad[slices])

    return Tensor._make(out_data, (tensor,), backward)


def where(condition, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select; ``condition`` is a constant boolean array."""
    a, b = as_tensor(a), as_tensor(b)
    backend = get_backend()
    cond = backend.asarray(condition, dtype=bool)
    out_data = backend.where(cond, a.data, b.data)

    def backward(grad) -> None:
        a._accumulate(_unbroadcast(backend.multiply(grad, cond), a.shape), owned=True)
        b._accumulate(
            _unbroadcast(backend.multiply(grad, backend.logical_not(cond)), b.shape), owned=True
        )

    return Tensor._make(out_data, (a, b), backward)


def maximum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise max of two tensors; ties split the gradient equally."""
    a, b = as_tensor(a), as_tensor(b)
    backend = get_backend()
    out_data = backend.maximum(a.data, b.data)

    def backward(grad) -> None:
        grad_a, grad_b = backend.maximum_backward(
            grad, a.data, b.data, a.shape, b.shape, _unbroadcast
        )
        a._accumulate(grad_a, owned=True)
        b._accumulate(grad_b, owned=True)

    return Tensor._make(out_data, (a, b), backward)


def minimum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise min of two tensors; ties split the gradient equally."""
    return -maximum(-as_tensor(a), -as_tensor(b))


def softmax(tensor: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stabilised softmax along ``axis``."""
    tensor = as_tensor(tensor)
    b = get_backend()
    out_data = b.softmax(tensor.data, axis=axis)

    def backward(grad) -> None:
        tensor._accumulate(b.softmax_backward(grad, out_data, axis=axis), owned=True)

    return Tensor._make(out_data, (tensor,), backward)


def log_softmax(tensor: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stabilised log-softmax along ``axis``."""
    tensor = as_tensor(tensor)
    b = get_backend()
    out_data, soft = b.log_softmax(tensor.data, axis=axis)

    def backward(grad) -> None:
        tensor._accumulate(b.log_softmax_backward(grad, soft, axis=axis), owned=True)

    return Tensor._make(out_data, (tensor,), backward)


def dropout(tensor: Tensor, rate: float, training: bool, rng) -> Tensor:
    """Inverted dropout: scales kept units by ``1 / (1 - rate)`` at train time."""
    tensor = as_tensor(tensor)
    if not training or rate <= 0.0:
        return tensor
    if rate >= 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    keep = 1.0 - rate
    b = get_backend()
    mask = b.dropout_mask(rng, tensor.shape, keep, tensor.dtype)
    out_data = b.multiply(tensor.data, mask)

    def backward(grad) -> None:
        tensor._accumulate(b.multiply(grad, mask), owned=True)

    return Tensor._make(out_data, (tensor,), backward)


def embedding(table: Tensor, indices) -> Tensor:
    """Row lookup ``table[indices]`` with scatter-add adjoint."""
    table = as_tensor(table)
    b = get_backend()
    idx = np.asarray(indices, dtype=np.int64)
    out_data = b.getitem(table.data, idx)

    def backward(grad) -> None:
        full = b.zeros_like(table.data)
        b.scatter_add(full, idx, grad)
        table._accumulate(full, owned=True)

    return Tensor._make(b.copy(out_data), (table,), backward)


def clip_values(tensor: Tensor, low: float, high: float) -> Tensor:
    """Clamp values; the gradient passes only through the unclipped region."""
    tensor = as_tensor(tensor)
    b = get_backend()
    out_data = b.clip(tensor.data, low, high)
    mask = b.cast(
        b.logical_and(b.greater_equal(tensor.data, low), b.less_equal(tensor.data, high)),
        tensor.dtype,
    )

    def backward(grad) -> None:
        tensor._accumulate(b.multiply(grad, mask), owned=True)

    return Tensor._make(out_data, (tensor,), backward)


def leaky_relu(tensor: Tensor, negative_slope: float = 0.2) -> Tensor:
    """``x`` for positive inputs, ``slope * x`` otherwise (GAT's default 0.2)."""
    tensor = as_tensor(tensor)
    b = get_backend()
    positive = b.greater(tensor.data, 0)
    out_data = b.where(positive, tensor.data, b.multiply(negative_slope, tensor.data))

    def backward(grad) -> None:
        tensor._accumulate(b.multiply(grad, b.where(positive, 1.0, negative_slope)), owned=True)

    return Tensor._make(out_data, (tensor,), backward)


def elu(tensor: Tensor, alpha: float = 1.0) -> Tensor:
    """Exponential linear unit: ``x`` if positive else ``α (eˣ − 1)``."""
    tensor = as_tensor(tensor)
    b = get_backend()
    positive = b.greater(tensor.data, 0)
    exp_term = b.multiply(alpha, b.subtract(b.exp(b.minimum(tensor.data, 0.0)), 1.0))
    out_data = b.where(positive, tensor.data, exp_term)

    def backward(grad) -> None:
        tensor._accumulate(
            b.multiply(grad, b.where(positive, 1.0, b.add(exp_term, alpha))), owned=True
        )

    return Tensor._make(out_data, (tensor,), backward)


def gelu(tensor: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation)."""
    tensor = as_tensor(tensor)
    b = get_backend()
    x = tensor.data
    c = math.sqrt(2.0 / math.pi)
    inner = b.multiply(c, b.add(x, b.multiply(0.044715, b.power(x, 3))))
    tanh_inner = b.tanh(inner)
    out_data = b.multiply(b.multiply(0.5, x), b.add(1.0, tanh_inner))

    def backward(grad) -> None:
        sech2 = b.subtract(1.0, b.power(tanh_inner, 2))
        d_inner = b.multiply(c, b.add(1.0, b.multiply(3.0 * 0.044715, b.power(x, 2))))
        local = b.add(
            b.multiply(0.5, b.add(1.0, tanh_inner)),
            b.multiply(b.multiply(b.multiply(0.5, x), sech2), d_inner),
        )
        tensor._accumulate(b.multiply(grad, local), owned=True)

    return Tensor._make(out_data, (tensor,), backward)


def softplus(tensor: Tensor, beta: float = 1.0) -> Tensor:
    """``log(1 + exp(βx)) / β`` — a smooth ReLU; stable for large inputs."""
    if beta <= 0:
        raise ValueError(f"beta must be positive, got {beta}")
    tensor = as_tensor(tensor)
    b = get_backend()
    scaled = b.multiply(beta, tensor.data)
    # log1p(exp(s)) = max(s, 0) + log1p(exp(-|s|)) avoids overflow; the
    # sigmoid below uses the same trick for its exp.
    out_data = b.divide(
        b.add(b.maximum(scaled, 0.0), b.log1p(b.exp(b.negative(b.abs(scaled))))), beta
    )
    exp_neg = b.exp(b.negative(b.abs(scaled)))
    sig = b.where(
        b.greater_equal(scaled, 0),
        b.divide(1.0, b.add(1.0, exp_neg)),
        b.divide(exp_neg, b.add(1.0, exp_neg)),
    )

    def backward(grad) -> None:
        tensor._accumulate(b.multiply(grad, sig), owned=True)

    return Tensor._make(out_data, (tensor,), backward)


def _conv1d_output_length(length: int, kernel: int, dilation: int, padding: int) -> int:
    effective = (kernel - 1) * dilation + 1
    return length + 2 * padding - effective + 1


def conv1d(
    inputs: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    dilation: int = 1,
    padding: int = 0,
) -> Tensor:
    """Dilated 1-D convolution (the paper's TCN primitive, Eq. 5).

    Parameters
    ----------
    inputs:
        ``(batch, channels_in, length)``.
    weight:
        ``(channels_out, channels_in, kernel)``.
    bias:
        Optional ``(channels_out,)``.
    dilation:
        Spacing between kernel taps (paper uses ``2**j``).
    padding:
        Symmetric zero padding applied to the length axis.

    Returns
    -------
    Tensor
        ``(batch, channels_out, length_out)``.
    """
    inputs = as_tensor(inputs)
    weight = as_tensor(weight)
    batch, c_in, length = inputs.shape
    c_out, c_in_w, kernel = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"channel mismatch: input has {c_in}, weight expects {c_in_w}")
    out_len = _conv1d_output_length(length, kernel, dilation, padding)
    if out_len <= 0:
        raise ValueError(
            f"conv1d output length would be {out_len} "
            f"(length={length}, kernel={kernel}, dilation={dilation}, padding={padding})"
        )

    b = get_backend()
    padded = (
        b.pad(inputs.data, ((0, 0), (0, 0), (padding, padding))) if padding else inputs.data
    )
    w = weight.data  # (c_out, c_in, kernel)
    out_data, saved = b.conv1d_apply(padded, w, dilation, out_len)
    if bias is not None:
        out_data = b.add(out_data, bias.data[None, :, None])

    parents: tuple[Tensor, ...] = (inputs, weight) if bias is None else (inputs, weight, bias)

    def backward(grad) -> None:
        # grad: (batch, c_out, out_len)
        grad_w, grad_padded = b.conv1d_backward(grad, saved, padded, w, dilation)
        weight._accumulate(grad_w, owned=True)
        if bias is not None:
            bias._accumulate(b.sum(grad, axis=(0, 2)), owned=True)
        if padding:
            # Still exclusively ours: a view into the fresh padded buffer.
            grad_padded = grad_padded[:, :, padding:-padding]
        inputs._accumulate(grad_padded, owned=True)

    return Tensor._make(out_data, parents, backward)
