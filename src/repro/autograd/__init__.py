"""Reverse-mode automatic differentiation on numpy arrays.

This subpackage replaces the PyTorch autograd dependency of the original
STSM implementation (see DESIGN.md, substitution table).  The public surface
mirrors the subset of framework functionality the paper's model needs:
tensors with ``backward()``, broadcasting elementwise math, matmul,
reductions, shape ops, softmax/dropout, and dilated 1-D convolution.
"""

from .grad_check import check_gradients, numerical_gradient
from .ops import (
    clip_values,
    concatenate,
    conv1d,
    dropout,
    elu,
    embedding,
    gelu,
    leaky_relu,
    log_softmax,
    maximum,
    minimum,
    pad,
    softmax,
    softplus,
    stack,
    where,
)
from .tensor import Tensor, as_tensor, is_grad_enabled, no_grad

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "concatenate",
    "stack",
    "pad",
    "where",
    "maximum",
    "minimum",
    "softmax",
    "log_softmax",
    "dropout",
    "embedding",
    "conv1d",
    "clip_values",
    "leaky_relu",
    "elu",
    "gelu",
    "softplus",
    "check_gradients",
    "numerical_gradient",
]
