"""Thread-safe metrics registry: counters, gauges, bucketed histograms.

One registry gathers every subsystem's telemetry under Prometheus-style
metric names so a single ``GET /metrics`` scrape (or one ``stats()``
read) sees the whole system.  Two publication styles coexist:

* **Instruments** — :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` families created through the registry.  Hot paths
  mutate them directly; each family fans out into per-label-set
  children (``family.labels(model="stsm/pems-bay").inc()``).
* **Collectors** — callables registered with
  :meth:`MetricsRegistry.register_collector` that return samples at
  *scrape time*.  Existing hand-rolled counters (scheduler stats,
  service cache counters, store per-namespace stats, transport byte
  counts) publish through collectors, so migrating them onto the
  registry costs the serving hot path nothing: the counters they
  already maintain are merely read when someone scrapes.

Naming scheme (see DESIGN.md §15): every metric is
``repro_<subsystem>_<quantity>[_total|_seconds|_bytes]`` with label
keys drawn from ``model`` / ``namespace`` / ``backend`` / ``op`` /
``status`` / ``worker``.  Collector samples are rendered untyped;
instruments render with ``# HELP`` / ``# TYPE`` headers, histograms
with cumulative ``_bucket{le=...}`` lines plus ``_sum`` and ``_count``.

Histogram percentiles are estimated by linear interpolation inside the
bucket containing the quantile rank (exact ``count``/``sum``/``max``
are tracked alongside, so ``mean`` and ``max`` are exact).  The default
bucket bounds are :data:`LATENCY_BUCKETS` — exponential from 100 µs to
10 s, chosen so serving latencies (sub-millisecond cache hits to
multi-second cold batches) land 2–4 buckets apart and p50/p95/p99 are
resolved to within a bucket's width.

Everything here is stdlib-only and safe under concurrent mutation: one
lock per child instrument, one registry lock for family/collector
bookkeeping.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Callable, Iterable, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "global_registry",
    "render_prometheus",
]

#: Histogram bucket upper bounds in **seconds** (exclusive of +inf,
#: which is always appended): exponential 100 µs → 10 s.  Documented in
#: DESIGN.md §15; the scheduler's latency recorder reuses these bounds.
LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: One collector sample: ``(metric_name, labels, value)``.
Sample = tuple[str, Mapping[str, object], float]


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name or ""):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _label_key(labelnames: Sequence[str], labels: Mapping[str, object]) -> tuple:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"labels {sorted(labels)} do not match declared label names "
            f"{sorted(labelnames)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


def _format_labels(labelnames: Sequence[str], key: tuple) -> str:
    if not labelnames:
        return ""
    body = ",".join(
        f'{name}="{_escape(value)}"' for name, value in zip(labelnames, key)
    )
    return "{" + body + "}"


def _escape(value: str) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class _Family:
    """Shared machinery: per-label-set children behind one lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()) -> None:
        self.name = _check_name(name)
        self.help = str(help)
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: dict[tuple, object] = {}

    def labels(self, **labels):
        """The child instrument for one concrete label assignment."""
        key = _label_key(self.labelnames, labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._make_child()
            return child

    def _make_child(self):
        raise NotImplementedError

    def _items(self) -> list[tuple[tuple, object]]:
        with self._lock:
            return list(self._children.items())

    # Label-less convenience: family doubles as its sole child.
    def _default(self):
        if self.labelnames:
            raise ValueError(
                f"metric {self.name!r} declares labels {self.labelnames}; "
                "use .labels(...)"
            )
        return self.labels()


class _CounterChild:
    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Counter(_Family):
    """Monotonically increasing count (requests served, ops issued)."""

    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    @property
    def value(self) -> float:
        return self._default().value


class _GaugeChild:
    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge(_Family):
    """Point-in-time value (queue depth, refit lag)."""

    kind = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._default().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    @property
    def value(self) -> float:
        return self._default().value


class _HistogramChild:
    """Fixed-bucket histogram with exact count/sum/max.

    Percentiles interpolate linearly inside the bucket holding the
    quantile rank; the top (+inf) bucket is clamped to the observed
    maximum so a single outlier cannot report an infinite p99.
    """

    __slots__ = ("_lock", "bounds", "_counts", "count", "sum", "max")

    def __init__(self, bounds: Sequence[float]) -> None:
        self._lock = threading.Lock()
        self.bounds = tuple(bounds)
        self._counts = [0] * (len(self.bounds) + 1)  # last = +inf
        self.count = 0
        self.sum = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        # Bisect by hand: bounds lists are short (17 entries) and this
        # avoids importing bisect into a __slots__-hot path.
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        with self._lock:
            self._counts[lo] += 1
            self.count += 1
            self.sum += value
            if value > self.max:
                self.max = value

    def snapshot(self) -> tuple[list[int], int, float, float]:
        with self._lock:
            return list(self._counts), self.count, self.sum, self.max

    def percentile(self, q: float) -> float | None:
        """Estimated ``q``-th percentile (``q`` in [0, 100])."""
        counts, count, _total, observed_max = self.snapshot()
        if count == 0:
            return None
        rank = (q / 100.0) * count
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            if bucket_count == 0:
                continue
            lower = self.bounds[index - 1] if index > 0 else 0.0
            upper = (
                self.bounds[index] if index < len(self.bounds) else observed_max
            )
            if upper < lower:  # all-in-+inf corner with tiny max
                upper = lower
            if cumulative + bucket_count >= rank:
                fraction = (rank - cumulative) / bucket_count
                estimate = lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
                # Interpolation can overshoot the data (every sample may
                # sit at the bottom of its bucket); the exact max is a
                # hard ceiling on any quantile.
                return min(estimate, observed_max)
            cumulative += bucket_count
        return observed_max

    def summary(self) -> dict:
        """JSON-able snapshot: exact count/sum/mean/max + estimated quantiles."""
        _counts, count, total, observed_max = self.snapshot()
        if count == 0:
            return {"count": 0, "sum": 0.0, "mean": None, "max": None,
                    "p50": None, "p95": None, "p99": None}
        return {
            "count": count,
            "sum": total,
            "mean": total / count,
            "max": observed_max,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
        }


class Histogram(_Family):
    """Bucketed distribution (latencies, batch sizes, cell timings)."""

    kind = "histogram"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = (),
                 buckets: Sequence[float] | None = None) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(buckets) if buckets is not None else LATENCY_BUCKETS
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"bucket bounds must be sorted and non-empty: {bounds}")
        self.buckets = bounds

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    def percentile(self, q: float) -> float | None:
        return self._default().percentile(q)

    def summary(self) -> dict:
        return self._default().summary()


class MetricsRegistry:
    """Families plus scrape-time collectors behind one lock.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice
    for one name returns the same family (with a ``ValueError`` if the
    kind or label names disagree — two subsystems silently sharing one
    name with different meanings is a bug worth failing on).

    Collectors are keyed by source name with **replace** semantics: a
    re-registered source (a runtime rebuilt in a test, a swapped
    bridge) overwrites its predecessor instead of double-reporting.  A
    collector that raises is skipped and its error surfaced in
    :meth:`as_dict` under ``collector_errors`` — a scrape must never
    fail because one subsystem is mid-teardown.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}
        self._collectors: dict[str, Callable[[], Iterable[Sample]]] = {}

    # -- instruments ----------------------------------------------------
    def _family(self, cls, name: str, help: str, labelnames: Sequence[str],
                **kwargs) -> _Family:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = self._families[name] = cls(name, help, labelnames, **kwargs)
            elif not isinstance(family, cls) or family.labelnames != tuple(labelnames):
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind} "
                    f"with labels {family.labelnames}"
                )
            return family

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Counter:
        return self._family(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        return self._family(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "", labelnames: Sequence[str] = (),
                  buckets: Sequence[float] | None = None) -> Histogram:
        return self._family(Histogram, name, help, labelnames, buckets=buckets)

    # -- collectors -----------------------------------------------------
    def register_collector(self, source: str,
                           fn: Callable[[], Iterable[Sample]]) -> None:
        """Attach (or replace) a scrape-time sample source."""
        if not source:
            raise ValueError("collector source name must be non-empty")
        with self._lock:
            self._collectors[source] = fn

    def unregister_collector(self, source: str) -> bool:
        with self._lock:
            return self._collectors.pop(source, None) is not None

    def _collect_samples(self) -> tuple[dict[str, list[Sample]], dict[str, str]]:
        with self._lock:
            collectors = list(self._collectors.items())
        collected: dict[str, list[Sample]] = {}
        errors: dict[str, str] = {}
        for source, fn in collectors:
            try:
                collected[source] = [
                    (_check_name(str(name)), dict(labels or {}), float(value))
                    for name, labels, value in fn()
                ]
            except Exception as error:  # noqa: BLE001 — scrapes must not fail
                errors[source] = f"{type(error).__name__}: {error}"
        return collected, errors

    # -- readout --------------------------------------------------------
    def as_dict(self) -> dict:
        """JSON-able snapshot for the ``metrics`` section of ``stats()``."""
        with self._lock:
            families = list(self._families.values())
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for family in families:
            for key, child in family._items():
                label = _format_labels(family.labelnames, key)
                full = family.name + label
                if isinstance(family, Counter):
                    out["counters"][full] = child.value
                elif isinstance(family, Gauge):
                    out["gauges"][full] = child.value
                else:
                    out["histograms"][full] = child.summary()
        collected, errors = self._collect_samples()
        out["collected"] = {
            source: {
                name + _format_labels(sorted(labels), tuple(
                    str(labels[k]) for k in sorted(labels))): value
                for name, labels, value in samples
            }
            for source, samples in collected.items()
        }
        if errors:
            out["collector_errors"] = errors
        return out

    def render(self) -> str:
        """This registry's metrics in the Prometheus text format."""
        return render_prometheus(self)


def render_prometheus(*registries: MetricsRegistry) -> str:
    """Prometheus text exposition (version 0.0.4) over one or more registries.

    Instruments render with HELP/TYPE headers; histogram families emit
    cumulative ``_bucket`` lines (``le`` in seconds, ``+Inf`` last),
    ``_sum`` and ``_count``.  Collector samples render untyped, grouped
    by metric name.  Duplicate names across registries render in
    registry order (Prometheus tolerates repeated groups on scrape).
    """
    lines: list[str] = []
    seen_untyped: dict[str, list[str]] = {}
    for registry in registries:
        with registry._lock:
            families = list(registry._families.values())
        for family in families:
            items = family._items()
            if not items:
                continue
            if family.help:
                lines.append(f"# HELP {family.name} {_escape(family.help)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for key, child in items:
                label = _format_labels(family.labelnames, key)
                if isinstance(family, (Counter, Gauge)):
                    lines.append(f"{family.name}{label} {_render_value(child.value)}")
                else:
                    counts, count, total, _maximum = child.snapshot()
                    cumulative = 0
                    for bound, bucket_count in zip(family.buckets, counts):
                        cumulative += bucket_count
                        le = _format_labels(
                            family.labelnames + ("le",), key + (repr(float(bound)),)
                        )
                        lines.append(f"{family.name}_bucket{le} {cumulative}")
                    cumulative += counts[-1]
                    le = _format_labels(family.labelnames + ("le",), key + ("+Inf",))
                    lines.append(f"{family.name}_bucket{le} {cumulative}")
                    lines.append(f"{family.name}_sum{label} {_render_value(total)}")
                    lines.append(f"{family.name}_count{label} {count}")
        collected, _errors = registry._collect_samples()
        for samples in collected.values():
            for name, labels, value in samples:
                label = _format_labels(
                    tuple(sorted(labels)),
                    tuple(str(labels[k]) for k in sorted(labels)),
                )
                seen_untyped.setdefault(name, []).append(
                    f"{name}{label} {_render_value(value)}"
                )
    for name in sorted(seen_untyped):
        lines.append(f"# TYPE {name} untyped")
        lines.extend(seen_untyped[name])
    return "\n".join(lines) + ("\n" if lines else "")


def _render_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


# ----------------------------------------------------------------------
# Process-wide registry (training/profiling/sweep metrics that are not
# owned by any one runtime; the HTTP server scrapes it alongside the
# runtime's own registry).
# ----------------------------------------------------------------------
_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide registry (trainer, backend ops, sweep cells)."""
    return _GLOBAL
