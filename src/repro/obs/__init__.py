"""Unified observability layer: metrics registry, tracing, profiling.

Three pieces, one opt-in switch (``REPRO_OBS=1``):

* :mod:`repro.obs.metrics` — thread-safe :class:`MetricsRegistry`
  (counters / gauges / fixed-bucket histograms with p50/p95/p99) plus
  scrape-time collectors; rendered by :func:`render_prometheus` on the
  HTTP server's ``GET /metrics`` and embedded as the ``metrics``
  section of :meth:`~repro.serving.ServingRuntime.stats`.
* :mod:`repro.obs.trace` — span-based request tracing: trace ids
  minted in :class:`~repro.serving.transport.ForecastClient`, carried
  in the wire codec's control header, propagated HTTP handler →
  scheduler → service → store; spans land in a ring-buffer
  :class:`TraceRecorder` exported as JSONL (``GET /v1/traces``,
  ``python -m repro.obs report``).
* :mod:`repro.obs.profiling` — the ``REPRO_OBS`` switch, trainer
  epoch/phase timings, and backend op-level counting.

The layer observes timings and counts only — never model bytes — so
every bitwise-parity contract in the repository holds with
observability on or off (gated by ``benchmarks/bench_obs.py``).
"""

from .metrics import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    render_prometheus,
)
from .profiling import (
    CountingBackend,
    instrument_backend,
    maybe_instrument_backend,
    obs_enabled,
    set_obs_enabled,
)
from .trace import (
    TraceContext,
    TraceRecorder,
    current_trace,
    get_recorder,
    mint_span_id,
    mint_trace_id,
    record_span,
    span,
    use_trace,
)

__all__ = [
    "Counter",
    "CountingBackend",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "TraceContext",
    "TraceRecorder",
    "current_trace",
    "get_recorder",
    "global_registry",
    "instrument_backend",
    "maybe_instrument_backend",
    "mint_span_id",
    "mint_trace_id",
    "obs_enabled",
    "record_span",
    "render_prometheus",
    "set_obs_enabled",
    "span",
    "use_trace",
]
