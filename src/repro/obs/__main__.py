"""``python -m repro.obs report`` — text flame summary over trace JSONL.

Reads span records (one JSON object per line, the ``GET /v1/traces``
format) from a file, an HTTP(S) URL, or stdin (``-``), groups them by
trace id, and prints:

* per trace: an indentation tree of spans (parent → children, ordered
  by start time) with durations in milliseconds and key attributes;
* an aggregate table: per span name, count / total / mean / max.

Run::

    python -m repro.obs report traces.jsonl
    python -m repro.obs report http://127.0.0.1:8080/v1/traces
    curl -s :8080/v1/traces | python -m repro.obs report -
"""

from __future__ import annotations

import argparse
import json
import sys
import urllib.request


def load_spans(source: str) -> list[dict]:
    """Span records from a path, URL, or ``-`` (stdin)."""
    if source == "-":
        text = sys.stdin.read()
    elif source.startswith(("http://", "https://")):
        with urllib.request.urlopen(source, timeout=30.0) as response:
            text = response.read().decode("utf-8")
    else:
        with open(source, "r", encoding="utf-8") as handle:
            text = handle.read()
    spans = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise SystemExit(f"line {line_number} is not JSON: {error}")
        if not isinstance(record, dict) or "trace" not in record:
            raise SystemExit(f"line {line_number} is not a span record")
        spans.append(record)
    return spans


def _tree_lines(spans: list[dict]) -> list[str]:
    """One trace's spans as an indentation tree ordered by start time."""
    by_parent: dict[str | None, list[dict]] = {}
    span_ids = {record.get("span") for record in spans}
    for record in spans:
        parent = record.get("parent")
        # A parent outside the buffer (evicted or recorded elsewhere)
        # makes this span a root for display purposes.
        if parent not in span_ids:
            parent = None
        by_parent.setdefault(parent, []).append(record)
    for children in by_parent.values():
        children.sort(key=lambda record: record.get("start", 0.0))
    lines: list[str] = []

    def walk(parent: str | None, depth: int) -> None:
        for record in by_parent.get(parent, ()):
            duration_ms = 1e3 * float(record.get("dur", 0.0))
            attrs = record.get("attrs") or {}
            detail = " ".join(f"{key}={value}" for key, value in attrs.items())
            lines.append(
                f"  {'  ' * depth}{record.get('name', '?'):<28s}"
                f"{duration_ms:10.3f} ms" + (f"   {detail}" if detail else "")
            )
            walk(record.get("span"), depth + 1)

    walk(None, 0)
    return lines


def report(spans: list[dict], *, max_traces: int = 20,
           stream=None) -> None:
    """Print the flame summary for ``spans``."""
    stream = stream if stream is not None else sys.stdout
    traces: dict[str, list[dict]] = {}
    for record in spans:
        traces.setdefault(record["trace"], []).append(record)
    print(f"{len(spans)} span(s) across {len(traces)} trace(s)", file=stream)
    for index, (trace_id, members) in enumerate(traces.items()):
        if index >= max_traces:
            print(f"... {len(traces) - max_traces} more trace(s) omitted "
                  f"(--max-traces)", file=stream)
            break
        total_ms = 1e3 * sum(
            float(r.get("dur", 0.0)) for r in members
            if r.get("parent") is None
        ) or 1e3 * max((float(r.get("dur", 0.0)) for r in members), default=0.0)
        print(f"\ntrace {trace_id}  ({len(members)} span(s), "
              f"root {total_ms:.3f} ms)", file=stream)
        for line in _tree_lines(members):
            print(line, file=stream)
    # Aggregate per span name.
    by_name: dict[str, list[float]] = {}
    for record in spans:
        by_name.setdefault(record.get("name", "?"), []).append(
            float(record.get("dur", 0.0))
        )
    if by_name:
        print("\nby span name:", file=stream)
        print(f"  {'name':<28s}{'count':>7s}{'total ms':>12s}"
              f"{'mean ms':>10s}{'max ms':>10s}", file=stream)
        for name in sorted(by_name, key=lambda n: -sum(by_name[n])):
            durations = by_name[name]
            total = sum(durations)
            print(
                f"  {name:<28s}{len(durations):>7d}{1e3 * total:>12.3f}"
                f"{1e3 * total / len(durations):>10.3f}"
                f"{1e3 * max(durations):>10.3f}",
                file=stream,
            )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observability utilities (trace flame summaries).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    report_parser = sub.add_parser(
        "report", help="text flame summary over trace JSONL"
    )
    report_parser.add_argument(
        "source",
        help="JSONL path, /v1/traces URL, or '-' for stdin",
    )
    report_parser.add_argument(
        "--trace", default=None, help="only this trace id"
    )
    report_parser.add_argument(
        "--max-traces", type=int, default=20,
        help="trace trees printed before truncating (default 20)",
    )
    args = parser.parse_args(argv)
    spans = load_spans(args.source)
    if args.trace is not None:
        spans = [record for record in spans if record["trace"] == args.trace]
    report(spans, max_traces=args.max_traces)
    return 0


if __name__ == "__main__":
    sys.exit(main())
