"""Span-based request tracing with a ring-buffer recorder.

One traced request produces a **trace**: a set of spans sharing a trace
id, each span naming one stage (``client.request`` → ``server.request``
→ ``scheduler.queue_wait`` / ``scheduler.batch_dispatch`` →
``service.cache_lookup`` / ``service.predict`` → ``store.get`` /
``store.put``) with monotonic start/duration and free-form attributes.
The trace id is minted client-side (:func:`mint_trace_id`), carried in
the wire codec's control header, and threaded through the scheduler on
each request; deep layers (the artifact store) pick the ambient context
up from a thread-local instead of growing ``trace`` parameters
(:func:`use_trace` / :func:`current_trace`).

Spans land in a process-wide :class:`TraceRecorder` — a bounded deque,
so a long-lived server keeps the most recent ``maxlen`` spans and
nothing grows without bound.  The recorder starts **disabled** unless
``REPRO_OBS=1`` (see :func:`repro.obs.profiling.obs_enabled`); while
disabled, :meth:`TraceRecorder.record` is a no-op and span helpers
short-circuit, so untraced serving pays one predicate per request.

Export: ``GET /v1/traces`` streams the buffer as JSONL (one span per
line); ``python -m repro.obs report`` renders a text flame summary.
Span records are plain dicts::

    {"trace": "9f2c...", "span": "51ab...", "parent": "de01..." | None,
     "name": "service.predict", "start": <monotonic>, "dur": <seconds>,
     "wall": <time.time() at record>, "attrs": {...}}

Tracing observes timings and counts only — it never touches model
bytes, so the serving stack's bitwise-parity contracts hold with
tracing on or off.
"""

from __future__ import annotations

import contextlib
import json
import os
import threading
import time
from collections import deque
from typing import Iterator

__all__ = [
    "TraceContext",
    "TraceRecorder",
    "current_trace",
    "get_recorder",
    "mint_span_id",
    "mint_trace_id",
    "record_span",
    "span",
    "use_trace",
]


def mint_trace_id() -> str:
    """A fresh 16-hex-char trace id (64 random bits)."""
    return os.urandom(8).hex()


def mint_span_id() -> str:
    """A fresh 8-hex-char span id (32 random bits)."""
    return os.urandom(4).hex()


class TraceContext:
    """Position inside a trace: the trace id plus the enclosing span id.

    Child spans created under this context use ``span_id`` as their
    parent.  Contexts are cheap, immutable value objects.
    """

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str | None = None) -> None:
        self.trace_id = str(trace_id)
        self.span_id = str(span_id) if span_id is not None else None

    def child(self, span_id: str) -> "TraceContext":
        return TraceContext(self.trace_id, span_id)

    def __repr__(self) -> str:
        return f"TraceContext(trace_id={self.trace_id!r}, span_id={self.span_id!r})"


class TraceRecorder:
    """Bounded, thread-safe span sink.

    ``maxlen`` bounds retained spans (oldest dropped first);
    ``dropped`` counts evictions so an exporter can tell a quiet system
    from an overflowing one.  ``enabled`` gates :meth:`record` — a
    disabled recorder is free.
    """

    def __init__(self, maxlen: int = 20_000, enabled: bool = False) -> None:
        if maxlen < 1:
            raise ValueError(f"maxlen must be >= 1, got {maxlen}")
        self.maxlen = maxlen
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._spans: deque[dict] = deque(maxlen=maxlen)
        self.dropped = 0
        self.recorded = 0

    def enable(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)

    def record(self, span_record: dict) -> None:
        if not self.enabled:
            return
        with self._lock:
            if len(self._spans) == self.maxlen:
                self.dropped += 1
            self._spans.append(span_record)
            self.recorded += 1

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped = 0
            self.recorded = 0

    def spans(self, trace_id: str | None = None) -> list[dict]:
        """Retained spans, optionally filtered to one trace."""
        with self._lock:
            snapshot = list(self._spans)
        if trace_id is None:
            return snapshot
        return [s for s in snapshot if s["trace"] == trace_id]

    def traces(self) -> dict[str, list[dict]]:
        """Retained spans grouped by trace id (insertion order kept)."""
        grouped: dict[str, list[dict]] = {}
        for record in self.spans():
            grouped.setdefault(record["trace"], []).append(record)
        return grouped

    def to_jsonl(self, trace_id: str | None = None) -> str:
        """The buffer as JSONL — the ``GET /v1/traces`` body."""
        return "".join(
            json.dumps(record, separators=(",", ":")) + "\n"
            for record in self.spans(trace_id)
        )

    @property
    def stats(self) -> dict:
        with self._lock:
            return {
                "enabled": self.enabled,
                "retained": len(self._spans),
                "recorded": self.recorded,
                "dropped": self.dropped,
                "maxlen": self.maxlen,
            }


# ----------------------------------------------------------------------
# Process-wide recorder + ambient (thread-local) trace context
# ----------------------------------------------------------------------
_RECORDER: TraceRecorder | None = None
_RECORDER_LOCK = threading.Lock()
_TLS = threading.local()


def get_recorder() -> TraceRecorder:
    """The process-wide recorder (created on first use).

    Starts enabled iff ``REPRO_OBS`` is truthy at creation; flip at any
    time with :meth:`TraceRecorder.enable`.
    """
    global _RECORDER
    recorder = _RECORDER
    if recorder is None:
        with _RECORDER_LOCK:
            if _RECORDER is None:
                from .profiling import obs_enabled  # local: avoid cycle at import

                _RECORDER = TraceRecorder(enabled=obs_enabled())
            recorder = _RECORDER
    return recorder


def current_trace() -> TraceContext | None:
    """The ambient trace context on this thread, if any."""
    return getattr(_TLS, "ctx", None)


@contextlib.contextmanager
def use_trace(ctx: TraceContext | None) -> Iterator[TraceContext | None]:
    """Scope ``ctx`` as this thread's ambient trace context.

    Deep layers (the store) record spans against whatever context is
    ambient, so callers that batch work for several traces should scope
    the one they attribute shared work to.  ``None`` is a no-op scope.
    """
    previous = getattr(_TLS, "ctx", None)
    _TLS.ctx = ctx
    try:
        yield ctx
    finally:
        _TLS.ctx = previous


def record_span(
    name: str,
    ctx: TraceContext,
    start_monotonic: float,
    end_monotonic: float,
    recorder: TraceRecorder | None = None,
    **attrs,
) -> TraceContext:
    """Record one completed span under ``ctx``; returns the span's own context.

    The low-level entry point for call sites that measured their own
    interval (the scheduler records queue-wait from a timestamp taken
    on the submitting thread).  The returned context can parent
    children recorded afterwards.
    """
    recorder = recorder if recorder is not None else get_recorder()
    span_id = mint_span_id()
    recorder.record({
        "trace": ctx.trace_id,
        "span": span_id,
        "parent": ctx.span_id,
        "name": name,
        "start": start_monotonic,
        "dur": max(0.0, end_monotonic - start_monotonic),
        "wall": time.time(),
        "attrs": attrs,
    })
    return ctx.child(span_id)


@contextlib.contextmanager
def span(
    name: str,
    ctx: TraceContext | None = None,
    recorder: TraceRecorder | None = None,
    **attrs,
) -> Iterator[TraceContext | None]:
    """Time a block as one span; nests via the ambient context.

    With no explicit ``ctx`` the ambient thread-local context is used;
    if there is none (or the recorder is disabled) the block runs
    untraced at the cost of two predicate checks.  Inside the block the
    ambient context points at the new span, so nested ``span()`` calls
    and store lookups parent correctly.
    """
    recorder = recorder if recorder is not None else get_recorder()
    if ctx is None:
        ctx = current_trace()
    if ctx is None or not recorder.enabled:
        yield None
        return
    span_id = mint_span_id()
    child = ctx.child(span_id)
    start = time.monotonic()
    error: str | None = None
    previous = getattr(_TLS, "ctx", None)
    _TLS.ctx = child
    try:
        yield child
    except BaseException as exc:
        error = f"{type(exc).__name__}: {exc}"
        raise
    finally:
        _TLS.ctx = previous
        end = time.monotonic()
        if error is not None:
            attrs = {**attrs, "error": error}
        recorder.record({
            "trace": ctx.trace_id,
            "span": span_id,
            "parent": ctx.span_id,
            "name": name,
            "start": start,
            "dur": end - start,
            "wall": time.time(),
            "attrs": attrs,
        })
