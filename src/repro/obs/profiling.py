"""Opt-in profiling hooks: the ``REPRO_OBS`` switch and backend op counting.

Profiling is **off by default** and costs nothing until enabled:

* ``REPRO_OBS=1`` in the environment (read once, cached) or an explicit
  :func:`set_obs_enabled` call flips the process into observability
  mode: the trace recorder starts enabled, the :class:`~repro.engine
  .trainer.Trainer` collects per-epoch/per-phase timings, and array
  backends are wrapped in an op-counting proxy.
* :func:`instrument_backend` wraps an
  :class:`~repro.backend.ArrayBackend` so every primitive call
  increments ``repro_backend_ops_total{backend=...,op=...}`` in the
  global registry.  The proxy forwards attributes verbatim and caches
  one counting wrapper per method, so the per-op overhead is one
  counter increment; results pass through untouched (op counting can
  never change a computed byte).

The switch is deliberately coarse — one env var, not per-subsystem
flags — because the acceptance contract is a single number: full
observability on vs off must cost <= 5% serving throughput
(``benchmarks/bench_obs.py`` gates it).
"""

from __future__ import annotations

import os
import threading
from typing import Callable

from .metrics import global_registry

__all__ = [
    "CountingBackend",
    "instrument_backend",
    "maybe_instrument_backend",
    "obs_enabled",
    "set_obs_enabled",
]

ENV_VAR = "REPRO_OBS"
_TRUTHY = ("1", "true", "yes", "on")

_enabled: bool | None = None
_enabled_lock = threading.Lock()


def obs_enabled() -> bool:
    """Whether observability mode is on (env read once, override wins)."""
    global _enabled
    if _enabled is None:
        with _enabled_lock:
            if _enabled is None:
                _enabled = os.environ.get(ENV_VAR, "").strip().lower() in _TRUTHY
    return _enabled


def set_obs_enabled(enabled: bool | None) -> None:
    """Force observability mode on/off (``None`` re-reads the env var).

    Also flips the process trace recorder so one call switches the
    whole observability surface consistently (tests and the overhead
    benchmark toggle through here).
    """
    global _enabled
    with _enabled_lock:
        _enabled = None if enabled is None else bool(enabled)
    from .trace import get_recorder  # local: avoid cycle at import

    get_recorder().enable(obs_enabled())


class CountingBackend:
    """Attribute-forwarding proxy that counts backend op calls.

    Wraps every callable attribute on first access (cached); calls
    increment one :class:`~repro.obs.metrics.Counter` child and forward
    unchanged.  ``configured()`` results are re-wrapped so device/dtype
    variants stay counted.  Non-callable attributes (``name``,
    ``device``, ``dtype``) pass straight through.
    """

    def __init__(self, backend) -> None:
        # Direct __dict__ writes: __setattr__ is not overridden, but
        # keeping the proxy's own state out of __getattr__'s way.
        self._obs_backend = backend
        self._obs_wrappers: dict[str, Callable] = {}
        self._obs_counter = global_registry().counter(
            "repro_backend_ops_total",
            "Array-backend primitive calls (REPRO_OBS=1 op profiling)",
            ("backend", "op"),
        )

    @property
    def __wrapped__(self):
        return self._obs_backend

    def __getattr__(self, name: str):
        value = getattr(self._obs_backend, name)
        if not callable(value):
            return value
        wrapper = self._obs_wrappers.get(name)
        if wrapper is None:
            child = self._obs_counter.labels(
                backend=getattr(self._obs_backend, "name", "?"), op=name
            )
            if name == "configured":
                def wrapper(*args, _fn=value, _child=child, **kwargs):
                    _child.inc()
                    return instrument_backend(_fn(*args, **kwargs))
            else:
                def wrapper(*args, _fn=value, _child=child, **kwargs):
                    _child.inc()
                    return _fn(*args, **kwargs)
            self._obs_wrappers[name] = wrapper
        return wrapper

    def __repr__(self) -> str:
        return f"CountingBackend({self._obs_backend!r})"


def instrument_backend(backend):
    """Wrap ``backend`` in a :class:`CountingBackend` (idempotent)."""
    if isinstance(backend, CountingBackend):
        return backend
    return CountingBackend(backend)


def maybe_instrument_backend(backend):
    """Wrap only when observability mode is on (the registry hook)."""
    if obs_enabled():
        return instrument_backend(backend)
    return backend
