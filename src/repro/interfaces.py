"""Shared forecaster interface.

All models (STSM and the adapted baselines) implement :class:`Forecaster`:
they are *fitted* on a dataset + spatial split (the observed region) and
then asked to *predict* the unobserved locations' future windows at given
window-start time indices.  The evaluator only relies on this protocol.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from .data.dataset import SpatioTemporalDataset
from .data.splits import SpaceSplit
from .data.windows import WindowSpec

__all__ = ["Forecaster", "FitReport"]


@dataclass
class FitReport:
    """Book-keeping returned by :meth:`Forecaster.fit`.

    Attributes
    ----------
    train_seconds:
        Wall-clock training time (Table 5's "Train" column).
    epochs:
        Number of completed epochs.
    history:
        Per-epoch loss values (model specific).
    """

    train_seconds: float = 0.0
    epochs: int = 0
    history: list[float] = field(default_factory=list)
    extra: dict = field(default_factory=dict)


class Forecaster(abc.ABC):
    """Abstract base for models that forecast an unobserved region.

    Lifecycle: construct with hyper-parameters, call :meth:`fit` once with
    the dataset and split, then :meth:`predict` any number of times.
    """

    #: Human-readable model name used in result tables.
    name: str = "forecaster"

    #: Whether ``predict`` gives each window the same answer regardless
    #: of which other windows share the batch.  True for deterministic
    #: per-window models; GE-GAN sets False (its noise generator reseeds
    #: per call, coupling outputs to batch composition).  The serving
    #: layer batches only stateless models and falls back to per-window
    #: calls otherwise.
    stateless_predict: bool = True

    #: Whether concurrent ``predict`` calls from multiple threads are
    #: safe.  False by default: the numpy substrate itself is reentrant,
    #: but backends may keep memoised scratch state (e.g. the fused
    #: backend's einsum-path cache), so the serving layer serialises all
    #: ``predict`` traffic for a model through one scheduler worker
    #: thread, and the load generator's unbatched baseline wraps direct
    #: calls in a lock unless a model opts in.
    thread_safe_predict: bool = False

    @abc.abstractmethod
    def fit(
        self,
        dataset: SpatioTemporalDataset,
        split: SpaceSplit,
        spec: WindowSpec,
        train_steps: np.ndarray,
    ) -> FitReport:
        """Train on the observed region over the training time steps.

        Parameters
        ----------
        dataset:
            Full dataset; implementations must only read values at
            ``split.observed`` locations (the unobserved region's data
            exists in the container but is off-limits during fitting).
        split:
            The spatial partition (train/validation observed, test
            unobserved).
        spec:
            Input/horizon window lengths.
        train_steps:
            Time-step indices available for training (first 70%).
        """

    @abc.abstractmethod
    def predict(self, window_starts: np.ndarray) -> np.ndarray:
        """Forecast the unobserved locations for each window start.

        Parameters
        ----------
        window_starts:
            Global time indices ``t0``; the input window is
            ``[t0, t0 + T)`` and predictions cover ``[t0 + T, t0 + T + T')``.

        Returns
        -------
        ``(len(window_starts), T', N_u)`` predictions for the unobserved
        locations, in the order of ``split.unobserved``.
        """
