"""Uncertainty quantification on top of STSM (extension).

The paper forecasts point values; its related work cites DeepSTUQ
[Qian et al. 2023] as the uncertainty-aware contrast.  Forecasting a
region *with no sensors at all* is precisely where calibrated uncertainty
matters most — a deployment decision ("do we need sensors here?") depends
on how wide the model's error bars are, not just its point estimate.

Two standard predictive-distribution constructions are provided:

* :class:`MCDropoutForecaster` — Monte-Carlo dropout [Gal & Ghahramani
  2016]: one trained STSM network, sampled S times with dropout active at
  prediction time.  Cheap (one training run) but only captures the
  network's epistemic noise around its learned function.
* :class:`DeepEnsembleForecaster` — a deep ensemble over training seeds:
  k independently trained members whose predictions form the sample set.
  More expensive, typically better calibrated; works with *any*
  :class:`~repro.interfaces.Forecaster` factory, not just STSM.

Both expose ``predict`` (the ensemble mean — they remain drop-in point
forecasters), ``predict_samples`` and ``predict_interval``; the intervals
are scored with :mod:`repro.evaluation.intervals`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..evaluation.intervals import empirical_interval
from ..interfaces import FitReport, Forecaster
from .model import STSMForecaster

__all__ = [
    "PredictionInterval",
    "MCDropoutForecaster",
    "DeepEnsembleForecaster",
]


@dataclass(frozen=True)
class PredictionInterval:
    """A central prediction interval with its point forecast.

    All arrays are ``(num_windows, horizon, num_unobserved)``.
    """

    mean: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    coverage_nominal: float

    @property
    def width(self) -> np.ndarray:
        return self.upper - self.lower


class MCDropoutForecaster(Forecaster):
    """Monte-Carlo dropout sampling around a single STSM model.

    Parameters
    ----------
    base:
        An (unfitted) :class:`STSMForecaster`; its config must have a
        non-zero dropout rate, otherwise all samples coincide and the
        intervals collapse (detected and rejected at fit time).
    num_samples:
        Stochastic forward passes per prediction.
    """

    name = "STSM-MCDropout"

    def __init__(self, base: STSMForecaster, num_samples: int = 20) -> None:
        if num_samples < 2:
            raise ValueError(f"num_samples must be >= 2, got {num_samples}")
        self.base = base
        self.num_samples = num_samples
        self._fitted = False

    def fit(self, dataset, split, spec, train_steps) -> FitReport:
        if getattr(self.base.config, "dropout", 0.0) <= 0.0:
            raise ValueError(
                "MC dropout needs config.dropout > 0; with rate 0 every "
                "stochastic pass is identical and intervals are degenerate"
            )
        report = self.base.fit(dataset, split, spec, train_steps)
        self._fitted = True
        return report

    def predict_samples(self, window_starts: np.ndarray) -> np.ndarray:
        """``(S, num_windows, horizon, N_u)`` stochastic predictions."""
        if not self._fitted:
            raise RuntimeError("predict_samples() called before fit()")
        samples = [
            self.base.predict(window_starts, stochastic=True)
            for _ in range(self.num_samples)
        ]
        return np.stack(samples, axis=0)

    def predict(self, window_starts: np.ndarray) -> np.ndarray:
        """MC mean — a point forecast usable anywhere a Forecaster is."""
        return self.predict_samples(window_starts).mean(axis=0)

    def predict_interval(
        self, window_starts: np.ndarray, coverage: float = 0.9
    ) -> PredictionInterval:
        samples = self.predict_samples(window_starts)
        lower, upper = empirical_interval(samples, coverage)
        return PredictionInterval(
            mean=samples.mean(axis=0), lower=lower, upper=upper,
            coverage_nominal=coverage,
        )


class DeepEnsembleForecaster(Forecaster):
    """Seed ensemble over any forecaster factory.

    Parameters
    ----------
    member_factory:
        ``seed -> Forecaster``; called with ``num_members`` distinct seeds.
        For STSM, differing seeds change both the weight initialisation and
        the per-epoch masking draws, giving genuinely diverse members.
    num_members:
        Ensemble size (k); 3–5 is the usual cost/quality sweet spot.
    seeds:
        Explicit member seeds; defaults to ``0..k-1``.
    """

    name = "DeepEnsemble"

    def __init__(
        self,
        member_factory: Callable[[int], Forecaster],
        num_members: int = 5,
        seeds: Sequence[int] | None = None,
    ) -> None:
        if num_members < 2:
            raise ValueError(f"num_members must be >= 2, got {num_members}")
        self.member_factory = member_factory
        self.seeds = list(seeds) if seeds is not None else list(range(num_members))
        if len(self.seeds) != num_members:
            raise ValueError(
                f"got {len(self.seeds)} seeds for {num_members} members"
            )
        self.members: list[Forecaster] = []
        self._fitted = False

    def fit(self, dataset, split, spec, train_steps) -> FitReport:
        began = time.perf_counter()
        self.members = [self.member_factory(seed) for seed in self.seeds]
        reports = [
            member.fit(dataset, split, spec, train_steps) for member in self.members
        ]
        self._fitted = True
        return FitReport(
            train_seconds=time.perf_counter() - began,
            epochs=max(report.epochs for report in reports),
            extra={"member_train_seconds": [r.train_seconds for r in reports]},
        )

    def predict_samples(self, window_starts: np.ndarray) -> np.ndarray:
        """``(k, num_windows, horizon, N_u)`` member predictions."""
        if not self._fitted:
            raise RuntimeError("predict_samples() called before fit()")
        return np.stack(
            [member.predict(window_starts) for member in self.members], axis=0
        )

    def predict(self, window_starts: np.ndarray) -> np.ndarray:
        """Ensemble-mean point forecast."""
        return self.predict_samples(window_starts).mean(axis=0)

    def predict_interval(
        self, window_starts: np.ndarray, coverage: float = 0.9
    ) -> PredictionInterval:
        samples = self.predict_samples(window_starts)
        lower, upper = empirical_interval(samples, coverage)
        return PredictionInterval(
            mean=samples.mean(axis=0), lower=lower, upper=upper,
            coverage_nominal=coverage,
        )
