"""The STSM spatial-temporal network (paper §3.4 and Fig. 3).

Pipeline per forward pass:

1. **Input fusion** (Eq. 4): observations and time-of-day ids are each
   projected to the hidden width and multiplied elementwise.
2. **L ST blocks** (Eqs. 5-12): each block runs a temporal module (dilated
   TCN, or a transformer for STSM-trans) in parallel with the dual GCN
   (spatial + DTW adjacency, gated, depth-max-pooled) and sums the two
   streams (Eq. 12).  STSM-trans fuses the streams with a learned gate
   instead (GMAN-style, §5.2.5).
3. **Output head** (Eq. 13): two linear layers map the hidden features to
   the forecast; a linear time-projection maps T input steps to T' output
   steps when they differ.
4. **Contrastive head** (Eq. 16): the last time step's node features are
   summed over nodes and passed through a two-layer MLP to produce the
   graph representation ``Z`` used by the NT-Xent loss.

The network is inductive: adjacency matrices are inputs, so the same
weights run on the observed sub-graph (training) and the full graph
(testing).
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from ..backend import get_backend
from ..nn import Linear, Module, ModuleList, init
from .config import STSMConfig
from .gcn import DualGraphAttention, DualGraphConv
from .tcn import DilatedTCN, RecurrentTemporal, TransformerTemporal

__all__ = ["STBlock", "STSMNetwork"]


class STBlock(Module):
    """One spatial-temporal block: temporal stream + dual GCN stream."""

    def __init__(self, config: STSMConfig, rng: np.random.Generator) -> None:
        super().__init__()
        dim = config.hidden_dim
        if config.temporal_module == "transformer":
            self.temporal = TransformerTemporal(
                dim,
                num_heads=config.attention_heads,
                dropout=config.dropout,
                rng=rng,
            )
            self.gated_fusion = True
        elif config.temporal_module == "gru":
            self.temporal = RecurrentTemporal(dim, rng=rng)
            self.gated_fusion = False
        else:
            self.temporal = DilatedTCN(
                dim,
                levels=config.tcn_levels,
                kernel_size=config.tcn_kernel,
                dropout=config.dropout,
                rng=rng,
            )
            self.gated_fusion = False
        if config.spatial_module == "gat":
            self.graph = DualGraphAttention(dim, num_heads=config.gat_heads, rng=rng)
        else:
            self.graph = DualGraphConv(dim, config.gcn_depth, rng=rng)
        if self.gated_fusion:
            # GMAN-style gate: z = sigmoid(W_t h_t + W_g h_g + b),
            # out = z * h_t + (1 - z) * h_g.
            self.gate_temporal = Linear(dim, dim, rng=rng)
            self.gate_graph = Linear(dim, dim, rng=rng)

    def forward(self, features: Tensor, a_spatial: Tensor, a_dtw: Tensor) -> Tensor:
        temporal = self.temporal(features)
        graph = self.graph(a_spatial, a_dtw, features)
        if self.gated_fusion:
            gate = (self.gate_temporal(temporal) + self.gate_graph(graph)).sigmoid()
            one = Tensor(get_backend().ones_like(gate.data))
            return gate * temporal + (one - gate) * graph
        return temporal + graph  # Eq. 12


class STSMNetwork(Module):
    """The trainable network behind every STSM variant."""

    def __init__(
        self,
        config: STSMConfig,
        horizon: int | None = None,
        input_length: int | None = None,
    ) -> None:
        super().__init__()
        config.validate()
        self.config = config
        self.horizon = horizon
        rng = init.default_rng(config.seed)
        dim = config.hidden_dim
        self.value_proj = Linear(1, dim, rng=rng)  # phi_1 of Eq. 4
        self.time_proj = Linear(1, dim, rng=rng)  # phi_2 of Eq. 4
        # Start the multiplicative time gate at identity (bias 1) so the
        # value signal is not attenuated before the gate has learned.
        self.time_proj.bias.data[...] = 1.0
        self.blocks = ModuleList([STBlock(config, rng) for _ in range(config.num_blocks)])
        self.head_hidden = Linear(dim, config.head_hidden, rng=rng)  # phi_3 of Eq. 13
        self.head_out = Linear(config.head_hidden, 1, rng=rng)  # phi_4 of Eq. 13
        self.contrast_hidden = Linear(dim, config.contrastive_dim, rng=rng)  # phi of Eq. 16
        self.contrast_out = Linear(config.contrastive_dim, config.contrastive_dim, rng=rng)
        # Dense time-mixing head T -> T'; built eagerly (when the window
        # lengths are known) so the optimiser sees its parameters, or
        # lazily on the first forward otherwise.
        self.time_map: Linear | None = None
        if input_length is not None:
            out_steps = horizon if horizon is not None else input_length
            self.time_map = Linear(input_length, out_steps, rng=init.default_rng(config.seed + 1))

    def _fuse_inputs(self, values: Tensor, time_encoding: Tensor) -> Tensor:
        """Eq. 4: H^0 = phi_1(X) ⊗ phi_2(TE)."""
        projected_values = self.value_proj(values)  # (B, T, N, C')
        projected_time = self.time_proj(time_encoding)  # (B, T, C')
        batch, time, dim = projected_time.shape
        broadcast_time = projected_time.reshape(batch, time, 1, dim)
        return projected_values * broadcast_time

    def _project_horizon(self, hidden: Tensor) -> Tensor:
        """Map the T input-aligned steps onto the T' output steps.

        A dense linear map over the time axis lets every horizon step read
        the whole input window.  Without it, output step 1 (the nearest
        future) would only see features aligned with the *oldest* inputs,
        because the TCN/GCN blocks keep the time axis position-aligned.
        """
        horizon = self.horizon if self.horizon is not None else hidden.shape[1]
        if self.time_map is None or self.time_map.in_features != hidden.shape[1]:
            rng = init.default_rng(self.config.seed + 1)
            self.time_map = Linear(hidden.shape[1], horizon, rng=rng)
        # (B, T, N, C) -> (B, N, C, T) -> linear T->T' -> back.
        moved = hidden.transpose(0, 2, 3, 1)
        mapped = self.time_map(moved)
        return mapped.transpose(0, 3, 1, 2)

    def forward(
        self,
        values: Tensor,
        time_encoding: Tensor,
        a_spatial: Tensor,
        a_dtw: Tensor,
    ) -> tuple[Tensor, Tensor]:
        """Run the network.

        Parameters
        ----------
        values:
            ``(batch, T, N, 1)`` (pseudo-)observations, scaled.
        time_encoding:
            ``(batch, T, 1)`` normalised time-of-day ids.
        a_spatial / a_dtw:
            Normalised ``(N, N)`` adjacency tensors.

        Returns
        -------
        predictions:
            ``(batch, T', N, 1)`` forecasts in scaled space.
        graph_repr:
            ``(batch, contrastive_dim)`` graph representations (Eq. 16).
        """
        hidden = self._fuse_inputs(values, time_encoding)
        for block in self.blocks:
            hidden = block(hidden, a_spatial, a_dtw)
        # Contrastive representation from the last time step (Eq. 16).
        last_step = hidden[:, -1, :, :]  # (B, N, C')
        pooled = last_step.sum(axis=1)  # sum over nodes
        graph_repr = self.contrast_out(self.contrast_hidden(pooled).relu())
        # Output head (Eq. 13); final layer linear for z-scored regression.
        projected = self._project_horizon(hidden)
        predictions = self.head_out(self.head_hidden(projected).relu())
        return predictions, graph_repr
