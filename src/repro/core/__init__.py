"""STSM — the paper's primary contribution.

Public surface: :class:`STSMForecaster` (train/predict), :class:`STSMConfig`
(all hyper-parameters), the variant constructors, and the building blocks
(pseudo-observations, masking, GCN/TCN modules) for users who want to
recompose them.
"""

from .config import PAPER_PARAMETERS, STSMConfig, config_for_dataset
from .features import (
    SubgraphSimilarity,
    compute_subgraph_similarity,
    cosine_similarities,
    normalise_feature_columns,
    region_embedding,
    spatial_proximities,
    subgraph_embeddings,
)
from .gcn import GCN, GCNL, DualGraphAttention, DualGraphConv, GCNBranch
from .masking import SelectiveMasker, random_subgraph_mask, selective_masking_probabilities
from .model import STSMForecaster, compute_distance_matrices
from .multiregion import multi_region_similarity, multi_region_split
from .persistence import load_forecaster, save_forecaster
from .network import STBlock, STSMNetwork
from .pseudo import fill_pseudo_observations, idw_weights
from .tcn import DilatedTCN, RecurrentTemporal, TransformerTemporal
from .uncertainty import DeepEnsembleForecaster, MCDropoutForecaster, PredictionInterval
from .variants import (
    STSM_VARIANTS,
    make_stsm,
    make_stsm_gat,
    make_stsm_nc,
    make_stsm_r,
    make_stsm_rd_a,
    make_stsm_rd_m,
    make_stsm_rnc,
    make_stsm_trans,
)

__all__ = [
    "STSMConfig",
    "config_for_dataset",
    "PAPER_PARAMETERS",
    "STSMForecaster",
    "compute_distance_matrices",
    "multi_region_split",
    "multi_region_similarity",
    "save_forecaster",
    "load_forecaster",
    "STSMNetwork",
    "STBlock",
    "GCN",
    "GCNL",
    "GCNBranch",
    "DualGraphConv",
    "DualGraphAttention",
    "DilatedTCN",
    "TransformerTemporal",
    "RecurrentTemporal",
    "fill_pseudo_observations",
    "idw_weights",
    "random_subgraph_mask",
    "selective_masking_probabilities",
    "SelectiveMasker",
    "SubgraphSimilarity",
    "compute_subgraph_similarity",
    "subgraph_embeddings",
    "region_embedding",
    "cosine_similarities",
    "spatial_proximities",
    "normalise_feature_columns",
    "make_stsm",
    "make_stsm_nc",
    "make_stsm_r",
    "make_stsm_rnc",
    "make_stsm_trans",
    "make_stsm_gat",
    "make_stsm_rd_a",
    "make_stsm_rd_m",
    "STSM_VARIANTS",
    "MCDropoutForecaster",
    "DeepEnsembleForecaster",
    "PredictionInterval",
]
