"""Graph convolution modules (paper Eqs. 6-11).

* :class:`GCN` — one graph convolution ``D^-1/2 Ã D^-1/2 Z W`` (Eq. 6).
* :class:`GCNL` — gated pair ``GCN(A, Z) * sigmoid(GCN(A, Z))`` with two
  independent weight matrices (Eq. 7).
* :class:`GCNBranch` — ``k`` stacked GCNL layers whose outputs are
  max-pooled (Eqs. 8-9); the time axis is carried through every layer, so
  the per-time-step concatenation of Eq. 10 is implicit.
* :class:`DualGraphConv` — two branches (spatial adjacency ``A_s`` and
  temporal-similarity adjacency ``A_dtw``) fused with an elementwise max
  (Eq. 11).

The adjacency matrix is a runtime input (normalised ``(N, N)`` numpy
array), which keeps the module inductive: training runs on the observed
sub-graph, testing on the full graph with more nodes.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, maximum
from ..nn import Module, ModuleList, init
from ..nn.gat import GraphAttention
from ..nn.module import Parameter

__all__ = ["GCN", "GCNL", "GCNBranch", "DualGraphConv", "DualGraphAttention"]


class GCN(Module):
    """Single graph convolution: ``A_hat @ Z @ W`` on (..., N, C) inputs."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng if rng is not None else init.default_rng()
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.weight = Parameter(init.xavier_uniform((in_dim, out_dim), rng), name="weight")

    def forward(self, adjacency: Tensor, features: Tensor) -> Tensor:
        # adjacency: (N, N); features: (..., N, C) — numpy matmul
        # broadcasting applies the same adjacency across leading axes.
        return adjacency @ features @ self.weight


class GCNL(Module):
    """Gated GCN layer: ``GCN_a(A, Z) * sigmoid(GCN_b(A, Z))`` (Eq. 7)."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.value_conv = GCN(in_dim, out_dim, rng=rng)
        self.gate_conv = GCN(in_dim, out_dim, rng=rng)

    def forward(self, adjacency: Tensor, features: Tensor) -> Tensor:
        return self.value_conv(adjacency, features) * self.gate_conv(adjacency, features).sigmoid()


class GCNBranch(Module):
    """``k`` stacked GCNL layers max-pooled over depth (Eqs. 8-9)."""

    def __init__(self, dim: int, depth: int, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if depth <= 0:
            raise ValueError("GCN depth must be positive")
        self.depth = depth
        self.layers = ModuleList([GCNL(dim, dim, rng=rng) for _ in range(depth)])

    def forward(self, adjacency: Tensor, features: Tensor) -> Tensor:
        outputs = []
        hidden = features
        for layer in self.layers:
            hidden = layer(adjacency, hidden)
            outputs.append(hidden)
        pooled = outputs[0]
        for candidate in outputs[1:]:
            pooled = maximum(pooled, candidate)
        return pooled


class DualGraphConv(Module):
    """Two GCN branches (A_s, A_dtw) fused by elementwise max (Eq. 11)."""

    def __init__(self, dim: int, depth: int, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.spatial_branch = GCNBranch(dim, depth, rng=rng)
        self.temporal_branch = GCNBranch(dim, depth, rng=rng)

    def forward(self, a_spatial: Tensor, a_dtw: Tensor, features: Tensor) -> Tensor:
        spatial = self.spatial_branch(a_spatial, features)
        temporal = self.temporal_branch(a_dtw, features)
        return maximum(spatial, temporal)


class DualGraphAttention(Module):
    """GAT drop-in for :class:`DualGraphConv` (the STSM-gat variant).

    Same dual-adjacency structure as Eq. 11 — one branch per adjacency,
    fused with an elementwise max — but each branch learns its edge
    weights by attention instead of using the fixed GCN normalisation.
    The adjacency matrices only contribute their sparsity patterns.
    """

    def __init__(
        self, dim: int, num_heads: int = 2, rng: np.random.Generator | None = None
    ) -> None:
        super().__init__()
        self.spatial_branch = GraphAttention(dim, dim, num_heads=num_heads, rng=rng)
        self.temporal_branch = GraphAttention(dim, dim, num_heads=num_heads, rng=rng)

    def forward(self, a_spatial: Tensor, a_dtw: Tensor, features: Tensor) -> Tensor:
        spatial = self.spatial_branch(a_spatial, features)
        temporal = self.temporal_branch(a_dtw, features)
        return maximum(spatial, temporal)
