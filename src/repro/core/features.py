"""Sub-graph embeddings and similarity to the unobserved region (§4.1).

Each location carries the static embedding

    l_i = [l_poi (26) || l_scale (1) || l_road (4)]  in R^31.

A sub-graph's embedding is the mean over its members; the unobserved
region's embedding is the mean over all unobserved locations.  Selective
masking scores each observed location's sub-graph by

    s_sg_i  = cosine(l_SGi, l_u)          (region + road similarity)
    sp_sg_i = 1 / dist(c_i, c_u)          (spatial proximity)

where ``c_u`` is the unobserved region's centroid.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import LocationFeatures
from ..graph.subgraph import all_subgraphs

__all__ = [
    "normalise_feature_columns",
    "subgraph_embeddings",
    "region_embedding",
    "cosine_similarities",
    "spatial_proximities",
    "SubgraphSimilarity",
    "compute_subgraph_similarity",
]


def normalise_feature_columns(embeddings: np.ndarray) -> np.ndarray:
    """Min-max scale each feature column to [0, 1].

    The raw embedding mixes counts (POIs), floors, and speed limits whose
    magnitudes differ by orders of magnitude; column normalisation keeps
    the cosine similarity from being dominated by the largest unit.  (The
    paper does not spell out its normalisation; this is the standard
    choice and is covered by an ablation bench.)
    """
    embeddings = np.asarray(embeddings, dtype=float)
    low = embeddings.min(axis=0, keepdims=True)
    high = embeddings.max(axis=0, keepdims=True)
    span = np.where(high - low > 0, high - low, 1.0)
    return (embeddings - low) / span


def subgraph_embeddings(
    location_embeddings: np.ndarray,
    subgraph_adjacency: np.ndarray,
) -> np.ndarray:
    """Mean member embedding for every location's 1-hop sub-graph.

    ``l_SGi = (1/|V_SGi|) * sum_{j in V_SGi} l_j`` — the sub-graph of
    location ``i`` contains ``i`` and its 1-hop neighbours under ``A_sg``.
    """
    location_embeddings = np.asarray(location_embeddings, dtype=float)
    members = all_subgraphs(subgraph_adjacency)
    out = np.empty_like(location_embeddings)
    for i, member_index in enumerate(members):
        out[i] = location_embeddings[member_index].mean(axis=0)
    return out


def region_embedding(location_embeddings: np.ndarray, index: np.ndarray) -> np.ndarray:
    """Mean embedding of a set of locations (e.g. the unobserved region)."""
    index = np.asarray(index, dtype=int)
    if len(index) == 0:
        raise ValueError("region_embedding requires a non-empty index")
    return np.asarray(location_embeddings, dtype=float)[index].mean(axis=0)


def cosine_similarities(embeddings: np.ndarray, reference: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Cosine similarity of each row against the reference vector."""
    embeddings = np.asarray(embeddings, dtype=float)
    reference = np.asarray(reference, dtype=float)
    norms = np.linalg.norm(embeddings, axis=1) * np.linalg.norm(reference)
    return embeddings @ reference / np.maximum(norms, eps)


def spatial_proximities(coords: np.ndarray, index: np.ndarray, region_index: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """``sp_sg_i = 1 / dist(c_i, c_u)`` with ``c_u`` the region centroid."""
    coords = np.asarray(coords, dtype=float)
    centroid = coords[np.asarray(region_index, dtype=int)].mean(axis=0)
    dist = np.linalg.norm(coords[np.asarray(index, dtype=int)] - centroid, axis=1)
    return 1.0 / np.maximum(dist, eps)


class SubgraphSimilarity:
    """Container for the selective-masking similarity scores.

    Attributes
    ----------
    embedding_similarity:
        ``S_sg`` — cosine similarities of observed sub-graphs to the
        unobserved region (aligned with ``observed_index``).
    spatial_proximity:
        ``SP_sg`` — inverse distances to the unobserved centroid.
    observed_index:
        Global ids the scores refer to.
    """

    def __init__(
        self,
        embedding_similarity: np.ndarray,
        spatial_proximity: np.ndarray,
        observed_index: np.ndarray,
    ) -> None:
        self.embedding_similarity = np.asarray(embedding_similarity, dtype=float)
        self.spatial_proximity = np.asarray(spatial_proximity, dtype=float)
        self.observed_index = np.asarray(observed_index, dtype=int)
        if not (
            len(self.embedding_similarity)
            == len(self.spatial_proximity)
            == len(self.observed_index)
        ):
            raise ValueError("similarity arrays must align with observed_index")


def compute_subgraph_similarity(
    features: LocationFeatures,
    coords: np.ndarray,
    subgraph_adjacency_full: np.ndarray,
    observed_index: np.ndarray,
    unobserved_index: np.ndarray,
) -> SubgraphSimilarity:
    """Score every observed sub-graph against the unobserved region.

    Parameters
    ----------
    features:
        Static location features for the *full* graph.
    coords:
        ``(N, 2)`` coordinates for the full graph.
    subgraph_adjacency_full:
        ``A_sg`` on the full graph (sub-graph membership uses observed
        neighbours only — rows/columns of unobserved locations are handled
        by restriction below).
    observed_index / unobserved_index:
        Global ids of the two regions.
    """
    observed_index = np.asarray(observed_index, dtype=int)
    unobserved_index = np.asarray(unobserved_index, dtype=int)
    embeddings = normalise_feature_columns(features.embedding_matrix())
    # Restrict A_sg to observed rows/columns so sub-graphs only contain
    # observed members (unobserved locations cannot be masked).
    sub_adj = subgraph_adjacency_full[np.ix_(observed_index, observed_index)]
    observed_embeddings = embeddings[observed_index]
    sg_embed = subgraph_embeddings(observed_embeddings, sub_adj)
    l_u = region_embedding(embeddings, unobserved_index)
    similarity = cosine_similarities(sg_embed, l_u)
    proximity = spatial_proximities(coords, observed_index, unobserved_index)
    return SubgraphSimilarity(similarity, proximity, observed_index)
