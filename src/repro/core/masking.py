"""Sub-graph masking strategies (paper §3.3 and §4.1).

Both strategies mask whole 1-hop sub-graphs (a seed location plus its
neighbours under ``A_sg``) to imitate a *contiguous* unobserved region:

* :func:`random_subgraph_mask` — the base model's strategy: repeatedly pick
  a random seed and mask its sub-graph until the masking ratio is reached.
* :class:`SelectiveMasker` — the full model's strategy: masking
  probabilities proportional to the similarity between each sub-graph and
  the unobserved region (Eq. 15), restricted to the top-K most similar
  sub-graphs, with seeds drawn from Bernoulli(p_i).
"""

from __future__ import annotations

import numpy as np

from ..graph.subgraph import all_subgraphs, mean_subgraph_size
from .features import SubgraphSimilarity

__all__ = ["random_subgraph_mask", "selective_masking_probabilities", "SelectiveMasker"]

#: At least this many observed locations must stay unmasked: the IDW fill
#: and the DTW adjacency need real sources to work from.
MIN_UNMASKED = 2


def _cap_masked(masked: set, num_locations: int, rng: np.random.Generator) -> np.ndarray:
    """Trim a mask so at least ``MIN_UNMASKED`` locations stay observed.

    Dense sub-graph geometries (e.g. tightly clustered stations) can make a
    single 1-hop sub-graph cover every observed location; masking them all
    would leave the pseudo-observation fill without sources.
    """
    ceiling = max(1, num_locations - MIN_UNMASKED)
    if len(masked) <= ceiling:
        return np.array(sorted(masked), dtype=int)
    kept = rng.choice(sorted(masked), size=ceiling, replace=False)
    return np.sort(kept).astype(int)


def random_subgraph_mask(
    subgraph_adjacency: np.ndarray,
    mask_ratio: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Random sub-graph masking over a graph of observed locations.

    Iteratively draws a random seed location and masks its 1-hop sub-graph
    until at least ``round(N_o * mask_ratio)`` locations are masked.
    Returns the sorted array of masked (local) indices.
    """
    if not 0.0 < mask_ratio < 1.0:
        raise ValueError(f"mask_ratio must be in (0, 1), got {mask_ratio}")
    n = len(subgraph_adjacency)
    target = max(1, int(round(n * mask_ratio)))
    members = all_subgraphs(subgraph_adjacency)
    masked: set[int] = set()
    candidates = rng.permutation(n)
    for seed in candidates:
        if len(masked) >= target:
            break
        masked.update(int(v) for v in members[int(seed)])
    return _cap_masked(masked, n, rng)


def selective_masking_probabilities(
    similarity: SubgraphSimilarity,
    mask_ratio: float,
    subgraph_adjacency: np.ndarray,
    top_k: int,
) -> np.ndarray:
    """Per-location masking probabilities (paper Eq. 15 with top-K filter).

    Parameters
    ----------
    similarity:
        Sub-graph similarity scores against the unobserved region.
    mask_ratio:
        δ_m — target fraction of observed locations to mask.
    subgraph_adjacency:
        ``A_sg`` restricted to observed locations (defines sub-graph sizes;
        δ_s is their mean, and δ_ms = δ_m / δ_s).
    top_k:
        K — only the K most (embedding-)similar sub-graphs keep non-zero
        probability; the rest are zeroed, which counteracts probability
        dilution on large graphs (paper §4.1).

    Returns
    -------
    ``(N_o,)`` probabilities, clipped to [0, 1].
    """
    if not 0.0 < mask_ratio < 1.0:
        raise ValueError(f"mask_ratio must be in (0, 1), got {mask_ratio}")
    if top_k <= 0:
        raise ValueError(f"top_k must be positive, got {top_k}")
    n = len(similarity.observed_index)
    delta_s = max(mean_subgraph_size(subgraph_adjacency), 1.0)
    delta_ms = mask_ratio / delta_s

    embedding_sim = similarity.embedding_similarity.copy()
    proximity = similarity.spatial_proximity.copy()
    if top_k < n:
        keep = np.argsort(embedding_sim)[::-1][:top_k]
        mask = np.zeros(n, dtype=bool)
        mask[keep] = True
        embedding_sim[~mask] = 0.0
        proximity[~mask] = 0.0

    # Cosine similarity can be negative; Eq. 15 treats the scores as
    # non-negative weights, so clamp before normalising.
    embedding_sim = np.maximum(embedding_sim, 0.0)

    def _normalised(scores: np.ndarray) -> np.ndarray:
        mean = scores.mean()
        if mean <= 0:
            return np.zeros_like(scores)
        return scores * delta_ms / mean

    probabilities = 0.5 * (_normalised(embedding_sim) + _normalised(proximity))
    return np.clip(probabilities, 0.0, 1.0)


class SelectiveMasker:
    """Draws per-epoch masks using the selective strategy (paper §4.1).

    The probabilities are computed once (static features do not change);
    each call to :meth:`draw` samples seed locations ``ρ_i ~ Bern(p_i)``
    and masks their sub-graphs.  A fallback guarantees at least one
    sub-graph is masked (training needs masked targets), and an optional
    cap trims overshoot so the realised ratio tracks δ_m.
    """

    def __init__(
        self,
        similarity: SubgraphSimilarity,
        subgraph_adjacency: np.ndarray,
        mask_ratio: float,
        top_k: int,
        enforce_ratio_cap: bool = True,
    ) -> None:
        self.subgraph_adjacency = np.asarray(subgraph_adjacency)
        self.mask_ratio = mask_ratio
        self.probabilities = selective_masking_probabilities(
            similarity, mask_ratio, self.subgraph_adjacency, top_k
        )
        self._members = all_subgraphs(self.subgraph_adjacency)
        self.enforce_ratio_cap = enforce_ratio_cap

    def draw(self, rng: np.random.Generator) -> np.ndarray:
        """Sample one mask; returns sorted local indices of masked locations."""
        n = len(self.probabilities)
        target = max(1, int(round(n * self.mask_ratio)))
        seeds = np.flatnonzero(rng.random(n) < self.probabilities)
        if len(seeds) == 0:
            # Fall back to the most similar sub-graph so training always
            # has masked locations to predict.
            seeds = np.array([int(np.argmax(self.probabilities))])
        order = rng.permutation(seeds)
        masked: set[int] = set()
        for seed in order:
            if self.enforce_ratio_cap and len(masked) >= target:
                break
            masked.update(int(v) for v in self._members[int(seed)])
        return _cap_masked(masked, n, rng)
