"""STSM hyper-parameter configuration.

Defaults follow paper §5.1.3 / Table 3: Adam lr 0.01, batch 32, τ = 0.5,
masking ratio σ_m = 0.5, ε_s = 0.05, q_kk = q_ku = 1, with per-dataset
λ / ε_sg / K.  Architecture sizes (hidden width, block counts) are not
printed in the paper; the defaults here were chosen to train stably on the
synthetic substrate and can be overridden per experiment.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

__all__ = ["STSMConfig", "PAPER_PARAMETERS", "config_for_dataset"]

#: Per-dataset parameters from paper Table 3: (λ, ε_sg, r_poi, K).
PAPER_PARAMETERS = {
    "pems-bay": {"contrastive_weight": 0.01, "epsilon_sg": 0.5, "poi_radius": 200.0, "top_k": 35},
    "pems-07": {"contrastive_weight": 1.0, "epsilon_sg": 0.7, "poi_radius": 500.0, "top_k": 35},
    "pems-08": {"contrastive_weight": 0.5, "epsilon_sg": 0.5, "poi_radius": 500.0, "top_k": 35},
    "melbourne": {"contrastive_weight": 0.5, "epsilon_sg": 0.4, "poi_radius": 50.0, "top_k": 45},
    "airq": {"contrastive_weight": 1.0, "epsilon_sg": 0.6, "poi_radius": 500.0, "top_k": 5},
}


@dataclass
class STSMConfig:
    """All STSM knobs in one place.

    Modules can be toggled to express the paper's ablation variants:
    ``selective_masking=False`` → STSM-R family, ``contrastive=False`` →
    STSM-NC family, ``temporal_module="transformer"`` → STSM-trans,
    ``distance_mode`` → the road-distance variants of Table 11.
    """

    # Architecture
    hidden_dim: int = 32
    num_blocks: int = 2
    tcn_levels: int = 2
    tcn_kernel: int = 3
    gcn_depth: int = 2
    head_hidden: int = 32
    contrastive_dim: int = 32
    dropout: float = 0.1
    temporal_module: str = "tcn"  # "tcn" | "transformer" | "gru"
    spatial_module: str = "gcn"  # "gcn" | "gat"
    attention_heads: int = 4
    #: Heads for the GAT spatial module (must divide hidden_dim).
    gat_heads: int = 2

    # Optimisation (paper §5.1.3)
    learning_rate: float = 0.01
    batch_size: int = 32
    epochs: int = 30
    patience: int = 5
    grad_clip: float = 5.0
    window_stride: int = 1
    seed: int = 0
    #: Optional LR schedule applied by the training engine: None/"none"
    #: keeps the paper's constant rate, "step" decays by ``lr_gamma``
    #: every ``lr_step_size`` epochs, "cosine" anneals to 0 over
    #: ``epochs``.
    lr_schedule: str | None = None
    lr_step_size: int = 10
    lr_gamma: float = 0.5

    # Masking (paper §3.3 / §4.1)
    mask_ratio: float = 0.5
    selective_masking: bool = True
    top_k: int = 35
    epsilon_sg: float = 0.5
    #: Number of contiguous unobserved patches the selective-masking
    #: similarity should target (1 = the paper's setting; >1 enables the
    #: multi-region extension of repro.core.multiregion).
    num_unobserved_regions: int = 1

    # Graph construction (paper §3.4.1)
    epsilon_s: float = 0.05
    #: Gaussian kernel bandwidth as a fraction of the distance std.  The
    #: paper leaves sigma unspecified; its Fig. 7 shows sparse adjacency
    #: matrices, which requires a bandwidth well below the distance std.
    sigma_scale: float = 0.35
    q_kk: int = 1
    q_ku: int = 1
    #: Top-k IDW sources per pseudo-observation (None = all observed,
    #: the literal Eq. 3).  At reduced sensor counts a small k keeps the
    #: fill as local as it is at the paper's density.
    pseudo_k: int | None = 3
    dtw_resolution: int = 24
    distance_mode: str = "euclidean"  # "euclidean" | "road_adj_only" | "road_all"

    # Contrastive learning (paper §4.2)
    contrastive: bool = True
    contrastive_weight: float = 0.5
    temperature: float = 0.5

    # Array backend (repro.backend registry): None inherits the active
    # process-wide backend (REPRO_BACKEND env var, default numpy_ref);
    # a name scopes this model's fit/predict to that backend.
    backend: str | None = None

    # Device/dtype overrides for accelerator backends (repro.backend
    # torch): device "cpu"/"cuda[:N]" and dtype "float64" (parity) or
    # "float32" (speed).  None defers to the backend's own defaults
    # (REPRO_TORCH_DEVICE / REPRO_TORCH_DTYPE for torch); numpy-family
    # backends accept only cpu/float64.
    device: str | None = None
    dtype: str | None = None

    # Cross-fit artifact reuse (repro.engine.store): None auto-enables
    # the shared content-addressed store when the process has opted in
    # (REPRO_CACHE_DIR set or open_store() called); True forces the
    # shared store, False forces per-fit cache isolation.  Hits are
    # bit-exact, so fixed-seed metrics are identical either way.
    cache_store: bool | None = None

    def replace(self, **changes) -> "STSMConfig":
        """Return a copy with the given fields changed."""
        return dataclasses.replace(self, **changes)

    def validate(self) -> None:
        """Sanity-check field ranges; raises ``ValueError`` on bad values."""
        if self.temporal_module not in ("tcn", "transformer", "gru"):
            raise ValueError(f"unknown temporal_module {self.temporal_module!r}")
        if self.spatial_module not in ("gcn", "gat"):
            raise ValueError(f"unknown spatial_module {self.spatial_module!r}")
        if self.spatial_module == "gat" and self.hidden_dim % self.gat_heads != 0:
            raise ValueError(
                f"hidden_dim {self.hidden_dim} must divide by gat_heads {self.gat_heads}"
            )
        if self.distance_mode not in ("euclidean", "road_adj_only", "road_all"):
            raise ValueError(f"unknown distance_mode {self.distance_mode!r}")
        if not 0.0 < self.mask_ratio < 1.0:
            raise ValueError("mask_ratio must be in (0, 1)")
        if not 0.0 < self.epsilon_s <= 1.0 or not 0.0 < self.epsilon_sg <= 1.0:
            raise ValueError("adjacency thresholds must be in (0, 1]")
        if self.hidden_dim <= 0 or self.num_blocks <= 0:
            raise ValueError("architecture sizes must be positive")
        if self.lr_schedule not in (None, "none", "step", "cosine"):
            raise ValueError(f"unknown lr_schedule {self.lr_schedule!r}")
        if self.lr_step_size <= 0:
            raise ValueError("lr_step_size must be positive")
        if self.cache_store is not None and not isinstance(self.cache_store, bool):
            raise ValueError(
                f"cache_store must be True, False or None, got {self.cache_store!r}"
            )
        if self.backend is not None:
            from ..backend import available_backends

            if self.backend not in available_backends():
                raise ValueError(
                    f"unknown backend {self.backend!r}; "
                    f"available: {', '.join(available_backends())}"
                )
        if self.dtype not in (None, "float32", "float64"):
            raise ValueError(
                f"dtype must be None, 'float32' or 'float64', got {self.dtype!r}"
            )
        if self.device is not None and not isinstance(self.device, str):
            raise ValueError(f"device must be None or a string, got {self.device!r}")


def config_for_dataset(dataset_name: str, **overrides) -> STSMConfig:
    """Config with the paper's Table 3 parameters for a dataset preset.

    ``dataset_name`` may be a preset key (``"pems-bay"``) or a generated
    dataset name (``"pems-bay-synth"``); matching is by prefix.
    """
    params: dict = {}
    for key, values in PAPER_PARAMETERS.items():
        if dataset_name.startswith(key):
            params = {k: v for k, v in values.items() if k != "poi_radius"}
            break
    params.update(overrides)
    return STSMConfig(**params)
