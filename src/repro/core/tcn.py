"""Temporal correlation modules.

* :class:`DilatedTCN` — the paper's default (Eq. 5): ``n`` stacked 1-D
  dilated convolutions with exponentially growing dilation ``2^j``, each
  followed by ReLU and dropout, with zero-padding preserving the sequence
  length.
* :class:`TransformerTemporal` — the STSM-trans replacement (§5.2.5): a
  transformer encoder over the time axis with sinusoidal positions.
* :class:`RecurrentTemporal` — a GRU over the time axis (extension beyond
  the paper: the DCRNN-style recurrent choice its related work discusses).

All consume/produce ``(batch, time, nodes, channels)`` tensors so the ST
block can treat them interchangeably.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from ..nn import GRU, Conv1d, Dropout, Module, ModuleList, TransformerEncoderLayer, positional_encoding

__all__ = ["DilatedTCN", "TransformerTemporal", "RecurrentTemporal"]


class DilatedTCN(Module):
    """Stacked dilated 1-D convolutions over the time axis (Eq. 5)."""

    def __init__(
        self,
        channels: int,
        levels: int,
        kernel_size: int = 3,
        dropout: float = 0.1,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if levels <= 0:
            raise ValueError("TCN needs at least one level")
        self.channels = channels
        self.convs = ModuleList(
            [
                Conv1d(
                    channels,
                    channels,
                    kernel_size,
                    dilation=2 ** level,
                    padding="same",
                    rng=rng,
                )
                for level in range(levels)
            ]
        )
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, features: Tensor) -> Tensor:
        batch, time, nodes, channels = features.shape
        # (B, T, N, C) -> (B*N, C, T) for convolution over time.
        seq = features.transpose(0, 2, 3, 1).reshape(batch * nodes, channels, time)
        for conv in self.convs:
            seq = self.dropout(conv(seq).relu())
        return seq.reshape(batch, nodes, channels, time).transpose(0, 3, 1, 2)


class TransformerTemporal(Module):
    """Transformer-encoder temporal module (STSM-trans, §5.2.5)."""

    def __init__(
        self,
        channels: int,
        num_heads: int = 4,
        num_layers: int = 1,
        dropout: float = 0.1,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.channels = channels
        self.layers = ModuleList(
            [
                TransformerEncoderLayer(channels, num_heads, dropout=dropout, rng=rng)
                for _ in range(num_layers)
            ]
        )

    def forward(self, features: Tensor) -> Tensor:
        batch, time, nodes, channels = features.shape
        positions = Tensor(positional_encoding(time, channels))
        seq = features.transpose(0, 2, 1, 3).reshape(batch * nodes, time, channels)
        seq = seq + positions
        for layer in self.layers:
            seq = layer(seq)
        return seq.reshape(batch, nodes, time, channels).transpose(0, 2, 1, 3)


class RecurrentTemporal(Module):
    """GRU temporal module (extension; the RNN choice of DCRNN-style models).

    The paper notes RNNs "suffer in model running time and in the
    effectiveness of modelling longer sequences" compared to TCNs —
    this module lets the ablation suite measure that trade-off inside
    STSM's architecture.
    """

    def __init__(self, channels: int, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.channels = channels
        self.gru = GRU(channels, channels, rng=rng)

    def forward(self, features):
        batch, time, nodes, channels = features.shape
        seq = features.transpose(0, 2, 1, 3).reshape(batch * nodes, time, channels)
        hidden, _final = self.gru(seq)
        return hidden.reshape(batch, nodes, time, channels).transpose(0, 2, 1, 3)
