"""Ready-made constructors for STSM and its paper variants.

Paper §5.2.2 / §5.2.5 / §5.2.6:

========  ==================  ====================  =====================
Variant   Selective masking   Contrastive learning  Other
========  ==================  ====================  =====================
STSM      yes                 yes                   --
STSM-NC   yes                 no                    --
STSM-R    no (random)         yes                   --
STSM-RNC  no (random)         no                    (the base model, §3)
STSM-trans yes                yes                   transformer temporal
STSM-rd-a yes                 yes                   road dist (adj+pseudo)
STSM-rd-m yes                 yes                   road dist (adj only)
========  ==================  ====================  =====================
"""

from __future__ import annotations

from .config import STSMConfig, config_for_dataset
from .model import STSMForecaster

__all__ = [
    "make_stsm",
    "make_stsm_nc",
    "make_stsm_r",
    "make_stsm_rnc",
    "make_stsm_trans",
    "make_stsm_gat",
    "make_stsm_rd_a",
    "make_stsm_rd_m",
    "STSM_VARIANTS",
]


def _base_config(dataset_name: str | None, config: STSMConfig | None, **overrides) -> STSMConfig:
    if config is not None:
        return config.replace(**overrides) if overrides else config
    if dataset_name is not None:
        return config_for_dataset(dataset_name, **overrides)
    return STSMConfig(**overrides)


def make_stsm(dataset_name: str | None = None, config: STSMConfig | None = None, **overrides) -> STSMForecaster:
    """Full STSM (selective masking + contrastive learning)."""
    cfg = _base_config(dataset_name, config, **overrides)
    return STSMForecaster(cfg, name="STSM")


def make_stsm_nc(dataset_name: str | None = None, config: STSMConfig | None = None, **overrides) -> STSMForecaster:
    """STSM-NC: contrastive learning disabled."""
    cfg = _base_config(dataset_name, config, **overrides).replace(contrastive=False)
    return STSMForecaster(cfg, name="STSM-NC")


def make_stsm_r(dataset_name: str | None = None, config: STSMConfig | None = None, **overrides) -> STSMForecaster:
    """STSM-R: selective masking replaced by random sub-graph masking."""
    cfg = _base_config(dataset_name, config, **overrides).replace(selective_masking=False)
    return STSMForecaster(cfg, name="STSM-R")


def make_stsm_rnc(dataset_name: str | None = None, config: STSMConfig | None = None, **overrides) -> STSMForecaster:
    """STSM-RNC: the base model (random masking, no contrastive loss)."""
    cfg = _base_config(dataset_name, config, **overrides).replace(
        selective_masking=False, contrastive=False
    )
    return STSMForecaster(cfg, name="STSM-RNC")


def make_stsm_trans(dataset_name: str | None = None, config: STSMConfig | None = None, **overrides) -> STSMForecaster:
    """STSM-trans: transformer temporal module with gated fusion (§5.2.5)."""
    cfg = _base_config(dataset_name, config, **overrides).replace(temporal_module="transformer")
    return STSMForecaster(cfg, name="STSM-trans")


def make_stsm_gat(dataset_name: str | None = None, config: STSMConfig | None = None, **overrides) -> STSMForecaster:
    """STSM-gat: graph-attention spatial module (extension, cf. §5.2.5).

    The paper swaps the temporal module to show extensibility; this is the
    matching swap on the spatial side — learned attention edge weights in
    place of the fixed GCN normalisation.
    """
    cfg = _base_config(dataset_name, config, **overrides).replace(spatial_module="gat")
    return STSMForecaster(cfg, name="STSM-gat")


def make_stsm_rd_a(dataset_name: str | None = None, config: STSMConfig | None = None, **overrides) -> STSMForecaster:
    """STSM-rd-a: road-network distances for adjacency AND pseudo-obs (§5.2.6)."""
    cfg = _base_config(dataset_name, config, **overrides).replace(distance_mode="road_all")
    return STSMForecaster(cfg, name="STSM-rd-a")


def make_stsm_rd_m(dataset_name: str | None = None, config: STSMConfig | None = None, **overrides) -> STSMForecaster:
    """STSM-rd-m: road-network distances for adjacency matrices only (§5.2.6)."""
    cfg = _base_config(dataset_name, config, **overrides).replace(distance_mode="road_adj_only")
    return STSMForecaster(cfg, name="STSM-rd-m")


#: Name -> constructor map used by the experiment runners.
STSM_VARIANTS = {
    "STSM": make_stsm,
    "STSM-NC": make_stsm_nc,
    "STSM-R": make_stsm_r,
    "STSM-RNC": make_stsm_rnc,
    "STSM-trans": make_stsm_trans,
    "STSM-gat": make_stsm_gat,
    "STSM-rd-a": make_stsm_rd_a,
    "STSM-rd-m": make_stsm_rd_m,
}
