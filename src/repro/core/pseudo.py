"""Pseudo-observation generation (paper Eq. 3).

Unobserved (or masked) locations receive inverse-distance-weighted
combinations of the *real* observations:

    x_i^t = sum_j alpha_ij x_j^t,   alpha_ij = dist(c_i, c_j)^-1 / sum_l dist(c_i, c_l)^-1

This injects neighbourhood information before the GCN sees the graph, and
is the basis for the temporal-similarity adjacency of §3.4.1.
"""

from __future__ import annotations

import numpy as np

__all__ = ["idw_weights", "fill_pseudo_observations"]


def idw_weights(
    distances: np.ndarray,
    target_index: np.ndarray,
    source_index: np.ndarray,
    eps: float = 1e-6,
    k: int | None = None,
) -> np.ndarray:
    """Inverse-distance weights from each target to the sources.

    Parameters
    ----------
    distances:
        ``(N, N)`` pairwise distances over the full graph.
    target_index:
        Locations to receive pseudo-observations.
    source_index:
        Locations providing real observations.
    eps:
        Floor added to distances to avoid division by zero for coincident
        coordinates.
    k:
        If given, only each target's ``k`` nearest sources get non-zero
        weight.  Eq. 3 sums over all observed locations; at the paper's
        sensor densities the ``1/d`` weights concentrate on the local
        neighbourhood by themselves, while at reduced scale an explicit
        top-k keeps the fill local (see DESIGN.md calibration notes).

    Returns
    -------
    ``(len(target_index), len(source_index))`` row-stochastic weights.
    """
    distances = np.asarray(distances, dtype=float)
    target_index = np.asarray(target_index, dtype=int)
    source_index = np.asarray(source_index, dtype=int)
    if len(source_index) == 0:
        raise ValueError("idw_weights requires at least one source location")
    block = distances[np.ix_(target_index, source_index)]
    inverse = 1.0 / np.maximum(block, eps)
    if k is not None and k < len(source_index):
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        cutoff = np.argsort(-inverse, axis=1)[:, k:]
        rows = np.arange(len(target_index))[:, None]
        inverse[rows, cutoff] = 0.0
    return inverse / inverse.sum(axis=1, keepdims=True)


def fill_pseudo_observations(
    values: np.ndarray,
    distances: np.ndarray,
    target_index: np.ndarray,
    source_index: np.ndarray,
    k: int | None = None,
) -> np.ndarray:
    """Return a copy of ``values`` with target columns replaced by IDW fills.

    Parameters
    ----------
    values:
        ``(T, N)`` observation matrix (target columns' content is ignored).
    distances:
        ``(N, N)`` pairwise distance matrix.
    target_index / source_index:
        Column indices receiving / providing observations.
    k:
        Optional top-k source restriction (see :func:`idw_weights`).
    """
    values = np.asarray(values, dtype=float)
    target_index = np.asarray(target_index, dtype=int)
    if len(target_index) == 0:
        return values.copy()
    weights = idw_weights(distances, target_index, source_index, k=k)
    filled = values.copy()
    filled[:, target_index] = values[:, np.asarray(source_index, dtype=int)] @ weights.T
    return filled
