"""Saving and loading trained STSM models.

A fitted :class:`~repro.core.model.STSMForecaster` owns three kinds of
state: the network weights, the configuration, and the fitted scaler.  The
dataset/split context is *not* serialised — on load, the caller re-attaches
a dataset and split (typically the same ones) and the forecaster rebuilds
its test-graph caches.  Format: a single ``.npz`` with a JSON header.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import numpy as np

from ..data.dataset import SpatioTemporalDataset
from ..data.scalers import StandardScaler
from ..data.splits import SpaceSplit
from ..data.windows import WindowSpec
from .config import STSMConfig
from .model import STSMForecaster
from .network import STSMNetwork

__all__ = ["save_forecaster", "load_forecaster"]

_HEADER_KEY = "__header__"
_FORMAT_VERSION = 1


def save_forecaster(forecaster: STSMForecaster, path: str | Path) -> Path:
    """Serialise a fitted forecaster to ``path`` (``.npz``)."""
    if not getattr(forecaster, "_fitted", False) or forecaster.network is None:
        raise ValueError("cannot save an unfitted forecaster")
    path = Path(path)
    header = {
        "format_version": _FORMAT_VERSION,
        "name": forecaster.name,
        "config": dataclasses.asdict(forecaster.config),
        "spec": {
            "input_length": forecaster.spec.input_length,
            "horizon": forecaster.spec.horizon,
        },
        "scaler": {"mean": forecaster.scaler.mean_, "std": forecaster.scaler.std_},
    }
    arrays = {
        f"param::{name}": values for name, values in forecaster.network.state_dict().items()
    }
    arrays[_HEADER_KEY] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    )
    np.savez(path, **arrays)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_forecaster(
    path: str | Path,
    dataset: SpatioTemporalDataset,
    split: SpaceSplit,
    train_steps: np.ndarray | None = None,
    backend: str | None = None,
    device: str | None = None,
    dtype: str | None = None,
) -> STSMForecaster:
    """Load a saved forecaster and re-attach its data context.

    Parameters
    ----------
    path:
        File produced by :func:`save_forecaster`.
    dataset / split:
        The data context to predict against (normally the ones used at
        training time; a different dataset with the same geometry also
        works because the network is inductive).
    train_steps:
        Time steps considered historical when rebuilding the test-time
        DTW adjacency; defaults to all steps.
    backend / device / dtype:
        Override the saved config's backend fields for serving — state
        dicts are host numpy, so a model trained under one backend loads
        and predicts under any other (e.g. fit on numpy_ref, serve on
        torch/cuda).  ``None`` keeps the saved values.
    """
    archive = np.load(Path(path), allow_pickle=False)
    if _HEADER_KEY not in archive:
        raise ValueError(f"{path} is not a saved STSM forecaster")
    header = json.loads(bytes(archive[_HEADER_KEY]).decode("utf-8"))
    if header.get("format_version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported format version {header.get('format_version')}")

    config = STSMConfig(**header["config"])
    overrides = {
        key: value
        for key, value in (("backend", backend), ("device", device), ("dtype", dtype))
        if value is not None
    }
    if overrides:
        config = config.replace(**overrides)
        config.validate()
    spec = WindowSpec(**header["spec"])
    forecaster = STSMForecaster(config, name=header["name"])
    forecaster.dataset = dataset
    forecaster.split = split
    forecaster.spec = spec

    scaler = StandardScaler()
    scaler.mean_ = header["scaler"]["mean"]
    scaler.std_ = header["scaler"]["std"]
    forecaster.scaler = scaler
    forecaster._scaled_full = scaler.transform(dataset.values)

    from ..backend import resolve_backend, use_backend

    state = {
        key.removeprefix("param::"): archive[key]
        for key in archive.files
        if key.startswith("param::")
    }
    # Parameters and the cached test-graph tensors must live on the
    # backend the forecaster will predict under, so build them in scope.
    with use_backend(resolve_backend(config.backend, config.device, config.dtype)):
        network = STSMNetwork(
            config, horizon=spec.horizon, input_length=spec.input_length
        )
        network.load_state_dict(state)
        forecaster.network = network

        from .model import compute_distance_matrices  # local import avoids cycle
        from ..graph.adjacency import gaussian_kernel_adjacency

        dist_adj, dist_pseudo = compute_distance_matrices(dataset, config.distance_mode)
        forecaster._dist_pseudo = dist_pseudo
        off = dist_adj[~np.eye(len(dist_adj), dtype=bool)]
        sigma = max(float(off.std()) * config.sigma_scale, 1e-9)
        forecaster._a_s_full = gaussian_kernel_adjacency(
            dist_adj, threshold=config.epsilon_s, sigma=sigma
        )
        forecaster._fitted = True
        forecaster._prepare_test_graph()
    return forecaster
