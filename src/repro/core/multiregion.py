"""Multiple unobserved regions (the paper's stated future work, §6).

The paper's conclusion: "We only considered one unobserved region. In the
future, we plan to extend STSM to deal with multiple unobserved regions at
the same time."  This module provides that extension:

* :func:`multi_region_split` — partition locations so that ``k`` disjoint,
  spatially contiguous sub-regions are unobserved;
* :func:`multi_region_similarity` — selective-masking scores against
  *several* regions at once.  Each region keeps its own embedding and
  centroid; an observed sub-graph's score is its best match over regions
  (max cosine similarity, max inverse centroid distance), so sub-graphs
  resembling *any* unobserved region become maskable.  With one region
  this reduces exactly to §4.1's formulation.

The forecaster itself is already inductive over arbitrary observed /
unobserved partitions, so no model change is needed — only the similarity
computation that guides masking.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import LocationFeatures
from ..data.splits import SpaceSplit
from .features import (
    SubgraphSimilarity,
    cosine_similarities,
    normalise_feature_columns,
    region_embedding,
    subgraph_embeddings,
)

__all__ = ["multi_region_split", "multi_region_similarity"]


def multi_region_split(
    coords: np.ndarray,
    num_regions: int,
    unobserved_ratio: float = 0.5,
    rng: np.random.Generator | None = None,
    validation_fraction: float = 0.2,
) -> SpaceSplit:
    """Create a split whose test set is ``num_regions`` contiguous patches.

    Each patch grows around a random seed location by nearest-neighbour
    accretion until the patches jointly cover ``unobserved_ratio`` of all
    locations.  The remaining locations split 4:1 into train/validation
    (matching the paper's observed-region proportions).

    Parameters
    ----------
    coords:
        ``(N, 2)`` locations.
    num_regions:
        Number of disjoint unobserved patches (1 reduces to a contiguous
        single-region split).
    unobserved_ratio:
        Total fraction of locations without observations.
    rng:
        Seed source for patch placement (deterministic default).
    validation_fraction:
        Fraction of the *observed* part used for validation.
    """
    coords = np.asarray(coords, dtype=float)
    n = len(coords)
    if num_regions < 1:
        raise ValueError("num_regions must be >= 1")
    if not 0.0 < unobserved_ratio < 1.0:
        raise ValueError(f"unobserved_ratio must be in (0, 1), got {unobserved_ratio}")
    target_total = max(num_regions, int(round(n * unobserved_ratio)))
    if target_total >= n - 1:
        raise ValueError("unobserved_ratio leaves too few observed locations")
    rng = rng if rng is not None else np.random.default_rng(0)

    per_region = np.full(num_regions, target_total // num_regions)
    per_region[: target_total % num_regions] += 1

    available = np.ones(n, dtype=bool)
    unobserved: list[int] = []
    for size in per_region:
        candidates = np.flatnonzero(available)
        if len(candidates) == 0:
            break
        seed = int(rng.choice(candidates))
        # Grow the patch by taking the `size` nearest available locations
        # to the seed (contiguous by construction).
        dist = np.linalg.norm(coords - coords[seed], axis=1)
        dist[~available] = np.inf
        members = np.argsort(dist)[: int(size)]
        members = members[np.isfinite(dist[members])]
        unobserved.extend(int(m) for m in members)
        available[members] = False

    unobserved_arr = np.array(sorted(set(unobserved)), dtype=int)
    observed = np.setdiff1d(np.arange(n), unobserved_arr)
    num_val = max(1, int(round(len(observed) * validation_fraction)))
    shuffled = rng.permutation(observed)
    validation = np.sort(shuffled[:num_val])
    train = np.sort(shuffled[num_val:])
    split = SpaceSplit(
        train=train,
        validation=validation,
        test=unobserved_arr,
        name=f"multi-region-{num_regions}",
    )
    split.validate(n)
    return split


def _contiguous_regions(coords: np.ndarray, index: np.ndarray, num_regions: int) -> list[np.ndarray]:
    """Cluster unobserved locations back into spatial patches (k-means-lite)."""
    index = np.asarray(index, dtype=int)
    if num_regions <= 1 or len(index) <= num_regions:
        return [index]
    points = coords[index]
    # Deterministic farthest-point initialisation.
    centres = [points[0]]
    for _ in range(num_regions - 1):
        dist = np.min(
            np.stack([np.linalg.norm(points - c, axis=1) for c in centres]), axis=0
        )
        centres.append(points[int(np.argmax(dist))])
    centres_arr = np.stack(centres)
    for _ in range(10):
        assign = np.argmin(
            np.linalg.norm(points[:, None, :] - centres_arr[None, :, :], axis=2), axis=1
        )
        for k in range(num_regions):
            members = points[assign == k]
            if len(members):
                centres_arr[k] = members.mean(axis=0)
    return [index[assign == k] for k in range(num_regions) if (assign == k).any()]


def multi_region_similarity(
    features: LocationFeatures,
    coords: np.ndarray,
    subgraph_adjacency_full: np.ndarray,
    observed_index: np.ndarray,
    unobserved_index: np.ndarray,
    num_regions: int,
) -> SubgraphSimilarity:
    """Selective-masking scores against several unobserved regions.

    The unobserved locations are clustered into ``num_regions`` contiguous
    patches; each observed sub-graph scores ``max`` similarity over the
    per-patch embeddings and ``max`` inverse distance over the per-patch
    centroids.  Returns the same :class:`SubgraphSimilarity` container the
    single-region pipeline consumes.
    """
    observed_index = np.asarray(observed_index, dtype=int)
    unobserved_index = np.asarray(unobserved_index, dtype=int)
    embeddings = normalise_feature_columns(features.embedding_matrix())
    sub_adj = subgraph_adjacency_full[np.ix_(observed_index, observed_index)]
    sg_embed = subgraph_embeddings(embeddings[observed_index], sub_adj)

    regions = _contiguous_regions(coords, unobserved_index, num_regions)
    similarity = np.full(len(observed_index), -np.inf)
    proximity = np.zeros(len(observed_index))
    for region in regions:
        l_u = region_embedding(embeddings, region)
        similarity = np.maximum(similarity, cosine_similarities(sg_embed, l_u))
        centroid = coords[region].mean(axis=0)
        dist = np.linalg.norm(coords[observed_index] - centroid, axis=1)
        proximity = np.maximum(proximity, 1.0 / np.maximum(dist, 1e-6))
    return SubgraphSimilarity(similarity, proximity, observed_index)
