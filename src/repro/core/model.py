"""The STSM forecaster: training (§3.5, §4) and testing procedures.

Training (per epoch):

1. draw a mask over observed locations — selectively (§4.1) or randomly
   (§3.3) depending on the configuration;
2. replace masked columns with IDW pseudo-observations (Eq. 3);
3. rebuild the temporal-similarity adjacency ``A_dtw^train`` (the mask
   changed, §3.4.1);
4. minimise ``L = L_pred + λ L_cl`` (Eq. 18) over shuffled window batches,
   where ``L_pred`` is the MSE over the masked view's predictions (Eq. 14)
   and ``L_cl`` the NT-Xent loss between the original and masked views'
   graph representations (Eq. 17).

Early stopping monitors RMSE on the validation locations (treated as
masked, mirroring test conditions).

Training runs through the shared :class:`repro.engine.Trainer`: this
module only contributes the STSM-specific epoch body (mask redraw,
pseudo-observation fill, ``A_dtw^train`` rebuild, prediction +
contrastive loss) as a :class:`repro.engine.TrainingProgram`.  Two
engine caches make the per-epoch rebuild cheap without changing any
numbers: a mask-keyed LRU over (pseudo-fill, normalised adjacency)
pairs, and a per-pair DTW memo so profiles untouched by the fresh mask
never re-run the dynamic program.

Testing (§3.5): pseudo-observations fill the unobserved columns of the
full graph, ``A_dtw`` is rebuilt with observed→unobserved one-way edges,
and the trained network predicts the horizon for every requested window.
"""

from __future__ import annotations

import time

import numpy as np

from ..autograd import Tensor, no_grad
from ..backend import resolve_backend, use_backend
from ..data.dataset import SpatioTemporalDataset
from ..data.scalers import StandardScaler
from ..data.splits import SpaceSplit
from ..data.windows import WindowSpec, iterate_batches
from ..engine import (
    EarlyStopping,
    LRUCache,
    PairwiseDTWCache,
    Trainer,
    TrainingProgram,
    active_store,
    array_key,
)
from ..graph.adjacency import gaussian_kernel_adjacency, gcn_normalise
from ..graph.distances import euclidean_distance_matrix
from ..interfaces import FitReport, Forecaster
from ..nn import mse_loss, nt_xent_loss
from ..optim import Adam, build_scheduler
from ..temporal import build_dtw_adjacency, normalised_time_encoding
from .config import STSMConfig
from .features import compute_subgraph_similarity
from .masking import SelectiveMasker, random_subgraph_mask
from .multiregion import multi_region_similarity
from .network import STSMNetwork
from .pseudo import fill_pseudo_observations

__all__ = ["STSMForecaster", "compute_distance_matrices"]


def compute_distance_matrices(
    dataset: SpatioTemporalDataset, mode: str
) -> tuple[np.ndarray, np.ndarray]:
    """Distance matrices for (adjacency construction, pseudo-observations).

    ``mode`` follows Table 11: ``"euclidean"`` uses Euclidean for both,
    ``"road_adj_only"`` (STSM-rd-m) uses road distances for the adjacency
    matrices only, ``"road_all"`` (STSM-rd-a) for both.
    """
    euclidean = euclidean_distance_matrix(dataset.coords)
    if mode == "euclidean":
        return euclidean, euclidean
    if dataset.road_network is None:
        raise ValueError(f"distance mode {mode!r} requires a road network on the dataset")
    road = dataset.road_network.shortest_path_distance_matrix(dataset.coords)
    finite = road[np.isfinite(road)]
    ceiling = (finite.max() if finite.size else 1.0) * 2.0
    road = np.where(np.isfinite(road), road, ceiling)
    if mode == "road_adj_only":
        return road, euclidean
    if mode == "road_all":
        return road, road
    raise ValueError(f"unknown distance mode {mode!r}")


class _STSMProgram(TrainingProgram):
    """STSM's per-epoch body, driven by the shared :class:`Trainer`.

    ``on_epoch_start`` draws the mask and rebuilds the masked view
    (pseudo-fill + ``A_dtw^train``) — memoised by mask content so a
    repeated draw costs a cache lookup; ``compute_loss`` evaluates the
    prediction (+ contrastive) objective on one shuffled window batch.
    """

    def __init__(
        self,
        forecaster: "STSMForecaster",
        draw_mask,
        scaled_obs: np.ndarray,
        dist_obs: np.ndarray,
        train_steps: np.ndarray,
        starts: np.ndarray,
        a_s_train_t: Tensor,
        a_dtw_orig_t: Tensor,
        val_filled: np.ndarray,
        val_starts: np.ndarray,
        val_local: np.ndarray,
        a_dtw_val_t: Tensor,
    ) -> None:
        self.forecaster = forecaster
        self.network = forecaster.network
        cfg = forecaster.config
        self.cfg = cfg
        self.optimiser = Adam(self.network.parameters(), lr=cfg.learning_rate)
        self.grad_clip = cfg.grad_clip
        self.draw_mask = draw_mask
        self.scaled_obs = scaled_obs
        self.dist_obs = dist_obs
        self.train_steps = train_steps
        self.starts = starts
        self.a_s_train_t = a_s_train_t
        self.a_dtw_orig_t = a_dtw_orig_t
        self.val_filled = val_filled
        self.val_starts = val_starts
        self.val_local = val_local
        self.a_dtw_val_t = a_dtw_val_t
        # Per-epoch masked view, set by on_epoch_start.
        self.filled: np.ndarray | None = None
        self.a_dtw_train_t: Tensor | None = None

    def on_epoch_start(self, epoch: int, rng: np.random.Generator | None) -> None:
        cfg = self.cfg
        n_obs = self.scaled_obs.shape[1]
        mask_local = self.draw_mask(rng)
        source_local = np.setdiff1d(np.arange(n_obs), mask_local)
        # The IDW fill is cheap and deterministic per mask; recompute it
        # every epoch so the mask cache holds only the small
        # (n_obs, n_obs) adjacency, not T x N_o fill matrices.
        self.filled = fill_pseudo_observations(
            self.scaled_obs,
            self.dist_obs,
            target_index=mask_local,
            source_index=source_local,
            k=cfg.pseudo_k,
        )
        a_dtw_norm = self.forecaster._mask_cache.get_or_compute(
            array_key(mask_local),
            lambda: self._masked_adjacency(mask_local, source_local),
        )
        self.a_dtw_train_t = Tensor(a_dtw_norm)

    def _masked_adjacency(self, mask_local: np.ndarray, source_local: np.ndarray) -> np.ndarray:
        """Normalised ``A_dtw^train`` for one drawn mask."""
        forecaster = self.forecaster
        cfg = self.cfg
        a_dtw_train = build_dtw_adjacency(
            self.filled[self.train_steps],
            observed_index=source_local,
            target_index=mask_local,
            steps_per_day=forecaster.dataset.steps_per_day,
            num_nodes=self.scaled_obs.shape[1],
            q_kk=cfg.q_kk,
            q_ku=cfg.q_ku,
            resolution=cfg.dtw_resolution,
            distance_fn=forecaster._dtw_cache.distance_matrix,
        )
        return gcn_normalise(a_dtw_train)

    def batches(self, epoch: int, rng: np.random.Generator | None):
        return iterate_batches(
            self.starts, self.cfg.batch_size, rng=rng, drop_last=self.cfg.contrastive
        )

    def compute_loss(self, batch: np.ndarray, rng: np.random.Generator | None):
        forecaster = self.forecaster
        cfg = self.cfg
        x_masked, te, y = forecaster._make_batch(
            self.filled, self.scaled_obs, batch, self.train_steps
        )
        predictions, z_masked = self.network(x_masked, te, self.a_s_train_t, self.a_dtw_train_t)
        loss = mse_loss(predictions, y)
        if cfg.contrastive and len(batch) >= 2:
            x_orig = forecaster._window_tensor(self.scaled_obs, batch, self.train_steps)
            _, z_orig = self.network(x_orig, te, self.a_s_train_t, self.a_dtw_orig_t)
            loss = loss + cfg.contrastive_weight * nt_xent_loss(
                z_orig, z_masked, temperature=cfg.temperature
            )
        return loss

    def validation_score(self, epoch: int) -> float:
        return self.forecaster._validation_rmse(
            self.val_filled,
            self.val_starts,
            self.val_local,
            self.a_s_train_t,
            self.a_dtw_val_t,
            self.train_steps,
        )


class STSMForecaster(Forecaster):
    """STSM and its ablation variants behind the common interface.

    The configuration toggles select the paper's variants; see
    :mod:`repro.core.variants` for ready-made constructors.
    """

    def __init__(self, config: STSMConfig | None = None, name: str = "STSM") -> None:
        self.config = config if config is not None else STSMConfig()
        self.config.validate()
        self.name = name
        self.network: STSMNetwork | None = None
        self._fitted = False

    def _resolved_backend(self):
        """Backend for fit/predict: config name + device/dtype overrides.

        ``None`` (no field set) keeps the process-active backend, so the
        pre-device behaviour is unchanged for existing configs.
        """
        cfg = self.config
        return resolve_backend(cfg.backend, cfg.device, cfg.dtype)

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(
        self,
        dataset: SpatioTemporalDataset,
        split: SpaceSplit,
        spec: WindowSpec,
        train_steps: np.ndarray,
        *,
        warm_start_dir=None,
        warm_start_state=None,
        checkpoint_dir=None,
    ) -> FitReport:
        """Train under the config's array backend (None = process default).

        ``warm_start_dir`` seeds the optimisation from a PR 2 best-epoch
        checkpoint directory via :meth:`~repro.engine.Trainer.restore`
        (a missing/unreadable checkpoint degrades to a cold start);
        ``warm_start_state`` seeds it from an in-memory state dict
        directly (mutually exclusive with ``warm_start_dir``).  Because
        the network's own initialisation is fully determined by
        ``config.seed`` and loading either source overwrites every
        parameter, two fits seeded from the same weights follow
        bit-identical trajectories regardless of which path loaded them.
        ``checkpoint_dir`` persists this fit's best epoch for later
        warm starts (see :class:`~repro.engine.EarlyStopping`).
        """
        with use_backend(self._resolved_backend()):
            return self._fit_impl(
                dataset, split, spec, train_steps,
                warm_start_dir=warm_start_dir,
                warm_start_state=warm_start_state,
                checkpoint_dir=checkpoint_dir,
            )

    def _fit_impl(
        self,
        dataset: SpatioTemporalDataset,
        split: SpaceSplit,
        spec: WindowSpec,
        train_steps: np.ndarray,
        *,
        warm_start_dir=None,
        warm_start_state=None,
        checkpoint_dir=None,
    ) -> FitReport:
        if warm_start_dir is not None and warm_start_state is not None:
            raise ValueError("pass warm_start_dir or warm_start_state, not both")
        started = time.perf_counter()
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)

        self.dataset = dataset
        self.split = split
        self.spec = spec
        observed = split.observed
        unobserved = split.unobserved
        n_obs = len(observed)
        if n_obs < 3:
            raise ValueError("need at least 3 observed locations to train STSM")

        # --- static geometry -------------------------------------------------
        dist_adj, dist_pseudo = compute_distance_matrices(dataset, cfg.distance_mode)
        self._dist_pseudo = dist_pseudo
        off_diagonal = dist_adj[~np.eye(len(dist_adj), dtype=bool)]
        sigma = max(float(off_diagonal.std()) * cfg.sigma_scale, 1e-9)
        a_s_full = gaussian_kernel_adjacency(dist_adj, threshold=cfg.epsilon_s, sigma=sigma)
        a_sg_full = gaussian_kernel_adjacency(dist_adj, threshold=cfg.epsilon_sg, sigma=sigma)
        self._a_s_full = a_s_full
        obs_ix = np.ix_(observed, observed)
        a_s_train = a_s_full[obs_ix]
        a_sg_train = a_sg_full[obs_ix]

        # --- scaling ---------------------------------------------------------
        train_values_raw = dataset.values[train_steps][:, observed]
        self.scaler = StandardScaler().fit(train_values_raw)
        scaled_full = self.scaler.transform(dataset.values)
        self._scaled_full = scaled_full
        scaled_obs_train = scaled_full[np.ix_(train_steps, observed)]

        # --- masking strategy -------------------------------------------------
        if cfg.selective_masking:
            if cfg.num_unobserved_regions > 1:
                similarity = multi_region_similarity(
                    dataset.features, dataset.coords, a_sg_full,
                    observed, unobserved, cfg.num_unobserved_regions,
                )
            else:
                similarity = compute_subgraph_similarity(
                    dataset.features, dataset.coords, a_sg_full, observed, unobserved
                )
            masker = SelectiveMasker(
                similarity, a_sg_train, cfg.mask_ratio, top_k=cfg.top_k
            )
            self.masking_probabilities = masker.probabilities
            draw_mask = masker.draw
        else:
            self.masking_probabilities = None
            draw_mask = lambda rng_: random_subgraph_mask(a_sg_train, cfg.mask_ratio, rng_)  # noqa: E731

        # --- network ----------------------------------------------------------
        self.network = STSMNetwork(cfg, horizon=spec.horizon, input_length=spec.input_length)

        # --- engine caches (per-fit by default, shared store on opt-in) --------
        # The store makes every DTW pair and masked adjacency computed
        # here visible to later fits (and, with a disk tier, later
        # processes); hits are bit-exact, so numbers never change.
        store = active_store(cfg.cache_store)
        self._store = store
        self._dtw_cache = PairwiseDTWCache(store=store)
        if store is not None:
            # The masked adjacency is pure in (observations, distances,
            # training period, fill/graph hyper-parameters, mask); the
            # per-epoch lookup keys only the mask, so everything else is
            # folded into the view's scope to stay content-addressed
            # across fits.
            mask_scope = array_key(
                "mask_fill/v1",
                scaled_full[:, observed],
                dist_pseudo[obs_ix],
                train_steps,
                dataset.steps_per_day,
                cfg.pseudo_k,
                cfg.q_kk,
                cfg.q_ku,
                cfg.dtw_resolution,
            )
            self._mask_cache = store.view("mask_fill", scope=mask_scope)
        else:
            self._mask_cache = LRUCache(maxsize=64)

        # --- static adjacency for the original (complete) view -----------------
        a_s_train_t = Tensor(gcn_normalise(a_s_train))
        a_dtw_orig = build_dtw_adjacency(
            scaled_obs_train,
            observed_index=np.arange(n_obs),
            target_index=None,
            steps_per_day=dataset.steps_per_day,
            num_nodes=n_obs,
            q_kk=cfg.q_kk,
            q_ku=cfg.q_ku,
            resolution=cfg.dtw_resolution,
            distance_fn=self._dtw_cache.distance_matrix,
        )
        a_dtw_orig_t = Tensor(gcn_normalise(a_dtw_orig))

        # --- training windows ---------------------------------------------------
        usable = len(train_steps) - spec.total
        if usable < 1:
            raise ValueError(
                f"training period of {len(train_steps)} steps cannot fit a "
                f"{spec.total}-step window"
            )
        starts = np.arange(0, usable + 1, cfg.window_stride)
        steps_per_day = dataset.steps_per_day

        # --- validation setup: mask the validation locations -------------------
        val_local = np.searchsorted(observed, split.validation)
        train_local = np.searchsorted(observed, split.train)
        val_filled = fill_pseudo_observations(
            scaled_full[train_steps][:, observed],
            dist_pseudo[obs_ix],
            target_index=val_local,
            source_index=train_local,
            k=cfg.pseudo_k,
        )
        a_dtw_val = build_dtw_adjacency(
            val_filled,
            observed_index=train_local,
            target_index=val_local,
            steps_per_day=steps_per_day,
            num_nodes=n_obs,
            q_kk=cfg.q_kk,
            q_ku=cfg.q_ku,
            resolution=cfg.dtw_resolution,
            distance_fn=self._dtw_cache.distance_matrix,
        )
        a_dtw_val_t = Tensor(gcn_normalise(a_dtw_val))
        val_stride = max(1, (usable + 1) // 16)
        val_starts = np.arange(0, usable + 1, val_stride)

        # --- shared engine: trainer ------------------------------------------
        program = _STSMProgram(
            self,
            draw_mask,
            scaled_obs=scaled_full[:, observed],
            dist_obs=dist_pseudo[obs_ix],
            train_steps=train_steps,
            starts=starts,
            a_s_train_t=a_s_train_t,
            a_dtw_orig_t=a_dtw_orig_t,
            val_filled=val_filled,
            val_starts=val_starts,
            val_local=val_local,
            a_dtw_val_t=a_dtw_val_t,
        )
        early_stopping = EarlyStopping(patience=cfg.patience, checkpoint_dir=checkpoint_dir)
        scheduler = build_scheduler(
            cfg.lr_schedule,
            program.optimiser,
            total_epochs=cfg.epochs,
            step_size=cfg.lr_step_size,
            gamma=cfg.lr_gamma,
        )
        trainer = Trainer(
            program,
            max_epochs=cfg.epochs,
            rng=rng,
            early_stopping=early_stopping,
            schedulers=[scheduler] if scheduler is not None else None,
            store=store,
        )
        self.warm_started = False
        if warm_start_dir is not None:
            self.warm_started = trainer.restore(warm_start_dir)
        elif warm_start_state is not None:
            program.load_state_dict(warm_start_state)
            self.warm_started = True
        history = trainer.fit()

        self._fitted = True
        self._prepare_test_graph()
        if store is not None:
            store.persist()  # test-graph pairs computed after the trainer's flush
        return FitReport(
            train_seconds=time.perf_counter() - started,
            epochs=history.epochs,
            history=list(history.train_losses),
            extra={
                "best_val_rmse": float(early_stopping.best_score),
                "warm_started": self.warm_started,
            },
        )

    # ------------------------------------------------------------------
    # Batch helpers
    # ------------------------------------------------------------------
    def _window_tensor(
        self, values: np.ndarray, batch_starts: np.ndarray, base_steps: np.ndarray | None
    ) -> Tensor:
        spec = self.spec
        offset = int(base_steps[0]) if base_steps is not None else 0
        windows = [values[offset + s : offset + s + spec.input_length] for s in batch_starts]
        return Tensor(np.stack(windows, axis=0)[..., None])

    def _make_batch(
        self,
        input_values: np.ndarray,
        target_values: np.ndarray,
        batch_starts: np.ndarray,
        base_steps: np.ndarray | None,
    ) -> tuple[Tensor, Tensor, Tensor]:
        spec = self.spec
        steps_per_day = self.dataset.steps_per_day
        offset = int(base_steps[0]) if base_steps is not None else 0
        xs, tes, ys = [], [], []
        for s in batch_starts:
            begin = offset + int(s)
            mid = begin + spec.input_length
            end = mid + spec.horizon
            xs.append(input_values[begin:mid])
            ys.append(target_values[mid:end])
            ids = (begin + np.arange(spec.input_length)) % steps_per_day
            tes.append(normalised_time_encoding(ids, steps_per_day))
        x = Tensor(np.stack(xs, axis=0)[..., None])
        te = Tensor(np.stack(tes, axis=0)[..., None])
        y = Tensor(np.stack(ys, axis=0)[..., None])
        return x, te, y

    def _validation_rmse(
        self,
        val_filled: np.ndarray,
        val_starts: np.ndarray,
        val_local: np.ndarray,
        a_s: Tensor,
        a_dtw: Tensor,
        train_steps: np.ndarray,
    ) -> float:
        if len(val_local) == 0 or len(val_starts) == 0:
            return float("nan")
        spec = self.spec
        observed = self.split.observed
        self.network.eval()
        errors: list[np.ndarray] = []
        with no_grad():
            for begin in range(0, len(val_starts), self.config.batch_size):
                batch = val_starts[begin : begin + self.config.batch_size]
                # val_filled is already restricted to train_steps rows.
                x, te, _y = self._make_batch_from_local(val_filled, batch, train_steps)
                predictions, _z = self.network(x, te, a_s, a_dtw)
                pred = predictions.numpy()[..., 0][:, :, val_local]
                truth = np.stack(
                    [
                        self._scaled_full[
                            int(train_steps[0]) + s + spec.input_length :
                            int(train_steps[0]) + s + spec.total
                        ][:, observed[val_local]]
                        for s in batch
                    ]
                )
                errors.append((pred - truth) ** 2)
        return float(np.sqrt(np.concatenate([e.ravel() for e in errors]).mean()))

    def _make_batch_from_local(
        self, local_values: np.ndarray, batch_starts: np.ndarray, base_steps: np.ndarray
    ) -> tuple[Tensor, Tensor, Tensor]:
        """Batch from values indexed locally (row 0 == base_steps[0])."""
        spec = self.spec
        steps_per_day = self.dataset.steps_per_day
        xs, tes = [], []
        for s in batch_starts:
            begin = int(s)
            xs.append(local_values[begin : begin + spec.input_length])
            ids = (int(base_steps[0]) + begin + np.arange(spec.input_length)) % steps_per_day
            tes.append(normalised_time_encoding(ids, steps_per_day))
        x = Tensor(np.stack(xs, axis=0)[..., None])
        te = Tensor(np.stack(tes, axis=0)[..., None])
        return x, te, None

    # ------------------------------------------------------------------
    # Testing (§3.5)
    # ------------------------------------------------------------------
    def _prepare_test_graph(self) -> None:
        """Precompute the full-graph adjacencies used at prediction time."""
        cfg = self.config
        dataset = self.dataset
        observed = self.split.observed
        unobserved = self.split.unobserved
        n = dataset.num_locations
        filled = fill_pseudo_observations(
            self._scaled_full,
            self._dist_pseudo,
            target_index=unobserved,
            source_index=observed,
            k=cfg.pseudo_k,
        )
        self._filled_full = filled
        if getattr(self, "_dtw_cache", None) is None:
            # Checkpoint-restore path (no fit): a store-backed cache lets
            # a warmed disk tier skip the test-graph dynamic programs.
            self._dtw_cache = PairwiseDTWCache(store=active_store(cfg.cache_store))
        a_dtw_test = build_dtw_adjacency(
            filled,
            observed_index=observed,
            target_index=unobserved,
            steps_per_day=dataset.steps_per_day,
            num_nodes=n,
            q_kk=cfg.q_kk,
            q_ku=cfg.q_ku,
            resolution=cfg.dtw_resolution,
            distance_fn=self._dtw_cache.distance_matrix,
        )
        self._a_s_test_t = Tensor(gcn_normalise(self._a_s_full))
        self._a_dtw_test_t = Tensor(gcn_normalise(a_dtw_test))

    def predict(self, window_starts: np.ndarray, stochastic: bool = False) -> np.ndarray:
        """Forecast the unobserved region (§3.5 testing procedure).

        With ``stochastic=True`` the dropout layers stay active, producing
        one Monte-Carlo sample per call — the mechanism used by
        :class:`~repro.core.uncertainty.MCDropoutForecaster`.

        Runs under the same array backend the model was fitted with.
        """
        with use_backend(self._resolved_backend()):
            return self._predict_impl(window_starts, stochastic)

    def _predict_impl(self, window_starts: np.ndarray, stochastic: bool = False) -> np.ndarray:
        if not self._fitted or self.network is None:
            raise RuntimeError("predict() called before fit()")
        spec = self.spec
        cfg = self.config
        unobserved = self.split.unobserved
        steps_per_day = self.dataset.steps_per_day
        self.network.train(stochastic)
        outputs = []
        with no_grad():
            for begin in range(0, len(window_starts), cfg.batch_size):
                batch = np.asarray(window_starts)[begin : begin + cfg.batch_size]
                xs, tes = [], []
                for s in batch:
                    xs.append(self._filled_full[int(s) : int(s) + spec.input_length])
                    ids = (int(s) + np.arange(spec.input_length)) % steps_per_day
                    tes.append(normalised_time_encoding(ids, steps_per_day))
                x = Tensor(np.stack(xs, axis=0)[..., None])
                te = Tensor(np.stack(tes, axis=0)[..., None])
                predictions, _z = self.network(x, te, self._a_s_test_t, self._a_dtw_test_t)
                scaled = predictions.numpy()[..., 0][:, :, unobserved]
                outputs.append(self.scaler.inverse_transform(scaled))
        return np.concatenate(outputs, axis=0)
