"""Process-pool sweep executor: ``run_matrix`` across worker processes.

Every paper table and figure funnels through
:func:`~repro.experiments.runners.run_matrix`, which evaluates its
model × split × seed grid strictly serially.  The cells of that grid are
*independent by construction* — each one builds its own model from
``(dataset_key, seed)``, fits it, and evaluates it — so this module
decomposes one ``run_matrix`` call into :class:`SweepCell` units and
dispatches them across N ``spawn``-ed worker processes, then merges the
per-cell results back into the exact serial output shape.

Determinism is the contract.  A cell computes identical floats no matter
which process runs it (fixed seeds, no cross-cell state), and the merge
re-assembles results in the serial iteration order (model-major, then
split, then seed), so ``average_metrics`` and the timing means see the
same operands in the same order: parallel metrics are bit-identical to
serial ones.  ``benchmarks/bench_sweep.py`` and the parity suite in
``tests/experiments/test_parallel_sweep.py`` certify exactly that.

Worker bootstrap (``spawn``-safe — no fork-inherited locks or RNG
state):

* the parent's active array backend (name + device + dtype) is re-
  resolved in each worker via :func:`repro.backend.resolve_backend`;
* the parent's :class:`~repro.engine.ArtifactStore` disk tier (if any)
  is re-opened in each worker via ``open_store``, so all workers
  share one ``$REPRO_CACHE_DIR``-style directory: fits persist their DTW
  pairs and masked adjacencies as they finish (the PR 5 concurrent-
  writer manifest merge makes this safe), and every cell refreshes its
  disk index first so workers reuse *each other's* artifacts mid-sweep;
* ``REPRO_SWEEP_JOBS`` is pinned to ``1`` inside workers so a cell that
  itself calls ``run_matrix`` can never fork a nested pool.

Scheduling is cost-aware: STSM fits dominate a mixed grid, so cells are
submitted longest-expected-first (:func:`expected_cell_cost`) and the
cheap naive baselines fill the tail instead of straggling behind it.

Failure isolation: a cell that raises is retried once (in case the
failure was environmental — a dying worker, a transient I/O error); a
cell that fails twice is recorded as a structured
:class:`CellFailure`, the *other* cells still run to completion, and the
sweep then surfaces one :class:`SweepCellError` carrying every failure
plus the completed cells' results.  A worker process that dies outright
(``BrokenProcessPool``) is survived the same way: the pool is rebuilt
and the interrupted cells re-run against their retry budget.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

import numpy as np

from ..obs.metrics import global_registry

__all__ = [
    "JOBS_ENV",
    "CellFailure",
    "SweepCell",
    "SweepCellError",
    "execute_matrix",
    "expected_cell_cost",
    "resolve_jobs",
]

#: Environment variable giving the default worker count for every
#: ``run_matrix`` call that does not pass ``jobs`` explicitly
#: (``python -m repro.experiments --jobs N`` sets it).  ``0`` or a
#: negative value means "all CPU cores".
JOBS_ENV = "REPRO_SWEEP_JOBS"

#: Total tries per cell: the first run plus exactly one retry.
MAX_ATTEMPTS = 2


def resolve_jobs(jobs: int | None) -> int:
    """Resolve a worker count: explicit arg > ``$REPRO_SWEEP_JOBS`` > 1.

    ``0`` or negative (from either source) means all CPU cores.  The
    result is always >= 1; ``1`` selects the serial path.
    """
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise ValueError(f"{JOBS_ENV} must be an integer, got {raw!r}") from None
    if jobs <= 0:
        return os.cpu_count() or 1
    return int(jobs)


@dataclass(frozen=True)
class SweepCell:
    """One independent (model, split, seed) unit of a ``run_matrix`` grid."""

    index: int  #: position in the serial iteration order (merge key)
    model_name: str
    split_index: int
    seed: int

    @property
    def label(self) -> str:
        return f"{self.model_name}/split{self.split_index}/seed{self.seed}"


@dataclass
class CellFailure:
    """Structured record of a cell that failed after its retry."""

    model_name: str
    split_index: int
    seed: int
    attempts: int
    error_type: str
    message: str
    traceback: str = ""

    def describe(self) -> str:
        return (
            f"{self.model_name}/split{self.split_index}/seed{self.seed}: "
            f"{self.error_type}: {self.message} (after {self.attempts} attempts)"
        )


class SweepCellError(RuntimeError):
    """One or more sweep cells failed (each after a retry).

    Raised only after every other cell ran to completion — a crashing
    cell never kills the sweep.  ``failures`` holds the structured
    :class:`CellFailure` records; ``completed`` maps
    ``(model_name, split_index, seed)`` to the finished cells'
    :class:`~repro.evaluation.EvaluationResult` objects, so partial
    sweep output stays recoverable.
    """

    def __init__(self, failures: list[CellFailure], completed: dict) -> None:
        self.failures = failures
        self.completed = completed
        lines = "; ".join(f.describe() for f in failures)
        super().__init__(
            f"{len(failures)} sweep cell(s) failed ({len(completed)} completed): {lines}"
        )


# ----------------------------------------------------------------------
# Cost-aware scheduling
# ----------------------------------------------------------------------
def expected_cell_cost(model_name: str, scale) -> float:
    """Relative expected wall-clock of one cell (scheduling heuristic only).

    Never affects results — only submission order.  STSM fits dominate a
    mixed grid (full training loop + quadratic DTW adjacency builds), the
    learned baselines scale with their iteration budgets, the classical
    and naive baselines are near-free.
    """
    if model_name.startswith("STSM"):
        epochs = float(scale.stsm.get("epochs", 60))
        return 1e6 + 1e3 * epochs
    if model_name == "GE-GAN":
        return float(scale.gegan.get("iterations", 6000))
    if model_name == "IGNNK":
        return float(scale.ignnk.get("iterations", 1500))
    if model_name == "INCREASE":
        return float(scale.increase.get("iterations", 1500))
    if model_name in ("GP-Kriging", "MatrixCompletion"):
        return 50.0
    return 1.0


# ----------------------------------------------------------------------
# Worker bootstrap (spawn-safe: everything below is importable state)
# ----------------------------------------------------------------------
def _parent_specs(store) -> tuple[dict | None, dict | None]:
    """Capture the parent's backend + store wiring for worker bootstrap.

    Environment variables travel to ``spawn`` children on their own; this
    covers in-process configuration (``set_backend`` /
    ``open_store`` calls, e.g. from the ``--backend`` and
    ``--cache-dir`` CLI flags) that would otherwise be lost.
    """
    from ..backend import get_backend

    backend = get_backend()
    device = getattr(backend, "device", None)
    dtype = getattr(backend, "dtype", None)
    backend_spec = {
        "name": backend.name,
        "device": str(device) if device is not None else None,
        "dtype": str(dtype).removeprefix("torch.") if dtype is not None else None,
    }
    store_spec = None
    if store is not None:
        store_spec = {
            "disk_dir": str(store.disk_dir) if store.disk_dir is not None else None,
            # Workers enforce the same quota as the parent so a shared
            # tier stays bounded even mid-sweep (their persist-time gc
            # only evicts segments they have indexed themselves).
            "max_bytes": store.max_bytes,
            "compact_ratio": store.compact_ratio,
        }
    return backend_spec, store_spec


def _init_worker(backend_spec: dict | None, store_spec: dict | None) -> None:
    """Per-process initialiser: mirror the parent's backend + store."""
    # A cell must never fork its own pool (nested parallelism would
    # oversubscribe the box and deadlock a 1-CPU runner).
    os.environ[JOBS_ENV] = "1"
    if backend_spec is not None and (
        backend_spec["name"] != "numpy_ref"
        or backend_spec["device"] is not None
        or backend_spec["dtype"] is not None
    ):
        from ..backend import resolve_backend, set_backend

        set_backend(
            resolve_backend(
                backend_spec["name"], backend_spec["device"], backend_spec["dtype"]
            )
        )
    if store_spec is not None:
        from ..engine import StoreConfig, open_store

        open_store(
            StoreConfig(
                disk_dir=store_spec["disk_dir"],
                max_bytes=store_spec.get("max_bytes"),
                compact_ratio=store_spec.get("compact_ratio", 0.5),
            )
        )


def _run_cell(payload: dict) -> dict:
    """Evaluate one cell inside a worker; never raises across the boundary.

    Returns ``{"ok": True, "result": EvaluationResult, ...telemetry}`` or
    ``{"ok": False, ...structured error}`` so Python-level failures stay
    per-cell instead of poisoning the pool.
    """
    from ..engine import active_store
    from .runners import evaluate_cell

    try:
        store = active_store(payload["cache_store"])
        if store is not None and store.disk_dir is not None:
            # Pick up segments other workers persisted since our index
            # was built, so concurrent cells reuse each other's DTW
            # pairs and masked adjacencies (cheap: one manifest read).
            store.refresh_disk_index()
        began = time.perf_counter()
        result = evaluate_cell(
            dataset=payload["dataset"],
            dataset_key=payload["dataset_key"],
            model_name=payload["model_name"],
            scale=payload["scale"],
            split=payload["split"],
            spec=payload["spec"],
            seed=payload["seed"],
            use_service=payload["use_service"],
            cache_store=payload["cache_store"],
            stsm_overrides=payload["stsm_overrides"],
            store=store,
        )
        seconds = time.perf_counter() - began
        if store is not None and payload["use_service"]:
            # Fits persist themselves (Trainer flush-on-fit-end); served
            # windows only exist in this worker's dirty buffer.
            store.persist()
        return {"ok": True, "result": result, "seconds": seconds, "pid": os.getpid()}
    except BaseException as error:  # noqa: BLE001 — the boundary contract
        return {
            "ok": False,
            "error_type": type(error).__name__,
            "message": str(error),
            "traceback": traceback.format_exc(),
        }


# ----------------------------------------------------------------------
# Orchestration
# ----------------------------------------------------------------------
@dataclass
class _CellState:
    cell: SweepCell
    payload: dict
    attempts: int = 0
    rank: int = 0  #: cost-sorted submission position (telemetry)
    failure: CellFailure | None = None
    outcome: dict | None = None


def _execute_cells(
    states: dict[int, _CellState], jobs: int, backend_spec, store_spec
) -> None:
    """Run every cell to an outcome or a post-retry failure (in place)."""
    context = multiprocessing.get_context("spawn")
    queue = sorted(states.values(), key=lambda s: s.rank)
    while queue:
        batch, queue = queue, []
        broken = False
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(batch)),
            mp_context=context,
            initializer=_init_worker,
            initargs=(backend_spec, store_spec),
        ) as pool:
            futures = {}
            for state in batch:
                state.attempts += 1
                futures[pool.submit(_run_cell, state.payload)] = state
            while futures:
                done, _ = wait(list(futures), return_when=FIRST_COMPLETED)
                for future in done:
                    state = futures.pop(future)
                    try:
                        outcome = future.result()
                    except BrokenProcessPool:
                        # The worker running (or queued for) this cell
                        # died; the pool is poisoned.  Re-run what the
                        # budget allows in a fresh pool.
                        broken = True
                        if state.attempts < MAX_ATTEMPTS:
                            queue.append(state)
                        else:
                            state.failure = _pool_death_failure(state)
                        continue
                    except BaseException as error:  # un-picklable result etc.
                        outcome = {
                            "ok": False,
                            "error_type": type(error).__name__,
                            "message": str(error),
                            "traceback": traceback.format_exc(),
                        }
                    if outcome["ok"]:
                        state.outcome = outcome
                    elif state.attempts < MAX_ATTEMPTS:
                        if broken:
                            queue.append(state)
                        else:
                            try:
                                state.attempts += 1
                                futures[pool.submit(_run_cell, state.payload)] = state
                            except BrokenProcessPool:
                                broken = True
                                state.attempts -= 1
                                queue.append(state)
                    else:
                        cell = state.cell
                        state.failure = CellFailure(
                            model_name=cell.model_name,
                            split_index=cell.split_index,
                            seed=cell.seed,
                            attempts=state.attempts,
                            error_type=outcome["error_type"],
                            message=outcome["message"],
                            traceback=outcome["traceback"],
                        )
        queue.sort(key=lambda s: s.rank)


def _pool_death_failure(state: _CellState) -> CellFailure:
    cell = state.cell
    return CellFailure(
        model_name=cell.model_name,
        split_index=cell.split_index,
        seed=cell.seed,
        attempts=state.attempts,
        error_type="BrokenProcessPool",
        message="worker process died while running this cell",
    )


def execute_matrix(
    dataset,
    dataset_key: str,
    model_names: list[str],
    scale,
    splits: list,
    spec,
    seeds: tuple,
    use_service: bool,
    cache_store: bool | None,
    stsm_overrides: dict,
    jobs: int,
    store,
) -> dict[str, dict]:
    """Parallel drop-in for ``run_matrix``'s serial grid loop.

    Returns the exact serial output shape (and bit-identical metrics);
    raises :class:`SweepCellError` if any cell failed after its retry,
    once every other cell has completed.
    """
    from ..evaluation import average_metrics

    backend_spec, store_spec = _parent_specs(store)
    states: dict[int, _CellState] = {}
    index = 0
    for model_name in model_names:
        for split_index in range(len(splits)):
            for seed in seeds:
                payload = {
                    "dataset": dataset,
                    "dataset_key": dataset_key,
                    "model_name": model_name,
                    "scale": scale,
                    "split": splits[split_index],
                    "spec": spec,
                    "seed": seed,
                    "use_service": use_service,
                    "cache_store": cache_store,
                    "stsm_overrides": stsm_overrides,
                }
                states[index] = _CellState(
                    cell=SweepCell(index, model_name, split_index, seed),
                    payload=payload,
                )
                index += 1
    # Longest-expected-first submission; serial position breaks ties so
    # the schedule is deterministic.
    by_cost = sorted(
        states.values(),
        key=lambda s: (-expected_cell_cost(s.cell.model_name, scale), s.cell.index),
    )
    for rank, state in enumerate(by_cost):
        state.rank = rank

    _execute_cells(states, jobs, backend_spec, store_spec)

    failures = [s.failure for s in states.values() if s.failure is not None]
    completed = {
        (s.cell.model_name, s.cell.split_index, s.cell.seed): s.outcome["result"]
        for s in states.values()
        if s.outcome is not None
    }
    if store is not None and store.disk_dir is not None:
        # Make the workers' persisted artifacts visible to later fits in
        # this (parent) process without a restart.
        store.refresh_disk_index()
        if store.max_bytes is not None and not store.read_only:
            # Sweep-end collection over the *merged* index: with the
            # whole tier visible, the parent can compact duplicate
            # segments concurrent workers wrote and enforce the shared
            # quota across all of them.
            store.gc()
    if failures:
        failures.sort(key=lambda f: (f.model_name, f.split_index, f.seed))
        raise SweepCellError(failures, completed)

    # Per-cell sweep metrics land in the process-global registry (the
    # sweep runs in the parent; worker timings arrive with the merged
    # outcomes) so a sweep's cost profile is scrapeable alongside
    # serving metrics.
    registry = global_registry()
    cell_hist = registry.histogram(
        "repro_sweep_cell_seconds",
        "Wall-clock seconds per completed sweep cell",
        ("model",),
    )
    cells_total = registry.counter(
        "repro_sweep_cells_total",
        "Sweep cells merged, by outcome",
        ("model", "status"),
    )
    out: dict[str, dict] = {}
    index = 0
    for model_name in model_names:
        results = []
        for split_index in range(len(splits)):
            for seed in seeds:
                state = states[index]
                result = state.outcome["result"]
                result.extra["sweep"] = {
                    "jobs": jobs,
                    "cell_seconds": state.outcome["seconds"],
                    "worker_pid": state.outcome["pid"],
                    "attempts": state.attempts,
                    "schedule_rank": state.rank,
                }
                cell_hist.labels(model=model_name).observe(
                    float(state.outcome["seconds"])
                )
                cells_total.labels(
                    model=model_name,
                    status="retried" if state.attempts > 1 else "ok",
                ).inc()
                results.append(result)
                index += 1
        out[model_name] = {
            "metrics": average_metrics(results),
            "results": results,
            "train_seconds": float(
                np.mean([r.fit_report.train_seconds for r in results])
            ),
            "test_seconds": float(np.mean([r.test_seconds for r in results])),
        }
    return out
