"""Experiment scales.

Every experiment runs at one of two scales:

* ``small`` — reduced sensor counts, days, window lengths, and training
  budgets so the full suite runs on a laptop CPU in minutes.  This is the
  default for the pytest benchmarks.
* ``paper`` — the paper's sizes (Table 2 sensor counts, T = T' = 2 h for
  traffic / 24 h for air quality, four split average).  Expect hours per
  table on CPU.

Both scales exercise identical code paths; only sizes change.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..data.windows import WindowSpec

__all__ = ["ExperimentScale", "get_scale", "SMALL", "PAPER"]


@dataclass(frozen=True)
class ExperimentScale:
    """All size knobs for one scale tier."""

    name: str
    #: Per-dataset (num_sensors, num_days) overrides; None -> paper size.
    dataset_sizes: dict = field(default_factory=dict)
    #: Per-dataset (input_length, horizon).
    windows: dict = field(default_factory=dict)
    #: Split kinds averaged for "overall" tables.
    split_kinds: tuple = ("horizontal", "horizontal_flip", "vertical", "vertical_flip")
    #: STSM config overrides.
    stsm: dict = field(default_factory=dict)
    #: Baseline budget overrides.
    gegan: dict = field(default_factory=dict)
    ignnk: dict = field(default_factory=dict)
    increase: dict = field(default_factory=dict)
    #: Classical-baseline overrides (related-work methods, §2.2).
    kriging: dict = field(default_factory=dict)
    completion: dict = field(default_factory=dict)
    #: Evaluation caps.
    max_test_windows: int | None = 64

    def dataset_size(self, dataset_name: str) -> tuple[int | None, int | None]:
        """(num_sensors, num_days) for a preset key, or (None, None)."""
        return self.dataset_sizes.get(dataset_name, (None, None))

    def window_spec(self, dataset_name: str) -> WindowSpec:
        """The (T, T') window for a preset key."""
        length, horizon = self.windows[dataset_name]
        return WindowSpec(input_length=length, horizon=horizon)


SMALL = ExperimentScale(
    name="small",
    dataset_sizes={
        "pems-bay": (36, 4),
        "pems-07": (40, 4),
        "pems-08": (40, 4),
        "melbourne": (30, 6),
        "airq": (24, 30),
    },
    windows={
        "pems-bay": (12, 12),
        "pems-07": (12, 12),
        "pems-08": (12, 12),
        "melbourne": (8, 8),
        "airq": (12, 12),
    },
    split_kinds=("horizontal", "vertical"),
    stsm={
        "hidden_dim": 16,
        "num_blocks": 2,
        "tcn_levels": 2,
        "gcn_depth": 2,
        "epochs": 25,
        "patience": 6,
        "batch_size": 16,
        "window_stride": 2,
        "top_k": 10,
    },
    gegan={"iterations": 800},
    ignnk={"iterations": 150},
    increase={"iterations": 150},
    max_test_windows=16,
)

PAPER = ExperimentScale(
    name="paper",
    dataset_sizes={},  # paper sizes from the catalog
    windows={
        "pems-bay": (24, 24),
        "pems-07": (24, 24),
        "pems-08": (24, 24),
        "melbourne": (8, 8),  # 2 hours at 15-minute intervals
        "airq": (24, 24),
    },
    split_kinds=("horizontal", "horizontal_flip", "vertical", "vertical_flip"),
    stsm={
        "hidden_dim": 32,
        "num_blocks": 2,
        "tcn_levels": 2,
        "gcn_depth": 2,
        "epochs": 60,
        "patience": 10,
        "batch_size": 32,
        "window_stride": 1,
    },
    gegan={"iterations": 6000},
    ignnk={"iterations": 1500},
    increase={"iterations": 1500},
    max_test_windows=None,
)

BENCH = ExperimentScale(
    name="bench",
    dataset_sizes={
        "pems-bay": (28, 3),
        "pems-07": (28, 3),
        "pems-08": (28, 3),
        "melbourne": (22, 4),
        "airq": (18, 20),
    },
    windows={
        "pems-bay": (8, 8),
        "pems-07": (8, 8),
        "pems-08": (8, 8),
        "melbourne": (6, 6),
        "airq": (8, 8),
    },
    split_kinds=("horizontal", "vertical"),
    stsm={
        "hidden_dim": 12,
        "num_blocks": 2,
        "tcn_levels": 2,
        "gcn_depth": 2,
        "epochs": 15,
        "patience": 5,
        "batch_size": 16,
        "window_stride": 3,
        "top_k": 6,
    },
    gegan={"iterations": 400},
    ignnk={"iterations": 100},
    increase={"iterations": 100},
    max_test_windows=8,
)

_SCALES = {"small": SMALL, "paper": PAPER, "bench": BENCH}


def get_scale(name: str) -> ExperimentScale:
    """Look up a scale tier by name."""
    if name not in _SCALES:
        raise KeyError(f"unknown scale {name!r}; choose from {sorted(_SCALES)}")
    return _SCALES[name]
