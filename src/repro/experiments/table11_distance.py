"""Table 11 — distance functions (paper §5.2.6).

Paper: Euclidean distance (STSM) beats road-network distance used for
adjacency + pseudo-observations (STSM-rd-a) and for adjacency only
(STSM-rd-m); STSM-rd-m beats STSM-rd-a because Euclidean IDW yields better
pseudo-observations.
"""

from __future__ import annotations

from .configs import get_scale
from .reporting import format_table
from .runners import build_dataset, run_matrix

__all__ = ["run"]


def run(scale_name: str = "small", seed: int = 0) -> dict:
    """Compare STSM / STSM-rd-a / STSM-rd-m on PEMS-Bay."""
    scale = get_scale(scale_name)
    dataset = build_dataset("pems-bay", scale)
    names = ["STSM", "STSM-rd-a", "STSM-rd-m"]
    matrix = run_matrix(dataset, "pems-bay", names, scale, seed=seed)
    rows = [
        {
            "Model": name,
            "RMSE": matrix[name]["metrics"].rmse,
            "MAE": matrix[name]["metrics"].mae,
            "MAPE": matrix[name]["metrics"].mape,
            "R2": matrix[name]["metrics"].r2,
        }
        for name in names
    ]
    return {"rows": rows, "text": format_table(rows)}
