"""Extension experiment: robustness to missing-at-times training data.

The paper's taxonomy (§2.2) separates *data missing at times* (faulty
sensors, outages) from its own *missing region* problem — but in a real
deployment both hold at once: the instrumented region's history has gaps
AND the target region has no sensors.  This experiment crosses the two:
the observed sensors' training history is corrupted at increasing rates
(random dropout plus contiguous per-sensor outages, then repaired with
forward-fill imputation, the standard field practice), and each model is
re-trained and scored on the untouched unobserved region.

Expected shape: errors degrade gracefully (no cliff) for moderate rates —
the models read spatially aggregated signals, so imputed gaps at some
sensors are papered over by intact neighbours — with degradation
accelerating at high rates.  A model whose error *explodes* at 20%
missingness would be undeployable regardless of its clean-data rank.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..data import space_split, temporal_split
from ..data.missing import apply_missing, block_missing_mask, impute_forward_fill, random_missing_mask
from ..evaluation import evaluate_forecaster
from .configs import get_scale
from .reporting import format_table
from .runners import build_dataset, build_model

__all__ = ["run"]


def _corrupt_training_values(dataset, observed, train_steps, rate, rng):
    """Dataset copy whose observed training history has imputed gaps.

    Half the target rate comes from random cell dropout, half from
    contiguous per-sensor outage blocks — the two §2.2 failure modes.
    """
    values = dataset.values.copy()
    block = values[np.ix_(train_steps, observed)]
    mask = random_missing_mask(block.shape, rate / 2.0, rng)
    mask |= block_missing_mask(block.shape, rate / 2.0, rng)
    corrupted = impute_forward_fill(apply_missing(block, mask))
    values[np.ix_(train_steps, observed)] = corrupted
    return dataclasses.replace(
        dataset, values=values, name=f"{dataset.name}-corrupted"
    )


def run(
    scale_name: str = "small",
    dataset_key: str = "pems-bay",
    models: list[str] | None = None,
    rates: tuple[float, ...] = (0.0, 0.2, 0.4),
    seed: int = 0,
) -> dict:
    """Unobserved-region error vs training-history missingness rate."""
    scale = get_scale(scale_name)
    model_names = models if models is not None else ["INCREASE", "STSM"]
    dataset = build_dataset(dataset_key, scale)
    split = space_split(dataset.coords, "horizontal")
    spec = scale.window_spec(dataset_key)
    train_ix, _ = temporal_split(dataset.num_steps)
    rng = np.random.default_rng(seed)

    rows = []
    curves: dict[str, list[float]] = {name: [] for name in model_names}
    for rate in rates:
        if rate > 0:
            corrupted = _corrupt_training_values(
                dataset, split.observed, train_ix, rate, rng
            )
        else:
            corrupted = dataset
        for name in model_names:
            model = build_model(
                name, dataset_key, scale, num_observed=len(split.observed), seed=seed
            )
            result = evaluate_forecaster(
                model, corrupted, split, spec, max_test_windows=scale.max_test_windows
            )
            curves[name].append(result.metrics.rmse)
            rows.append(
                {
                    "MissingRate": f"{rate:.0%}",
                    "Model": name,
                    "RMSE": result.metrics.rmse,
                    "MAE": result.metrics.mae,
                    "R2": result.metrics.r2,
                }
            )

    text = (
        f"Training-history corruption on {dataset_key} ({scale.name} scale, "
        "forward-fill repair)\n" + format_table(rows)
    )
    return {"rows": rows, "curves": curves, "rates": list(rates), "text": text}
