"""Shared experiment machinery: model factory, dataset builder, runner."""

from __future__ import annotations

import numpy as np

from ..baselines import (
    GEGANForecaster,
    GPKrigingForecaster,
    HistoricalAverageForecaster,
    IDWPersistenceForecaster,
    IGNNKForecaster,
    INCREASEForecaster,
    MatrixCompletionForecaster,
    NearestObservedForecaster,
)
from ..core import STSM_VARIANTS, config_for_dataset
from ..data.dataset import SpatioTemporalDataset
from ..data.splits import SpaceSplit, space_split
from ..data.synthetic import make_dataset
from ..evaluation import EvaluationResult, average_metrics, evaluate_forecaster
from ..interfaces import Forecaster
from .configs import ExperimentScale

__all__ = [
    "BASELINE_NAMES",
    "CLASSICAL_NAMES",
    "NAIVE_NAMES",
    "STSM_NAMES",
    "build_dataset",
    "build_model",
    "run_matrix",
    "splits_for",
    "ratio_split",
]

BASELINE_NAMES = ("GE-GAN", "IGNNK", "INCREASE")
CLASSICAL_NAMES = ("GP-Kriging", "MatrixCompletion")
NAIVE_NAMES = ("HistoricalAverage", "NearestObserved", "IDW")
STSM_NAMES = ("STSM-RNC", "STSM-NC", "STSM-R", "STSM")


def build_dataset(
    dataset_key: str,
    scale: ExperimentScale,
    num_sensors: int | None = None,
    num_days: int | None = None,
    seed: int | None = None,
) -> SpatioTemporalDataset:
    """Build a preset at the scale's (or explicitly given) size."""
    scale_sensors, scale_days = scale.dataset_size(dataset_key)
    return make_dataset(
        dataset_key,
        num_sensors=num_sensors if num_sensors is not None else scale_sensors,
        num_days=num_days if num_days is not None else scale_days,
        seed=seed,
    )


def build_model(
    model_name: str,
    dataset_key: str,
    scale: ExperimentScale,
    num_observed: int | None = None,
    seed: int = 0,
    **stsm_overrides,
) -> Forecaster:
    """Instantiate a model by table name with scale-appropriate budgets.

    ``num_observed`` caps STSM's top-K at the number of observed locations
    (the paper's K values exceed small-scale sensor counts).
    """
    if model_name == "GE-GAN":
        return GEGANForecaster(seed=seed, **scale.gegan)
    if model_name == "IGNNK":
        return IGNNKForecaster(seed=seed, **scale.ignnk)
    if model_name == "INCREASE":
        return INCREASEForecaster(seed=seed, **scale.increase)
    if model_name == "GP-Kriging":
        return GPKrigingForecaster(seed=seed, **scale.kriging)
    if model_name == "MatrixCompletion":
        return MatrixCompletionForecaster(seed=seed, **scale.completion)
    if model_name == "HistoricalAverage":
        return HistoricalAverageForecaster()
    if model_name == "NearestObserved":
        return NearestObservedForecaster()
    if model_name == "IDW":
        return IDWPersistenceForecaster()
    if model_name in STSM_VARIANTS:
        overrides = dict(scale.stsm)
        overrides.update(stsm_overrides)
        overrides["seed"] = seed
        config = config_for_dataset(dataset_key, **overrides)
        if num_observed is not None and config.top_k > num_observed:
            config = config.replace(top_k=max(2, num_observed // 2))
        return STSM_VARIANTS[model_name](config=config)
    raise KeyError(f"unknown model {model_name!r}")


def splits_for(dataset: SpatioTemporalDataset, scale: ExperimentScale) -> list[SpaceSplit]:
    """The scale's split variants for a dataset."""
    return [space_split(dataset.coords, kind) for kind in scale.split_kinds]


def ratio_split(
    coords: np.ndarray, kind: str, unobserved_ratio: float
) -> SpaceSplit:
    """A split with a custom unobserved ratio (paper Fig. 8).

    The observed part keeps the paper's 4:1 train:validation proportion.
    """
    if not 0.0 < unobserved_ratio < 1.0:
        raise ValueError(f"unobserved_ratio must be in (0, 1), got {unobserved_ratio}")
    observed = 1.0 - unobserved_ratio
    fractions = (0.8 * observed, 0.2 * observed, unobserved_ratio)
    return space_split(coords, kind, fractions=fractions)


def run_matrix(
    dataset: SpatioTemporalDataset,
    dataset_key: str,
    model_names: list[str],
    scale: ExperimentScale,
    splits: list[SpaceSplit] | None = None,
    seed: int = 0,
    use_service: bool = False,
    cache_store: bool | None = None,
    **stsm_overrides,
) -> dict[str, dict]:
    """Evaluate each model on each split; return per-model averages.

    ``use_service`` serves every model's test predictions through the
    batched/cached :class:`~repro.serving.ForecastService` (identical
    outputs for stateless models; service counters appear in each
    result's ``extra``).

    ``cache_store`` controls cross-fit artifact reuse through the
    process-wide :class:`~repro.engine.ArtifactStore`: ``None`` follows
    the process opt-in (``$REPRO_CACHE_DIR`` / ``configure_store``),
    ``True``/``False`` force it on or off for this sweep.  With the
    store active, STSM fits share DTW pairs and masked adjacencies
    across seeds and hyper-parameters, served test windows are reused
    across repeated sweeps, and dirty entries are persisted to the disk
    tier before returning — all bit-exact, so sweep metrics are
    identical to the store-disabled path.

    Returns ``{model_name: {"metrics": Metrics, "results": [...],
    "train_seconds": float, "test_seconds": float}}``.
    """
    from ..engine import resolve_store  # local import: keep runners light

    store = resolve_store(cache_store)
    splits = splits if splits is not None else splits_for(dataset, scale)
    spec = scale.window_spec(dataset_key)
    out: dict[str, dict] = {}
    for model_name in model_names:
        results: list[EvaluationResult] = []
        for split in splits:
            overrides = dict(stsm_overrides)
            if cache_store is not None:
                # Reaches STSM-family configs; baseline builders ignore
                # the stsm_overrides channel entirely.
                overrides["cache_store"] = cache_store
            model = build_model(
                model_name,
                dataset_key,
                scale,
                num_observed=len(split.observed),
                seed=seed,
                **overrides,
            )
            results.append(
                evaluate_forecaster(
                    model,
                    dataset,
                    split,
                    spec,
                    max_test_windows=scale.max_test_windows,
                    use_service=use_service,
                    store=store if use_service else None,
                )
            )
        out[model_name] = {
            "metrics": average_metrics(results),
            "results": results,
            "train_seconds": float(np.mean([r.fit_report.train_seconds for r in results])),
            "test_seconds": float(np.mean([r.test_seconds for r in results])),
        }
    if store is not None:
        store.persist()  # flush served windows (fits persist themselves)
    return out
