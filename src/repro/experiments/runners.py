"""Shared experiment machinery: model factory, dataset builder, runner."""

from __future__ import annotations

import os
import time
from typing import Sequence

import numpy as np

from ..baselines import (
    GEGANForecaster,
    GPKrigingForecaster,
    HistoricalAverageForecaster,
    IDWPersistenceForecaster,
    IGNNKForecaster,
    INCREASEForecaster,
    MatrixCompletionForecaster,
    NearestObservedForecaster,
)
from ..core import STSM_VARIANTS, config_for_dataset
from ..data.dataset import SpatioTemporalDataset
from ..data.splits import SpaceSplit, space_split
from ..data.synthetic import make_dataset
from ..evaluation import EvaluationResult, average_metrics, evaluate_forecaster
from ..interfaces import Forecaster
from .configs import ExperimentScale

__all__ = [
    "BASELINE_NAMES",
    "CLASSICAL_NAMES",
    "NAIVE_NAMES",
    "STSM_NAMES",
    "build_dataset",
    "build_model",
    "evaluate_cell",
    "run_matrix",
    "splits_for",
    "ratio_split",
]

BASELINE_NAMES = ("GE-GAN", "IGNNK", "INCREASE")
CLASSICAL_NAMES = ("GP-Kriging", "MatrixCompletion")
NAIVE_NAMES = ("HistoricalAverage", "NearestObserved", "IDW")
STSM_NAMES = ("STSM-RNC", "STSM-NC", "STSM-R", "STSM")


def build_dataset(
    dataset_key: str,
    scale: ExperimentScale,
    num_sensors: int | None = None,
    num_days: int | None = None,
    seed: int | None = None,
) -> SpatioTemporalDataset:
    """Build a preset at the scale's (or explicitly given) size."""
    scale_sensors, scale_days = scale.dataset_size(dataset_key)
    return make_dataset(
        dataset_key,
        num_sensors=num_sensors if num_sensors is not None else scale_sensors,
        num_days=num_days if num_days is not None else scale_days,
        seed=seed,
    )


def build_model(
    model_name: str,
    dataset_key: str,
    scale: ExperimentScale,
    num_observed: int | None = None,
    seed: int = 0,
    **stsm_overrides,
) -> Forecaster:
    """Instantiate a model by table name with scale-appropriate budgets.

    ``num_observed`` caps STSM's top-K at the number of observed locations
    (the paper's K values exceed small-scale sensor counts).
    """
    if model_name == "GE-GAN":
        return GEGANForecaster(seed=seed, **scale.gegan)
    if model_name == "IGNNK":
        return IGNNKForecaster(seed=seed, **scale.ignnk)
    if model_name == "INCREASE":
        return INCREASEForecaster(seed=seed, **scale.increase)
    if model_name == "GP-Kriging":
        return GPKrigingForecaster(seed=seed, **scale.kriging)
    if model_name == "MatrixCompletion":
        return MatrixCompletionForecaster(seed=seed, **scale.completion)
    if model_name == "HistoricalAverage":
        return HistoricalAverageForecaster()
    if model_name == "NearestObserved":
        return NearestObservedForecaster()
    if model_name == "IDW":
        return IDWPersistenceForecaster()
    if model_name in STSM_VARIANTS:
        overrides = dict(scale.stsm)
        overrides.update(stsm_overrides)
        overrides["seed"] = seed
        config = config_for_dataset(dataset_key, **overrides)
        if num_observed is not None and config.top_k > num_observed:
            config = config.replace(top_k=max(2, num_observed // 2))
        return STSM_VARIANTS[model_name](config=config)
    raise KeyError(f"unknown model {model_name!r}")


def splits_for(dataset: SpatioTemporalDataset, scale: ExperimentScale) -> list[SpaceSplit]:
    """The scale's split variants for a dataset."""
    return [space_split(dataset.coords, kind) for kind in scale.split_kinds]


def ratio_split(
    coords: np.ndarray, kind: str, unobserved_ratio: float
) -> SpaceSplit:
    """A split with a custom unobserved ratio (paper Fig. 8).

    The observed part keeps the paper's 4:1 train:validation proportion.
    """
    if not 0.0 < unobserved_ratio < 1.0:
        raise ValueError(f"unobserved_ratio must be in (0, 1), got {unobserved_ratio}")
    observed = 1.0 - unobserved_ratio
    fractions = (0.8 * observed, 0.2 * observed, unobserved_ratio)
    return space_split(coords, kind, fractions=fractions)


def evaluate_cell(
    dataset: SpatioTemporalDataset,
    dataset_key: str,
    model_name: str,
    scale: ExperimentScale,
    split: SpaceSplit,
    spec,
    seed: int,
    use_service: bool = False,
    cache_store: bool | None = None,
    stsm_overrides: dict | None = None,
    store=None,
) -> EvaluationResult:
    """Build and evaluate one independent (model, split, seed) sweep cell.

    This is the unit both the serial ``run_matrix`` loop and the
    process-pool executor (:mod:`repro.experiments.parallel`) run: the
    model is constructed fresh from ``(dataset_key, seed)``, so the
    cell's outputs depend on nothing outside its arguments — which is
    what makes the parallel decomposition bit-identical to serial.
    """
    overrides = dict(stsm_overrides or {})
    if cache_store is not None:
        # Reaches STSM-family configs; baseline builders ignore the
        # stsm_overrides channel entirely.
        overrides["cache_store"] = cache_store
    model = build_model(
        model_name,
        dataset_key,
        scale,
        num_observed=len(split.observed),
        seed=seed,
        **overrides,
    )
    return evaluate_forecaster(
        model,
        dataset,
        split,
        spec,
        max_test_windows=scale.max_test_windows,
        use_service=use_service,
        store=store if use_service else None,
    )


def run_matrix(
    dataset: SpatioTemporalDataset,
    dataset_key: str,
    model_names: list[str],
    scale: ExperimentScale,
    splits: list[SpaceSplit] | None = None,
    seed: int = 0,
    seeds: Sequence[int] | None = None,
    use_service: bool = False,
    cache_store: bool | None = None,
    jobs: int | None = None,
    **stsm_overrides,
) -> dict[str, dict]:
    """Evaluate each model on each split (and seed); return per-model averages.

    ``use_service`` serves every model's test predictions through the
    batched/cached :class:`~repro.serving.ForecastService` (identical
    outputs for stateless models; service counters appear in each
    result's ``extra``).

    ``cache_store`` controls cross-fit artifact reuse through the
    process-wide :class:`~repro.engine.ArtifactStore`: ``None`` follows
    the process opt-in (``$REPRO_CACHE_DIR`` / ``open_store``),
    ``True``/``False`` force it on or off for this sweep.  With the
    store active, STSM fits share DTW pairs and masked adjacencies
    across seeds and hyper-parameters, served test windows are reused
    across repeated sweeps, and dirty entries are persisted to the disk
    tier — all bit-exact, so sweep metrics are identical to the
    store-disabled path.

    ``seeds`` widens the grid to model × split × seed: each model's
    ``results`` list covers every (split, seed) pair, split-major, and
    the averages span all of them.  Omitted, the grid is the classic
    model × split at the single ``seed``.

    ``jobs`` evaluates the grid's independent cells across that many
    worker processes (``None``: ``$REPRO_SWEEP_JOBS`` or serial; ``0``
    or negative: all cores — see :mod:`repro.experiments.parallel`).
    Each cell builds its own model from ``(dataset_key, seed)`` and the
    merge re-assembles the serial iteration order, so parallel metrics
    are bit-identical to serial; per-cell timing lands in each result's
    ``extra["sweep"]``.  A cell that fails (after one retry) surfaces a
    structured :class:`~repro.experiments.parallel.SweepCellError`
    without killing the rest of the sweep.

    Returns ``{model_name: {"metrics": Metrics, "results": [...],
    "train_seconds": float, "test_seconds": float}}``.
    """
    from ..engine import active_store  # local import: keep runners light
    from .parallel import execute_matrix, resolve_jobs

    store = active_store(cache_store)
    splits = splits if splits is not None else splits_for(dataset, scale)
    spec = scale.window_spec(dataset_key)
    seed_list = tuple(seeds) if seeds is not None else (seed,)
    if not seed_list:
        raise ValueError("seeds must be non-empty when given")
    num_jobs = resolve_jobs(jobs)
    num_cells = len(model_names) * len(splits) * len(seed_list)
    if num_jobs > 1 and num_cells > 1:
        return execute_matrix(
            dataset,
            dataset_key,
            model_names,
            scale,
            splits,
            spec,
            seed_list,
            use_service,
            cache_store,
            stsm_overrides,
            num_jobs,
            store,
        )
    out: dict[str, dict] = {}
    for model_name in model_names:
        results: list[EvaluationResult] = []
        for split in splits:
            for cell_seed in seed_list:
                began = time.perf_counter()
                result = evaluate_cell(
                    dataset,
                    dataset_key,
                    model_name,
                    scale,
                    split,
                    spec,
                    cell_seed,
                    use_service=use_service,
                    cache_store=cache_store,
                    stsm_overrides=stsm_overrides,
                    store=store,
                )
                result.extra["sweep"] = {
                    "jobs": 1,
                    "cell_seconds": time.perf_counter() - began,
                    "worker_pid": os.getpid(),
                    "attempts": 1,
                    "schedule_rank": len(results),
                }
                results.append(result)
        out[model_name] = {
            "metrics": average_metrics(results),
            "results": results,
            "train_seconds": float(np.mean([r.fit_report.train_seconds for r in results])),
            "test_seconds": float(np.mean([r.test_seconds for r in results])),
        }
    if store is not None and use_service:
        # Flush served windows; fits persist themselves (Trainer flushes
        # at fit end), so a service-less sweep has nothing new to write
        # and skips the redundant manifest round-trip entirely.
        store.persist()
    return out
