"""Figures 5, 6 and 11 — sensor maps and data partitioning.

These figures are illustrative in the paper (sensor distributions per
dataset, the train/validation/test partitioning on PEMS-Bay, and the ring
layout); with no plotting stack available they are reproduced as character
maps via :mod:`repro.viz`.
"""

from __future__ import annotations

import numpy as np

from ..data.splits import space_split, temporal_split
from ..viz import scatter_map, series_plot, split_map
from .configs import get_scale
from .runners import build_dataset

__all__ = ["run_fig5", "run_fig6", "run_fig11"]


def run_fig5(scale_name: str = "small", datasets: list[str] | None = None, seed: int = 0) -> dict:
    """Fig. 5: sensor distribution maps for all five datasets."""
    scale = get_scale(scale_name)
    keys = datasets if datasets is not None else [
        "pems-bay", "pems-07", "pems-08", "melbourne", "airq",
    ]
    maps = {}
    sections = []
    for key in keys:
        dataset = build_dataset(key, scale)
        art = scatter_map(dataset.coords, width=56, height=14)
        maps[key] = art
        sections.append(f"[{key}: {dataset.num_locations} sensors]\n{art}")
    return {"maps": maps, "rows": [{"Dataset": k} for k in keys], "text": "\n\n".join(sections)}


def run_fig6(scale_name: str = "small", seed: int = 0) -> dict:
    """Fig. 6: spatial partitioning + temporal split on PEMS-Bay.

    Left panel: the horizontal space split (T/V/U markers mirror the
    paper's red/pink/blue dots).  Right panel: one observed sensor's speed
    series with the 70/30 temporal split position marked.
    """
    scale = get_scale(scale_name)
    dataset = build_dataset("pems-bay", scale)
    split = space_split(dataset.coords, "horizontal")
    spatial = split_map(dataset.coords, split, width=56, height=14)

    train_ix, test_ix = temporal_split(dataset.num_steps)
    sensor = int(split.observed[0])
    series = dataset.values[:, sensor]
    # Overlay the training portion on the full curve: outside the training
    # period the overlay flattens to the series mean so the cut is visible.
    train_overlay = np.where(
        np.arange(len(series)) < len(train_ix), series, series.mean()
    )
    temporal = series_plot(
        {"train": train_overlay, "full": series},
        width=64,
        height=8,
    )
    text = (
        f"Spatial partitioning (horizontal):\n{spatial}\n\n"
        f"Temporal split: first {len(train_ix)} steps train, last {len(test_ix)} test\n"
        f"{temporal}"
    )
    return {
        "rows": [
            {"Set": "train", "Locations": len(split.train)},
            {"Set": "validation", "Locations": len(split.validation)},
            {"Set": "test", "Locations": len(split.test)},
        ],
        "text": text,
    }


def run_fig11(scale_name: str = "small", seed: int = 0) -> dict:
    """Fig. 11: the ring-split sensor layout on PEMS-Bay."""
    scale = get_scale(scale_name)
    dataset = build_dataset("pems-bay", scale)
    split = space_split(dataset.coords, "ring")
    art = split_map(dataset.coords, split, width=56, height=16)
    # Verify the ring property numerically alongside the picture.
    centre = dataset.coords.mean(axis=0)
    radii = {
        name: float(np.linalg.norm(dataset.coords[index] - centre, axis=1).mean())
        for name, index in (
            ("train", split.train),
            ("validation", split.validation),
            ("test", split.test),
        )
    }
    return {
        "rows": [{"Set": k, "MeanRadius": v} for k, v in radii.items()],
        "radii": radii,
        "text": art,
    }
