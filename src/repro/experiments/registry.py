"""Experiment registry: id -> runner, mirroring DESIGN.md's index."""

from __future__ import annotations

from . import (
    ablations,
    ext_classical,
    ext_horizon,
    ext_missingness,
    ext_multiregion,
    ext_progressive,
    ext_robustness,
    ext_uncertainty,
    figures_maps,
    fig7_adjacency,
    fig8_ratio,
    fig9_k,
    fig10_eps,
    table2_stats,
    table4_overall,
    table5_timing,
    table6_sensors,
    table7_density,
    table8_simgain,
    table9_ring,
    table10_trans,
    table11_distance,
)

__all__ = ["EXPERIMENTS", "run_experiment"]

EXPERIMENTS = {
    "table2_stats": table2_stats.run,
    "table4_overall": table4_overall.run,
    "table5_timing": table5_timing.run,
    "table6_sensors": table6_sensors.run,
    "table7_density": table7_density.run,
    "table8_simgain": table8_simgain.run,
    "table9_ring": table9_ring.run,
    "table10_trans": table10_trans.run,
    "table11_distance": table11_distance.run,
    "fig5_sensor_maps": figures_maps.run_fig5,
    "fig6_partitioning": figures_maps.run_fig6,
    "fig11_ring_map": figures_maps.run_fig11,
    "fig7_adjacency": fig7_adjacency.run,
    "fig8_ratio": fig8_ratio.run,
    "fig9_k": fig9_k.run,
    "fig10_eps": fig10_eps.run,
    "ablation_dtw": ablations.run_dtw,
    "ext_multiregion": ext_multiregion.run,
    "ext_missingness": ext_missingness.run,
    "ext_classical": ext_classical.run,
    "ext_uncertainty": ext_uncertainty.run,
    "ext_progressive": ext_progressive.run,
    "ext_horizon": ext_horizon.run,
    "ext_robustness": ext_robustness.run,
    "ablation_pseudo": ablations.run_pseudo,
    "ablation_temporal": ablations.run_temporal,
    "ablation_spatial": ablations.run_spatial,
}


def run_experiment(name: str, **kwargs) -> dict:
    """Run a registered experiment by id."""
    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[name](**kwargs)
