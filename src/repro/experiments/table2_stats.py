"""Table 2 — dataset statistics.

Paper values: PEMS-Bay 325 sensors / 5 min, PEMS-07 400 / 5 min,
PEMS-08 400 / 5 min, Melbourne 182 / 15 min, AirQ 63 / 1 h.  This runner
prints the same columns for the synthetic presets at the chosen scale.
"""

from __future__ import annotations

from ..data.synthetic import DATASET_MAKERS
from .configs import get_scale
from .reporting import format_table
from .runners import build_dataset

__all__ = ["run"]


def run(scale_name: str = "small", datasets: list[str] | None = None, seed: int = 0) -> dict:
    """Generate the dataset-statistics table."""
    scale = get_scale(scale_name)
    keys = datasets if datasets is not None else list(DATASET_MAKERS)
    rows = []
    for key in keys:
        dataset = build_dataset(key, scale)
        info = dataset.describe()
        rows.append(
            {
                "Dataset": key,
                "#Sensors": info["sensors"],
                "Interval": f"{info['interval_minutes']:g} min",
                "Days": info["days"],
                "Steps": info["steps"],
                "Mean": info["value_mean"],
                "Std": info["value_std"],
            }
        )
    return {"rows": rows, "text": format_table(rows)}
