"""CLI: ``python -m repro.experiments <experiment> [--scale bench|small|paper]``.

Examples::

    python -m repro.experiments table4_overall --scale small
    python -m repro.experiments fig8_ratio --datasets pems-bay melbourne
    python -m repro.experiments table9_ring --output results/table9.json
    python -m repro.experiments list
"""

from __future__ import annotations

import argparse
import inspect
import json
import os
import sys
import time
from pathlib import Path

from .registry import EXPERIMENTS, run_experiment


def _jsonable(value):
    """Coerce experiment outputs (Metrics, numpy scalars) to JSON types."""
    if hasattr(value, "as_dict"):
        return value.as_dict()
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item") and not isinstance(value, str):
        try:
            return value.item()
        except (AttributeError, ValueError):
            return str(value)
    return value


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce one of the paper's tables/figures.",
    )
    parser.add_argument("experiment", help="experiment id, or 'list' to enumerate")
    parser.add_argument("--scale", default="small", choices=("bench", "small", "paper"))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--datasets", nargs="*", default=None,
                        help="dataset keys (experiments that accept them)")
    parser.add_argument("--output", default=None,
                        help="write the result rows as JSON to this path")
    parser.add_argument("--backend", default=None,
                        help="array backend for all models (default: REPRO_BACKEND "
                             "env var or numpy_ref); see repro.backend")
    parser.add_argument("--device", default=None,
                        help="device for accelerator backends (cpu, cuda, cuda:N); "
                             "numpy backends accept cpu only")
    parser.add_argument("--dtype", default=None, choices=("float32", "float64"),
                        help="compute dtype for accelerator backends (float32 "
                             "trades bit-parity for speed)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="evaluate sweep grids (model x split x seed cells) "
                             "across this many worker processes; 0 or negative "
                             "means all CPU cores (default: $REPRO_SWEEP_JOBS "
                             "or serial).  Parallel metrics are bit-identical "
                             "to serial — see repro.experiments.parallel")
    parser.add_argument("--service", action="store_true",
                        help="route test predictions through the batched/cached "
                             "ForecastService (experiments that support it)")
    parser.add_argument("--serve-concurrency", type=int, default=0,
                        help="with --service: additionally replay the window "
                             "traffic from this many concurrent client threads "
                             "through the micro-batching scheduler and report "
                             "throughput + p50/p95/p99 latency")
    parser.add_argument("--serve-deadline-ms", type=float, default=2.0,
                        help="micro-batch deadline for --serve-concurrency")
    parser.add_argument("--serve-wire", action="store_true",
                        help="with --serve-concurrency: replay the same "
                             "concurrent traffic over an in-process HTTP "
                             "server and report Wire-prefixed "
                             "throughput/latency columns")
    from ..engine import add_cache_arguments

    add_cache_arguments(parser)
    args = parser.parse_args(argv)

    if args.backend is not None or args.device is not None or args.dtype is not None:
        from ..backend import resolve_backend, set_backend

        set_backend(resolve_backend(args.backend, args.device, args.dtype))

    from ..engine import open_store, store_config_from_args

    cache_config = store_config_from_args(args)
    if cache_config is not None:
        open_store(cache_config)

    if args.jobs is not None:
        # Environment-level default: every run_matrix call in the chosen
        # experiment (table runners, ablations, ratio sweeps) picks it
        # up without per-runner plumbing, and spawn workers re-pin it to
        # 1 so grids can never nest pools.
        from .parallel import JOBS_ENV

        os.environ[JOBS_ENV] = str(args.jobs)

    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0

    kwargs: dict = {"scale_name": args.scale, "seed": args.seed}
    if args.datasets is not None:
        kwargs["datasets"] = args.datasets
    if args.service:
        kwargs["use_service"] = True
    if args.serve_concurrency > 0:
        kwargs["use_service"] = True  # the concurrent replay rides on the service
        kwargs["serve_concurrency"] = args.serve_concurrency
        kwargs["serve_deadline_ms"] = args.serve_deadline_ms
    if args.serve_wire:
        kwargs["use_service"] = True
        kwargs["serve_wire"] = True
        kwargs.setdefault("serve_deadline_ms", args.serve_deadline_ms)
    # Drop optional kwargs the experiment's signature does not accept
    # (e.g. --service on a datasets-only experiment) instead of probing
    # with TypeError retries, which would both re-run expensive fits and
    # swallow genuine TypeErrors raised inside the experiment body.
    runner = EXPERIMENTS.get(args.experiment)
    if runner is not None:
        parameters = inspect.signature(runner).parameters
        accepts_any = any(
            p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
        )
        if not accepts_any:
            for key in ("use_service", "datasets", "serve_concurrency",
                        "serve_deadline_ms", "serve_wire"):
                if key in kwargs and key not in parameters:
                    kwargs.pop(key)
                    print(f"[note: {args.experiment} does not take --{key.replace('_', '-')}; ignored]")
    began = time.perf_counter()
    result = run_experiment(args.experiment, **kwargs)
    elapsed = time.perf_counter() - began
    print(result["text"])
    print(f"\n[{args.experiment} @ scale={args.scale} in {elapsed:.1f}s]")
    if args.output:
        from ..backend import get_backend

        payload = {
            "experiment": args.experiment,
            "scale": args.scale,
            "seed": args.seed,
            "backend": get_backend().name,
            "elapsed_seconds": round(elapsed, 2),
            "rows": _jsonable(result.get("rows", [])),
        }
        path = Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2))
        print(f"[wrote {path}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
