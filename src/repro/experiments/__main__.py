"""CLI: ``python -m repro.experiments <experiment> [--scale bench|small|paper]``.

Examples::

    python -m repro.experiments table4_overall --scale small
    python -m repro.experiments fig8_ratio --datasets pems-bay melbourne
    python -m repro.experiments table9_ring --output results/table9.json
    python -m repro.experiments list
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from .registry import EXPERIMENTS, run_experiment


def _jsonable(value):
    """Coerce experiment outputs (Metrics, numpy scalars) to JSON types."""
    if hasattr(value, "as_dict"):
        return value.as_dict()
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item") and not isinstance(value, str):
        try:
            return value.item()
        except (AttributeError, ValueError):
            return str(value)
    return value


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce one of the paper's tables/figures.",
    )
    parser.add_argument("experiment", help="experiment id, or 'list' to enumerate")
    parser.add_argument("--scale", default="small", choices=("bench", "small", "paper"))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--datasets", nargs="*", default=None,
                        help="dataset keys (experiments that accept them)")
    parser.add_argument("--output", default=None,
                        help="write the result rows as JSON to this path")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0

    kwargs: dict = {"scale_name": args.scale, "seed": args.seed}
    if args.datasets is not None:
        kwargs["datasets"] = args.datasets
    began = time.perf_counter()
    try:
        result = run_experiment(args.experiment, **kwargs)
    except TypeError:
        # Experiment does not take a datasets argument.
        kwargs.pop("datasets", None)
        result = run_experiment(args.experiment, **kwargs)
    elapsed = time.perf_counter() - began
    print(result["text"])
    print(f"\n[{args.experiment} @ scale={args.scale} in {elapsed:.1f}s]")
    if args.output:
        payload = {
            "experiment": args.experiment,
            "scale": args.scale,
            "seed": args.seed,
            "elapsed_seconds": round(elapsed, 2),
            "rows": _jsonable(result.get("rows", [])),
        }
        path = Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2))
        print(f"[wrote {path}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
