"""Figure 8 — RMSE vs. unobserved ratio (paper §5.2.1(2)).

Paper: the unobserved ratio varies from 0.2 to 0.5; STSM's RMSE curve sits
below INCREASE's at almost every point on every dataset (one exception at
ratio 0.2 on PEMS-08).
"""

from __future__ import annotations

from ..evaluation import average_metrics, evaluate_forecaster
from .configs import get_scale
from .reporting import format_table
from .runners import build_dataset, build_model, ratio_split

__all__ = ["run", "RATIOS"]

RATIOS = (0.2, 0.3, 0.4, 0.5)


def run(
    scale_name: str = "small",
    datasets: list[str] | None = None,
    models: list[str] | None = None,
    ratios: tuple = RATIOS,
    seed: int = 0,
) -> dict:
    """Sweep the unobserved ratio for STSM vs INCREASE."""
    scale = get_scale(scale_name)
    keys = datasets if datasets is not None else ["pems-bay"]
    model_names = models if models is not None else ["STSM", "INCREASE"]
    kinds = scale.split_kinds
    rows = []
    for key in keys:
        dataset = build_dataset(key, scale)
        spec = scale.window_spec(key)
        for ratio in ratios:
            splits = [ratio_split(dataset.coords, kind, ratio) for kind in kinds]
            for model_name in model_names:
                results = []
                for split in splits:
                    model = build_model(
                        model_name, key, scale, num_observed=len(split.observed), seed=seed
                    )
                    results.append(
                        evaluate_forecaster(
                            model, dataset, split, spec,
                            max_test_windows=scale.max_test_windows,
                        )
                    )
                metrics = average_metrics(results)
                rows.append(
                    {
                        "Dataset": key,
                        "Ratio": ratio,
                        "Model": model_name,
                        "RMSE": metrics.rmse,
                        "MAE": metrics.mae,
                        "R2": metrics.r2,
                    }
                )
    return {"rows": rows, "text": format_table(rows)}
