"""Figure 8 — RMSE vs. unobserved ratio (paper §5.2.1(2)).

Paper: the unobserved ratio varies from 0.2 to 0.5; STSM's RMSE curve sits
below INCREASE's at almost every point on every dataset (one exception at
ratio 0.2 on PEMS-08).

Each ratio's model × split grid runs through :func:`run_matrix`, so the
sweep parallelises across worker processes with ``jobs`` /
``$REPRO_SWEEP_JOBS`` (bit-identical metrics either way).
"""

from __future__ import annotations

from .configs import get_scale
from .reporting import format_table
from .runners import build_dataset, ratio_split, run_matrix

__all__ = ["run", "RATIOS"]

RATIOS = (0.2, 0.3, 0.4, 0.5)


def run(
    scale_name: str = "small",
    datasets: list[str] | None = None,
    models: list[str] | None = None,
    ratios: tuple = RATIOS,
    seed: int = 0,
    jobs: int | None = None,
) -> dict:
    """Sweep the unobserved ratio for STSM vs INCREASE."""
    scale = get_scale(scale_name)
    keys = datasets if datasets is not None else ["pems-bay"]
    model_names = models if models is not None else ["STSM", "INCREASE"]
    kinds = scale.split_kinds
    rows = []
    for key in keys:
        dataset = build_dataset(key, scale)
        for ratio in ratios:
            splits = [ratio_split(dataset.coords, kind, ratio) for kind in kinds]
            matrix = run_matrix(
                dataset, key, model_names, scale, splits=splits, seed=seed, jobs=jobs
            )
            for model_name in model_names:
                metrics = matrix[model_name]["metrics"]
                rows.append(
                    {
                        "Dataset": key,
                        "Ratio": ratio,
                        "Model": model_name,
                        "RMSE": metrics.rmse,
                        "MAE": metrics.mae,
                        "R2": metrics.r2,
                    }
                )
    return {"rows": rows, "text": format_table(rows)}
