"""Table 8 — similarity gain of selective over random masking.

Paper: across datasets, the sub-graphs chosen by selective masking are
5.4%-19.7% more similar (embedding cosine to the unobserved region) than
randomly masked ones.

This experiment exercises only the masking machinery: it draws many masks
under both strategies and compares the mean similarity of the masked
locations to the unobserved region.
"""

from __future__ import annotations

import numpy as np

from ..core.features import compute_subgraph_similarity
from ..core.masking import SelectiveMasker, random_subgraph_mask
from ..data.splits import space_split
from ..graph.adjacency import gaussian_kernel_adjacency
from ..graph.distances import euclidean_distance_matrix
from .configs import get_scale
from .reporting import format_table
from .runners import build_dataset

__all__ = ["run", "similarity_gain"]


def similarity_gain(
    dataset,
    split,
    epsilon_sg: float = 0.5,
    sigma_scale: float = 0.35,
    mask_ratio: float = 0.5,
    top_k: int = 10,
    draws: int = 50,
    seed: int = 0,
) -> dict:
    """Mean masked-location similarity under both strategies plus gain%."""
    observed = split.observed
    distances = euclidean_distance_matrix(dataset.coords)
    off = distances[~np.eye(len(distances), dtype=bool)]
    sigma = max(float(off.std()) * sigma_scale, 1e-9)
    a_sg_full = gaussian_kernel_adjacency(distances, threshold=epsilon_sg, sigma=sigma)
    a_sg_obs = a_sg_full[np.ix_(observed, observed)]
    similarity = compute_subgraph_similarity(
        dataset.features, dataset.coords, a_sg_full, observed, split.unobserved
    )
    top_k = min(top_k, len(observed))
    masker = SelectiveMasker(similarity, a_sg_obs, mask_ratio, top_k=top_k)
    rng_sel = np.random.default_rng(seed)
    rng_rand = np.random.default_rng(seed + 1)
    scores = similarity.embedding_similarity

    def _mean_similarity(mask_local: np.ndarray) -> float:
        return float(scores[mask_local].mean())

    selective = np.mean(
        [_mean_similarity(masker.draw(rng_sel)) for _ in range(draws)]
    )
    random = np.mean(
        [
            _mean_similarity(random_subgraph_mask(a_sg_obs, mask_ratio, rng_rand))
            for _ in range(draws)
        ]
    )
    gain = (selective - random) / abs(random) * 100.0 if random != 0 else float("nan")
    return {"selective": float(selective), "random": float(random), "gain_percent": float(gain)}


def run(scale_name: str = "small", datasets: list[str] | None = None, seed: int = 0) -> dict:
    """Similarity-gain table across datasets."""
    scale = get_scale(scale_name)
    keys = datasets if datasets is not None else [
        "pems-bay", "pems-07", "pems-08", "melbourne", "airq",
    ]
    rows = []
    for key in keys:
        dataset = build_dataset(key, scale)
        split = space_split(dataset.coords, "horizontal")
        # Match the paper's K / N_o selectivity (K=35 of ~160 observed on
        # the freeway datasets, K=5 of ~31 on AirQ: roughly a fifth).
        top_k = max(3, len(split.observed) // 5)
        stats = similarity_gain(dataset, split, top_k=top_k, seed=seed)
        rows.append(
            {
                "Dataset": key,
                "SelectiveSim": stats["selective"],
                "RandomSim": stats["random"],
                "Gain%": round(stats["gain_percent"], 2),
            }
        )
    return {"rows": rows, "text": format_table(rows)}
