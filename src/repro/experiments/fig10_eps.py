"""Figure 10 — impact of the sub-graph threshold ε_sg (paper §5.2.3(2)).

Paper: ε_sg ∈ {0.4 .. 0.8} controls sub-graph size (larger = smaller
sub-graphs); all four STSM variants are robust on freeway datasets, with
small fluctuations relative to the observation magnitudes.
"""

from __future__ import annotations

from ..data.splits import space_split
from .configs import get_scale
from .reporting import format_table
from .runners import build_dataset, run_matrix

__all__ = ["run", "THRESHOLDS"]

THRESHOLDS = (0.4, 0.5, 0.6, 0.7, 0.8)


def run(
    scale_name: str = "small",
    dataset_key: str = "pems-bay",
    models: list[str] | None = None,
    thresholds: tuple = THRESHOLDS,
    seed: int = 0,
) -> dict:
    """Sweep ε_sg for all four STSM variants."""
    scale = get_scale(scale_name)
    model_names = models if models is not None else ["STSM", "STSM-R", "STSM-NC", "STSM-RNC"]
    dataset = build_dataset(dataset_key, scale)
    split = space_split(dataset.coords, "horizontal")
    rows = []
    for threshold in thresholds:
        matrix = run_matrix(
            dataset, dataset_key, model_names, scale,
            splits=[split], seed=seed, epsilon_sg=threshold,
        )
        for model_name in model_names:
            rows.append(
                {
                    "Threshold": threshold,
                    "Model": model_name,
                    "RMSE": matrix[model_name]["metrics"].rmse,
                    "R2": matrix[model_name]["metrics"].r2,
                }
            )
    return {"rows": rows, "text": format_table(rows)}
