"""Extension ablations beyond the paper's tables.

DESIGN.md §6 calls out two design choices the paper asserts but does not
ablate; these runners quantify them:

* ``ablation_dtw`` — the temporal-similarity adjacency: full STSM vs
  q_kk = q_ku = 0 (DTW branch sees an empty graph, i.e. self-loops only).
* ``ablation_pseudo`` — the pseudo-observation strategy: top-k IDW
  (repository default) vs the literal all-source Eq. 3 vs k = 1
  (nearest-copy).
"""

from __future__ import annotations

from ..data.splits import space_split
from .configs import get_scale
from .reporting import format_table
from .runners import build_dataset, run_matrix

__all__ = ["run_dtw", "run_pseudo", "run_temporal", "run_spatial"]


def run_dtw(scale_name: str = "small", dataset_key: str = "pems-bay", seed: int = 0,
            jobs: int | None = None) -> dict:
    """STSM with and without the DTW adjacency branch."""
    scale = get_scale(scale_name)
    dataset = build_dataset(dataset_key, scale)
    split = space_split(dataset.coords, "horizontal")
    rows = []
    for label, overrides in (
        ("STSM (with A_dtw)", {}),
        ("STSM (no A_dtw)", {"q_kk": 0, "q_ku": 0}),
    ):
        matrix = run_matrix(
            dataset, dataset_key, ["STSM"], scale, splits=[split], seed=seed, jobs=jobs,
            **overrides
        )
        metrics = matrix["STSM"]["metrics"]
        rows.append({"Variant": label, "RMSE": metrics.rmse, "MAE": metrics.mae, "R2": metrics.r2})
    return {"rows": rows, "text": format_table(rows)}


def run_pseudo(scale_name: str = "small", dataset_key: str = "pems-bay", seed: int = 0,
               jobs: int | None = None) -> dict:
    """Pseudo-observation source strategies."""
    scale = get_scale(scale_name)
    dataset = build_dataset(dataset_key, scale)
    split = space_split(dataset.coords, "horizontal")
    rows = []
    for label, k in (
        ("IDW top-3 (default)", 3),
        ("IDW all sources (Eq. 3 literal)", None),
        ("nearest copy (k=1)", 1),
    ):
        matrix = run_matrix(
            dataset, dataset_key, ["STSM"], scale, splits=[split], seed=seed, jobs=jobs,
            pseudo_k=k
        )
        metrics = matrix["STSM"]["metrics"]
        rows.append({"Variant": label, "RMSE": metrics.rmse, "MAE": metrics.mae, "R2": metrics.r2})
    return {"rows": rows, "text": format_table(rows)}


def run_spatial(scale_name: str = "small", dataset_key: str = "pems-bay", seed: int = 0,
                jobs: int | None = None) -> dict:
    """Spatial-module sweep: gated GCN (paper) vs graph attention.

    The spatial mirror of Table 10: GAT learns edge weights from node
    features where the GCN fixes them by degree normalisation.  With a
    contiguous unobserved region the targets' features at test time are
    pseudo-observations, so attention computed *from* those features is
    noisier than the fixed weights — the interesting question is how much
    that costs (or whether the extra capacity wins anyway).
    """
    scale = get_scale(scale_name)
    dataset = build_dataset(dataset_key, scale)
    split = space_split(dataset.coords, "horizontal")
    rows = []
    hidden = scale.stsm.get("hidden_dim", 32)
    for module in ("gcn", "gat"):
        overrides = {"spatial_module": module}
        if module == "gat":
            overrides["gat_heads"] = 2 if hidden % 2 == 0 else 1
        matrix = run_matrix(
            dataset, dataset_key, ["STSM"], scale, splits=[split], seed=seed, jobs=jobs,
            **overrides
        )
        info = matrix["STSM"]
        rows.append(
            {
                "SpatialModule": module,
                "RMSE": info["metrics"].rmse,
                "MAE": info["metrics"].mae,
                "R2": info["metrics"].r2,
                "Train(s)": round(info["train_seconds"], 2),
            }
        )
    return {"rows": rows, "text": format_table(rows)}


def run_temporal(scale_name: str = "small", dataset_key: str = "pems-bay", seed: int = 0,
                 jobs: int | None = None) -> dict:
    """Temporal-module sweep: dilated TCN vs GRU vs transformer.

    Extends Table 10: the paper swaps TCN for a transformer; the GRU row
    adds the recurrent choice its related-work section argues against
    (slower, weaker on long windows).
    """
    scale = get_scale(scale_name)
    dataset = build_dataset(dataset_key, scale)
    split = space_split(dataset.coords, "horizontal")
    rows = []
    for module in ("tcn", "gru", "transformer"):
        matrix = run_matrix(
            dataset, dataset_key, ["STSM"], scale,
            splits=[split], seed=seed, jobs=jobs, temporal_module=module,
        )
        info = matrix["STSM"]
        rows.append(
            {
                "TemporalModule": module,
                "RMSE": info["metrics"].rmse,
                "R2": info["metrics"].r2,
                "Train(s)": round(info["train_seconds"], 2),
            }
        )
    return {"rows": rows, "text": format_table(rows)}
