"""Table 7 — varying the density of sensors (PEMS-08 area).

Paper: the sensor count on the fixed PEMS-08 area grows from 200 to 964,
so density increases; STSM wins in 19 of 20 cells.

Here the area (extent) is fixed and ``num_sensors`` grows, which raises
density exactly as in the paper.
"""

from __future__ import annotations

from .configs import get_scale
from .reporting import format_table
from .runners import build_dataset, run_matrix

__all__ = ["run"]

_PAPER_COUNTS = (200, 400, 600, 800, 964)
_SMALL_COUNTS = (16, 24, 32, 40, 48)


def run(
    scale_name: str = "small",
    models: list[str] | None = None,
    seed: int = 0,
    counts: tuple | None = None,
) -> dict:
    """Sweep sensor density on the PEMS-08 preset area."""
    scale = get_scale(scale_name)
    if counts is None:
        counts = _PAPER_COUNTS if scale.name == "paper" else _SMALL_COUNTS
    model_names = models if models is not None else ["GE-GAN", "IGNNK", "INCREASE", "STSM"]
    rows = []
    for count in counts:
        dataset = build_dataset("pems-08", scale, num_sensors=count)
        # Average over the scale's split variants to damp small-sample noise.
        matrix = run_matrix(dataset, "pems-08", model_names, scale, seed=seed)
        for model_name in model_names:
            metrics = matrix[model_name]["metrics"]
            rows.append(
                {
                    "#Sensors": count,
                    "Model": model_name,
                    "RMSE": metrics.rmse,
                    "MAE": metrics.mae,
                    "MAPE": metrics.mape,
                    "R2": metrics.r2,
                }
            )
    return {"rows": rows, "text": format_table(rows)}
