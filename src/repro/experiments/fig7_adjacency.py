"""Figure 7 — adjacency matrix sparsity (A_s vs A_sg on PEMS-Bay).

Paper: A_sg (the sub-graph matrix, larger threshold ε_sg) has visibly more
blank space than A_s — i.e. it is sparser, keeping sub-graphs small.

This runner reports the numeric sparsity statistics behind the figure
(density, mean degree, isolated-node count) instead of an image.
"""

from __future__ import annotations

import numpy as np

from ..core import config_for_dataset
from ..graph.adjacency import adjacency_density, gaussian_kernel_adjacency
from ..graph.distances import euclidean_distance_matrix
from .configs import get_scale
from .reporting import format_table
from .runners import build_dataset

__all__ = ["run"]


def run(scale_name: str = "small", dataset_key: str = "pems-bay", seed: int = 0) -> dict:
    """Density statistics for A_s and A_sg."""
    scale = get_scale(scale_name)
    dataset = build_dataset(dataset_key, scale)
    config = config_for_dataset(dataset_key, **{k: v for k, v in scale.stsm.items() if k == "top_k"})
    distances = euclidean_distance_matrix(dataset.coords)
    off = distances[~np.eye(len(distances), dtype=bool)]
    sigma = max(float(off.std()) * config.sigma_scale, 1e-9)
    rows = []
    for name, threshold in (("A_s", config.epsilon_s), ("A_sg", config.epsilon_sg)):
        adjacency = gaussian_kernel_adjacency(distances, threshold=threshold, sigma=sigma)
        degrees = adjacency.sum(axis=1)
        rows.append(
            {
                "Matrix": name,
                "Threshold": threshold,
                "Density": adjacency_density(adjacency),
                "MeanDegree": float(degrees.mean()),
                "Isolated": int((degrees == 0).sum()),
            }
        )
    sparser = rows[1]["Density"] < rows[0]["Density"]
    return {"rows": rows, "a_sg_sparser": bool(sparser), "text": format_table(rows)}
