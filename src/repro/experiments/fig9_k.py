"""Figure 9 — impact of top-K (paper §5.2.3(1)).

Paper: K ∈ {15, 25, 35, 45, 55} on traffic datasets ({5, 10, 15, 20} on
AirQ); STSM and STSM-NC are robust to K on the freeway datasets and more
sensitive on the small datasets.
"""

from __future__ import annotations

from ..data.splits import space_split
from .configs import get_scale
from .reporting import format_table
from .runners import build_dataset, run_matrix

__all__ = ["run"]

PAPER_KS = (15, 25, 35, 45, 55)
PAPER_KS_AIRQ = (5, 10, 15, 20)
SMALL_KS = (4, 6, 8, 10, 12)


def run(
    scale_name: str = "small",
    dataset_key: str = "pems-bay",
    models: list[str] | None = None,
    ks: tuple | None = None,
    seed: int = 0,
) -> dict:
    """Sweep the top-K parameter for the selective-masking variants."""
    scale = get_scale(scale_name)
    if ks is None:
        if scale.name == "paper":
            ks = PAPER_KS_AIRQ if dataset_key == "airq" else PAPER_KS
        else:
            ks = SMALL_KS
    model_names = models if models is not None else ["STSM", "STSM-NC"]
    dataset = build_dataset(dataset_key, scale)
    split = space_split(dataset.coords, "horizontal")
    rows = []
    for k in ks:
        matrix = run_matrix(
            dataset, dataset_key, model_names, scale, splits=[split], seed=seed, top_k=k
        )
        for model_name in model_names:
            rows.append(
                {
                    "K": k,
                    "Model": model_name,
                    "RMSE": matrix[model_name]["metrics"].rmse,
                    "R2": matrix[model_name]["metrics"].r2,
                }
            )
    return {"rows": rows, "text": format_table(rows)}
