"""Extension experiment: classical methods vs the neural models.

The paper's related work (§2.2) positions Gaussian-process regression as
the classic kriging solution ("low efficiency and poor scalability") and
tensor/matrix completion as the transductive alternative, before arguing
for inductive neural models.  The paper never measures them; this
experiment fills that gap on the contiguous-unobserved-region task so the
whole method lineage appears in one table.

Measured shape: at toy (bench) scale all four methods tie — there is too
little structure for learning to pay off.  At ``small`` scale the lineage
separates exactly as the paper's narrative predicts: STSM < INCREASE <
matrix completion < GP kriging, the GP's stationary covariance unable to
follow the heterogeneous corridor (negative R²).  Train-time columns show
the classical methods' flip side: the GP fits in milliseconds here but
owns a cubic solve as the region grows.
"""

from __future__ import annotations

from .configs import get_scale
from .reporting import format_table
from .runners import build_dataset, run_matrix, splits_for

__all__ = ["run"]

DEFAULT_MODELS = ["GP-Kriging", "MatrixCompletion", "INCREASE", "STSM"]


def run(
    scale_name: str = "small",
    dataset_key: str = "pems-bay",
    models: list[str] | None = None,
    seed: int = 0,
) -> dict:
    """Accuracy + wall-clock comparison including the classical methods."""
    scale = get_scale(scale_name)
    model_names = models if models is not None else list(DEFAULT_MODELS)
    dataset = build_dataset(dataset_key, scale)
    splits = splits_for(dataset, scale)
    matrix = run_matrix(dataset, dataset_key, model_names, scale, splits=splits, seed=seed)

    rows = []
    for name in model_names:
        info = matrix[name]
        metrics = info["metrics"]
        rows.append(
            {
                "Model": name,
                "RMSE": metrics.rmse,
                "MAE": metrics.mae,
                "MAPE": metrics.mape,
                "R2": metrics.r2,
                "Train(s)": info["train_seconds"],
                "Test(s)": info["test_seconds"],
            }
        )
    text = (
        f"Classical vs neural on {dataset_key} ({scale.name} scale, "
        f"{len(splits)} splits averaged)\n" + format_table(rows)
    )
    return {"rows": rows, "matrix": matrix, "text": text}
