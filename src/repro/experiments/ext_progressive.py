"""Extension experiment: progressive sensor deployment.

The paper motivates its problem with "sensors are deployed progressively
from one region to another (one such scenario has been observed in Hong
Kong)" (§1, case 1) but never simulates the progression itself.  This
experiment does: a deployment corridor between the always-observed base
region and a permanently sensor-free core comes online stage by stage,
and every stage is scored on the *same* core locations.

Two questions this answers for a deployment planner:

1. How much does each deployment increment improve forecasts for the
   still-unsensed core?  (The marginal value of the next batch of
   sensors.)
2. Is the improvement monotone?

The measured answer to (2) is **no**, and the mechanism is instructive:
on the synthetic city the corridor's middle zone behaves differently from
the core (urban arterial dynamics vs the core's roads), so at the
half-deployed stage the *nearest* observed sensors are dissimilar ones.
Locality-based predictors are actively misled — nearest-copy and GP
kriging roughly double their core RMSE at that stage — while the global
IDW reference, which averages all sensors, is never misled (flat to
improving across stages).  The learned models sit in between: they dip at
half deployment and recover once near-core sensors arrive.  This is
precisely the paper's argument for weighting by *similarity* rather than
proximity alone (§4.1).
"""

from __future__ import annotations

import numpy as np

from ..data.splits import progressive_splits
from ..evaluation import compute_metrics, forecast_window_starts
from .configs import get_scale
from .reporting import format_table
from .runners import build_dataset, build_model

__all__ = ["run"]


def run(
    scale_name: str = "small",
    dataset_key: str = "pems-bay",
    models: list[str] | None = None,
    stages: tuple[float, ...] = (0.0, 0.5, 1.0),
    seed: int = 0,
) -> dict:
    """Score each model on the fixed core at each deployment stage."""
    scale = get_scale(scale_name)
    model_names = models if models is not None else ["IDW", "INCREASE", "STSM"]
    dataset = build_dataset(dataset_key, scale)
    spec = scale.window_spec(dataset_key)
    splits, core = progressive_splits(dataset.coords, "horizontal", stages=stages)
    starts = forecast_window_starts(dataset, spec, max_windows=scale.max_test_windows)
    core_truth = np.stack(
        [
            dataset.values[s + spec.input_length : s + spec.total][:, core]
            for s in starts
        ]
    )
    train_ix = np.arange(int(round(dataset.num_steps * 0.7)))

    rows = []
    core_rmse: dict[str, list[float]] = {name: [] for name in model_names}
    for stage, split in zip(stages, splits):
        # Column positions of the core inside this stage's unobserved set.
        positions = np.searchsorted(split.unobserved, core)
        for name in model_names:
            model = build_model(
                name, dataset_key, scale, num_observed=len(split.observed), seed=seed
            )
            model.fit(dataset, split, spec, train_ix)
            predictions = model.predict(starts)[:, :, positions]
            metrics = compute_metrics(predictions, core_truth)
            core_rmse[name].append(metrics.rmse)
            rows.append(
                {
                    "Stage": f"{stage:.0%}",
                    "Observed": len(split.observed),
                    "Model": name,
                    "CoreRMSE": metrics.rmse,
                    "CoreMAE": metrics.mae,
                    "CoreR2": metrics.r2,
                }
            )

    text = (
        f"Progressive deployment on {dataset_key} ({scale.name} scale; core = "
        f"{len(core)} never-sensed locations)\n" + format_table(rows)
    )
    return {"rows": rows, "core_rmse": core_rmse, "stages": list(stages), "text": text}
