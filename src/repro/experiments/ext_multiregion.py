"""Extension experiment: multiple unobserved regions (paper future work).

The paper's conclusion announces the extension to "multiple unobserved
regions at the same time"; this experiment implements and measures it.
For 1, 2 and 3 disjoint unobserved patches (same total unobserved ratio),
it compares full STSM with multi-region-aware selective masking against
STSM-R (random masking), quantifying whether region-aware masking still
pays off when the targets are scattered patches rather than one block.
"""

from __future__ import annotations

import numpy as np

from ..core.multiregion import multi_region_split
from .configs import get_scale
from .reporting import format_table
from .runners import build_dataset, run_matrix

__all__ = ["run"]


def run(
    scale_name: str = "small",
    dataset_key: str = "pems-bay",
    region_counts: tuple = (1, 2, 3),
    seed: int = 0,
) -> dict:
    """Sweep the number of unobserved regions."""
    scale = get_scale(scale_name)
    dataset = build_dataset(dataset_key, scale)
    rows = []
    for k in region_counts:
        split = multi_region_split(
            dataset.coords, num_regions=k, rng=np.random.default_rng(seed + k)
        )
        matrix = run_matrix(
            dataset, dataset_key, ["STSM", "STSM-R"], scale,
            splits=[split], seed=seed, num_unobserved_regions=k,
        )
        for name in ("STSM", "STSM-R"):
            metrics = matrix[name]["metrics"]
            rows.append(
                {
                    "Regions": k,
                    "Model": name,
                    "RMSE": metrics.rmse,
                    "MAE": metrics.mae,
                    "R2": metrics.r2,
                }
            )
    return {"rows": rows, "text": format_table(rows)}
