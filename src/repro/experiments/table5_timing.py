"""Table 5 — model training and testing time.

Paper: GE-GAN needs hours of training (slow GAN convergence); IGNNK and
INCREASE train fastest but are the slowest at test time; STSM tests much
faster than the kriging baselines (1-2 s vs 7-10 s).

Reproduction target (shape): relative ordering of test times — GE-GAN and
STSM faster at test than the per-node kriging loop per prediction
workload — and GE-GAN's training-cost disadvantage when its iteration
budget reflects its slow convergence.

Test time is measured as the minimum of three ``predict`` calls over the
same window set (single calls at reduced scale are sub-10 ms and dominated
by scheduler noise).

``use_service=True`` routes every timing repeat through a
:class:`~repro.serving.ForecastService` instead of raw ``predict`` calls:
the first repeat is a cold coalesced batch, later repeats replay the same
window traffic and are served from the result cache, and the service's
cache-hit / coalesce counters are folded into the report (columns from
:func:`~repro.experiments.reporting.service_columns`; ``Warm(s)`` is the
best cache-served repeat).

``serve_concurrency > 0`` (with ``use_service``) additionally replays the
window traffic from that many concurrent client threads through a
:class:`~repro.serving.MicroBatchScheduler` layered over the same
(already warm) service — sustained throughput and client-observed
p50/p95/p99 latency join the table via
:func:`~repro.experiments.reporting.latency_columns`.

``serve_wire=True`` (with ``serve_concurrency``) replays the same
concurrent traffic once more over real HTTP: the scheduler is hosted in
an in-process :class:`~repro.serving.transport.ForecastHTTPServer` and
hit through per-thread :class:`~repro.serving.transport.ForecastClient`
connections, adding ``Wire``-prefixed throughput/latency columns — one
table comparing direct, service, scheduler, and HTTP serving.
"""

from __future__ import annotations

import time

import numpy as np

from ..data.splits import space_split, temporal_split
from ..evaluation import compute_metrics, forecast_window_starts, stack_truth
from .configs import get_scale
from .reporting import format_table, latency_columns, service_columns
from .runners import build_dataset, build_model

__all__ = ["run"]

_TIMING_REPEATS = 3


def run(
    scale_name: str = "small",
    datasets: list[str] | None = None,
    models: list[str] | None = None,
    seed: int = 0,
    use_service: bool = False,
    serve_concurrency: int = 0,
    serve_deadline_ms: float = 2.0,
    serve_wire: bool = False,
) -> dict:
    """Measure wall-clock train/test time per model per dataset."""
    if serve_concurrency > 0 or serve_wire:
        use_service = True  # the concurrent replay rides on the service
    if serve_wire and serve_concurrency <= 0:
        serve_concurrency = 4  # the wire replay reuses the concurrent schedule
    scale = get_scale(scale_name)
    keys = datasets if datasets is not None else ["pems-bay", "pems-07", "pems-08", "melbourne"]
    model_names = models if models is not None else ["GE-GAN", "IGNNK", "INCREASE", "STSM"]
    rows = []
    for key in keys:
        dataset = build_dataset(key, scale)
        split = space_split(dataset.coords, "horizontal")
        spec = scale.window_spec(key)
        train_ix, _test_ix = temporal_split(dataset.num_steps)
        starts = forecast_window_starts(
            dataset, spec, max_windows=scale.max_test_windows
        )
        truth = stack_truth(dataset, split, spec, starts)
        for model_name in model_names:
            model = build_model(
                model_name, key, scale, num_observed=len(split.observed), seed=seed
            )
            began = time.perf_counter()
            model.fit(dataset, split, spec, train_ix)
            train_seconds = time.perf_counter() - began
            service = None
            if use_service:
                from ..serving import ForecastService  # local import: avoid cycle

                service = ForecastService(model, cache_size=max(len(starts), 1))
                predict = service.forecast
            else:
                predict = model.predict
            timings = []
            predictions = None
            for _ in range(_TIMING_REPEATS):
                began = time.perf_counter()
                predictions = predict(starts)
                timings.append(time.perf_counter() - began)
            test_seconds = float(min(timings))
            metrics = compute_metrics(predictions, truth)
            row = {
                "Dataset": key,
                "Model": model_name,
                "Train(s)": round(train_seconds, 2),
                "Test(s)": round(test_seconds, 4),
                "RMSE": metrics.rmse,
                "_train_seconds": train_seconds,
                "_test_seconds": test_seconds,
            }
            if service is not None:
                # Repeat 1 is the cold coalesced batch; later repeats are
                # cache-served.  Keep Test(s)/_test_seconds as the cold
                # time (comparable with non-service runs) and report the
                # cache-served minimum separately.
                warm = min(timings[1:]) if len(timings) > 1 else None
                row["Test(s)"] = round(timings[0], 4)
                row["Warm(s)"] = round(warm, 4) if warm is not None else None
                row["_test_seconds"] = timings[0]
                row["_warm_seconds"] = warm
                row.update(service_columns(service.stats))
                row["_service"] = service.stats
            if service is not None and serve_concurrency > 0:
                from ..serving import LoadGenerator, LoadSpec, MicroBatchScheduler

                # Layer a micro-batching scheduler over the (warm)
                # service and hammer it from concurrent client threads
                # replaying Zipf traffic over the same window pool.
                load_spec = LoadSpec(
                    num_threads=serve_concurrency,
                    requests_per_thread=max(len(starts), 16),
                    seed=seed,
                )
                generator = LoadGenerator([int(s) for s in starts], load_spec)
                # The scheduler wraps the service the serial repeats
                # already exercised; snapshot its counters so the
                # concurrent leg can be reported as a delta rather than
                # conflated with the warm-up traffic.
                before = {
                    k: v
                    for k, v in service.stats.items()
                    if isinstance(v, (int, float)) and k != "cache_hit_pct"
                }
                # Context manager: a predict failure mid-replay must not
                # leak the worker thread.
                with MicroBatchScheduler(
                    service,
                    deadline_ms=serve_deadline_ms,
                    name=f"table5[{model_name}]",
                ) as scheduler:
                    report = generator.run(
                        lambda s: scheduler.submit(s).result(), collect_results=False
                    )
                after = service.stats
                delta = {k: after[k] - value for k, value in before.items()}
                delta["cache_hit_pct"] = (
                    100.0 * delta["cache_hits"] / delta["requests"]
                    if delta["requests"] else 0.0
                )
                load_summary = report.summary()
                row.update(latency_columns(load_summary))
                row["_serve"] = {
                    "load": load_summary,
                    "scheduler": scheduler.stats,
                    "service_delta": delta,
                }
                if serve_wire:
                    from ..serving import ServingRuntime
                    from ..serving.loadgen import WireDriver
                    from ..serving.transport import ForecastHTTPServer

                    # Replay the same deterministic schedule once more,
                    # over real HTTP: an in-process server hosts a fresh
                    # scheduler over the same warm service, and each
                    # client thread speaks the wire codec through its
                    # own kept-alive connection.  The Wire-prefixed
                    # columns land next to the scheduler's, so one row
                    # reads direct / service / scheduler / HTTP.
                    with ServingRuntime(deadline_ms=serve_deadline_ms) as runtime:
                        runtime.register(model_name, service)
                        with ForecastHTTPServer(runtime).start() as server:
                            server.set_ready()
                            with WireDriver("127.0.0.1", server.port,
                                            model_name) as driver:
                                wire_report = generator.run(
                                    driver, collect_results=False
                                )
                            wire_transport = server.counters.snapshot()
                    wire_summary = wire_report.summary()
                    row.update(latency_columns(wire_summary, prefix="Wire "))
                    row["_serve_wire"] = {
                        "load": wire_summary,
                        "transport": wire_transport,
                    }
            rows.append(row)
    rows_for_text = [
        {k: v for k, v in row.items() if not k.startswith("_")} for row in rows
    ]
    return {"rows": rows, "text": format_table(rows_for_text)}
