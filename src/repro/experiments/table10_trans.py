"""Table 10 — advanced temporal module (STSM-trans, paper §5.2.5).

Paper: replacing the 1-D TCN with a transformer encoder + gated fusion
improves RMSE/MAPE/R² slightly on PEMS-Bay, confirming STSM's temporal
module is swappable.
"""

from __future__ import annotations

from .configs import get_scale
from .reporting import format_table
from .runners import build_dataset, run_matrix, splits_for

__all__ = ["run"]


def run(scale_name: str = "small", seed: int = 0) -> dict:
    """Compare STSM against STSM-trans on PEMS-Bay."""
    scale = get_scale(scale_name)
    dataset = build_dataset("pems-bay", scale)
    matrix = run_matrix(dataset, "pems-bay", ["STSM", "STSM-trans"], scale, seed=seed)
    rows = [
        {
            "Model": name,
            "RMSE": matrix[name]["metrics"].rmse,
            "MAE": matrix[name]["metrics"].mae,
            "MAPE": matrix[name]["metrics"].mape,
            "R2": matrix[name]["metrics"].r2,
        }
        for name in ("STSM", "STSM-trans")
    ]
    return {"rows": rows, "text": format_table(rows)}
