"""Plain-text table formatting for experiment outputs."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "improvement_percent", "latency_columns", "service_columns"]


def format_table(rows: Sequence[dict], columns: Sequence[str] | None = None) -> str:
    """Render dict rows as an aligned text table.

    Floats are shown with three decimals; column order follows ``columns``
    or the first row's key order.
    """
    if not rows:
        return "(no rows)"
    columns = list(columns) if columns is not None else list(rows[0].keys())

    def _cell(value) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    rendered = [[_cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    rule = "-" * len(header)
    body = "\n".join("  ".join(cell.ljust(w) for cell, w in zip(r, widths)) for r in rendered)
    return f"{header}\n{rule}\n{body}"


def service_columns(stats: dict) -> dict:
    """Serving-telemetry table columns from ``ForecastService.stats``.

    Used by the Table 5 timing report when predictions are routed through
    the batched/cached service: cache-hit rate over all submitted
    requests, coalesced duplicates folded into pending batches, and the
    average windows per model ``predict`` call.
    """
    requests = int(stats.get("requests", 0))
    calls = int(stats.get("predict_calls", 0))
    computed = int(stats.get("windows_computed", 0))
    hit_pct = stats.get("cache_hit_pct")
    if hit_pct is None:  # raw counter dicts predating the service's own pct
        hit_pct = 100.0 * stats.get("cache_hits", 0) / requests if requests else 0.0
    return {
        "Requests": requests,
        "CacheHit%": float(hit_pct),
        "Coalesced": int(stats.get("coalesced", 0)),
        "PredCalls": calls,
        "Win/Call": computed / calls if calls else 0.0,
    }


def latency_columns(summary: dict, prefix: str = "") -> dict:
    """Concurrent-serving table columns from a ``LoadReport.summary()``.

    Used by the Table 5 timing report when ``--serve-concurrency`` replays
    the window traffic through a micro-batching scheduler from many
    client threads: sustained throughput plus client-observed latency
    percentiles.  ``prefix`` namespaces the columns when one row carries
    several serving paths (``--serve-wire`` adds ``Wire``-prefixed
    columns next to the scheduler's, so direct / service / scheduler /
    HTTP read side by side).
    """
    latency = summary.get("latency", {})
    return {
        f"{prefix}Thr(r/s)": float(summary.get("throughput_rps", 0.0)),
        f"{prefix}p50(ms)": latency.get("p50_ms"),
        f"{prefix}p95(ms)": latency.get("p95_ms"),
        f"{prefix}p99(ms)": latency.get("p99_ms"),
    }


def improvement_percent(best_model_value: float, best_baseline_value: float,
                        lower_is_better: bool = True) -> float | None:
    """The paper's "Improvement" row: % error reduced vs. the best baseline.

    Returns ``None`` when the sign structure makes the ratio meaningless
    (the paper prints N/A for negative baseline R²).
    """
    if lower_is_better:
        if best_baseline_value == 0:
            return None
        return (best_baseline_value - best_model_value) / abs(best_baseline_value) * 100.0
    if best_baseline_value <= 0:
        return None
    return (best_model_value - best_baseline_value) / best_baseline_value * 100.0
