"""Table 9 — ring space split on PEMS-Bay (paper §5.2.4).

Paper: with the observed centre / unobserved outer ring layout, STSM still
beats all baselines (up to +9.5% R²).
"""

from __future__ import annotations

from ..data.splits import space_split
from .configs import get_scale
from .reporting import format_table, improvement_percent
from .runners import build_dataset, run_matrix

__all__ = ["run"]


def run(scale_name: str = "small", models: list[str] | None = None, seed: int = 0) -> dict:
    """Evaluate models under the ring split."""
    scale = get_scale(scale_name)
    model_names = models if models is not None else ["GE-GAN", "IGNNK", "INCREASE", "STSM"]
    dataset = build_dataset("pems-bay", scale)
    split = space_split(dataset.coords, "ring")
    matrix = run_matrix(dataset, "pems-bay", model_names, scale, splits=[split], seed=seed)
    rows = []
    for model_name in model_names:
        metrics = matrix[model_name]["metrics"]
        rows.append(
            {
                "Model": model_name,
                "RMSE": metrics.rmse,
                "MAE": metrics.mae,
                "MAPE": metrics.mape,
                "R2": metrics.r2,
            }
        )
    baselines = [r for r in rows if r["Model"] != "STSM"]
    stsm_row = next((r for r in rows if r["Model"] == "STSM"), None)
    improvement = {}
    if baselines and stsm_row:
        for metric, lower in (("RMSE", True), ("MAE", True), ("MAPE", True), ("R2", False)):
            pool = [r[metric] for r in baselines]
            best = min(pool) if lower else max(pool)
            gain = improvement_percent(stsm_row[metric], best, lower)
            improvement[metric] = None if gain is None else round(gain, 2)
    return {"rows": rows, "improvement": improvement, "text": format_table(rows)}
