"""Extension experiment: scattered vs contiguous missingness.

The paper's introduction claims existing kriging models work when the
unobserved locations are *scattered* (Fig. 1b) but degrade when they form
one *contiguous* region (Fig. 1c) — IGNNK "reports substantial performance
drops in our setting".  This experiment quantifies that claim directly:
the same models run on the same dataset under both missingness patterns
(identical unobserved ratio), and the contiguity penalty is reported per
model.
"""

from __future__ import annotations

import numpy as np

from ..data.splits import scattered_split, space_split
from .configs import get_scale
from .reporting import format_table
from .runners import build_dataset, run_matrix

__all__ = ["run"]


def run(
    scale_name: str = "small",
    dataset_key: str = "pems-bay",
    models: list[str] | None = None,
    seed: int = 0,
) -> dict:
    """Compare model errors under scattered vs contiguous unobserved sets."""
    scale = get_scale(scale_name)
    model_names = models if models is not None else ["IGNNK", "INCREASE", "STSM"]
    dataset = build_dataset(dataset_key, scale)
    patterns = {
        "scattered": scattered_split(dataset.coords, rng=np.random.default_rng(seed)),
        "contiguous": space_split(dataset.coords, "horizontal"),
    }
    rows = []
    per_pattern: dict[str, dict[str, float]] = {}
    for pattern, split in patterns.items():
        matrix = run_matrix(
            dataset, dataset_key, model_names, scale, splits=[split], seed=seed
        )
        per_pattern[pattern] = {
            name: matrix[name]["metrics"].rmse for name in model_names
        }
        for name in model_names:
            metrics = matrix[name]["metrics"]
            rows.append(
                {
                    "Pattern": pattern,
                    "Model": name,
                    "RMSE": metrics.rmse,
                    "MAE": metrics.mae,
                    "R2": metrics.r2,
                }
            )
    # Contiguity penalty per model: how much worse the hard pattern is.
    penalties = []
    for name in model_names:
        scattered_rmse = per_pattern["scattered"][name]
        contiguous_rmse = per_pattern["contiguous"][name]
        penalties.append(
            {
                "Model": name,
                "ScatteredRMSE": scattered_rmse,
                "ContiguousRMSE": contiguous_rmse,
                "Penalty%": round((contiguous_rmse - scattered_rmse) / scattered_rmse * 100.0, 2),
            }
        )
    text = format_table(rows) + "\n\nContiguity penalty:\n" + format_table(penalties)
    return {"rows": rows, "penalties": penalties, "text": text}
