"""Experiment runners — one per paper table/figure (see DESIGN.md §4)."""

from .configs import PAPER, SMALL, ExperimentScale, get_scale
from .registry import EXPERIMENTS, run_experiment
from .reporting import format_table, improvement_percent
from .runners import (
    BASELINE_NAMES,
    STSM_NAMES,
    build_dataset,
    build_model,
    ratio_split,
    run_matrix,
    splits_for,
)

__all__ = [
    "EXPERIMENTS",
    "run_experiment",
    "ExperimentScale",
    "get_scale",
    "SMALL",
    "PAPER",
    "format_table",
    "improvement_percent",
    "build_dataset",
    "build_model",
    "run_matrix",
    "splits_for",
    "ratio_split",
    "BASELINE_NAMES",
    "STSM_NAMES",
]
