"""Experiment runners — one per paper table/figure (see DESIGN.md §4)."""

from .configs import PAPER, SMALL, ExperimentScale, get_scale
from .parallel import JOBS_ENV, CellFailure, SweepCellError, resolve_jobs
from .registry import EXPERIMENTS, run_experiment
from .reporting import format_table, improvement_percent
from .runners import (
    BASELINE_NAMES,
    STSM_NAMES,
    build_dataset,
    build_model,
    evaluate_cell,
    ratio_split,
    run_matrix,
    splits_for,
)

__all__ = [
    "EXPERIMENTS",
    "run_experiment",
    "ExperimentScale",
    "get_scale",
    "SMALL",
    "PAPER",
    "format_table",
    "improvement_percent",
    "build_dataset",
    "build_model",
    "evaluate_cell",
    "run_matrix",
    "splits_for",
    "ratio_split",
    "BASELINE_NAMES",
    "STSM_NAMES",
    "JOBS_ENV",
    "CellFailure",
    "SweepCellError",
    "resolve_jobs",
]
