"""Table 4 — overall model comparison (the headline result).

Paper: GE-GAN, IGNNK, INCREASE vs STSM-RNC, STSM-NC, STSM-R, STSM on five
datasets, four space splits averaged, RMSE/MAE/MAPE/R² plus an
"Improvement" row (best STSM variant vs best baseline).

Reproduction target (shape): the STSM family beats GE-GAN by a wide margin
and IGNNK clearly; the best STSM variant edges out INCREASE on most
metrics/datasets.
"""

from __future__ import annotations

from .configs import get_scale
from .reporting import format_table, improvement_percent
from .runners import BASELINE_NAMES, STSM_NAMES, build_dataset, run_matrix

__all__ = ["run", "MODEL_ORDER"]

MODEL_ORDER = list(BASELINE_NAMES) + list(STSM_NAMES)


def run(
    scale_name: str = "small",
    datasets: list[str] | None = None,
    models: list[str] | None = None,
    seed: int = 0,
    jobs: int | None = None,
) -> dict:
    """Run the overall comparison; returns rows plus per-dataset matrices.

    ``jobs`` fans each dataset's model × split grid across worker
    processes (bit-identical metrics; ``None`` follows
    ``$REPRO_SWEEP_JOBS``).
    """
    scale = get_scale(scale_name)
    keys = datasets if datasets is not None else [
        "pems-bay", "pems-07", "pems-08", "melbourne", "airq",
    ]
    model_names = models if models is not None else MODEL_ORDER
    rows = []
    matrices = {}
    for key in keys:
        dataset = build_dataset(key, scale)
        matrix = run_matrix(dataset, key, model_names, scale, seed=seed, jobs=jobs)
        matrices[key] = matrix
        baselines = [m for m in model_names if m in BASELINE_NAMES]
        stsm_family = [m for m in model_names if m in STSM_NAMES]
        for metric, lower_better in (("rmse", True), ("mae", True), ("mape", True), ("r2", False)):
            row = {"Dataset": key, "Metric": metric.upper()}
            for model_name in model_names:
                row[model_name] = getattr(matrix[model_name]["metrics"], metric)
            if baselines and stsm_family:
                baseline_vals = [row[m] for m in baselines]
                stsm_vals = [row[m] for m in stsm_family]
                best_baseline = min(baseline_vals) if lower_better else max(baseline_vals)
                best_stsm = min(stsm_vals) if lower_better else max(stsm_vals)
                gain = improvement_percent(best_stsm, best_baseline, lower_better)
                row["Improvement%"] = "N/A" if gain is None else round(gain, 2)
            rows.append(row)
    return {"rows": rows, "matrices": matrices, "text": format_table(rows)}
