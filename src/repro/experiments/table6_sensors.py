"""Table 6 — varying the number of sensors (merged PEMS-07+08 region).

Paper: PEMS-07 and PEMS-08 are merged into one larger region; the space is
split vertically into four equal partitions of 200 sensors, and models run
on the first 1..4 partitions (200..800 sensors).  STSM beats the baselines
on RMSE and R² at every size.

Here the merged region is one wide synthetic highway city; the sweep adds
vertical partitions exactly as the paper describes.  At ``small`` scale the
partition size shrinks proportionally.
"""

from __future__ import annotations

import numpy as np

from ..data.synthetic.catalog import _traffic_dataset  # shared builder
from ..data.synthetic.city import generate_highway_city
from .configs import get_scale
from .reporting import format_table
from .runners import run_matrix

__all__ = ["run"]


def _merged_region(total_sensors: int, num_days: int, seed: int = 5):
    """One big highway region standing in for PEMS-07 ∪ PEMS-08."""
    rng = np.random.default_rng(seed)
    layout = generate_highway_city(total_sensors, rng, extent=90_000.0)
    return _traffic_dataset("pems-merged-synth", layout, 5, num_days, rng)


def run(
    scale_name: str = "small",
    models: list[str] | None = None,
    seed: int = 0,
    partitions: int = 4,
    jobs: int | None = None,
) -> dict:
    """Sweep sensor count by taking 1..partitions vertical slices."""
    scale = get_scale(scale_name)
    if scale.name == "paper":
        partition_size, num_days = 200, 122
    else:
        partition_size, num_days = 20, 4
    model_names = models if models is not None else ["GE-GAN", "IGNNK", "INCREASE", "STSM"]
    total = partition_size * partitions
    full = _merged_region(total, num_days, seed=5 + seed)
    order = np.argsort(full.coords[:, 0])  # vertical partitions by x

    rows = []
    for used in range(1, partitions + 1):
        index = np.sort(order[: used * partition_size])
        subset = full.subset_locations(index, name_suffix=f"{used * partition_size}sensors")
        # Average over the scale's split variants to damp small-sample noise.
        matrix = run_matrix(subset, "pems-08", model_names, scale, seed=seed, jobs=jobs)
        for model_name in model_names:
            metrics = matrix[model_name]["metrics"]
            rows.append(
                {
                    "#Sensors": used * partition_size,
                    "Model": model_name,
                    "RMSE": metrics.rmse,
                    "MAE": metrics.mae,
                    "MAPE": metrics.mape,
                    "R2": metrics.r2,
                }
            )
    return {"rows": rows, "text": format_table(rows)}
