"""Extension experiment: error vs forecast lead time.

The paper reports window-averaged errors (T' = 2 h / 24 h); practitioners
adopting a forecaster for an unsensed district ask a finer question first:
*how fast does accuracy decay as the forecast reaches further ahead?*
This experiment produces the per-lead-time RMSE curve for STSM and the
strongest baseline, plus the historical-average floor.

Expected shape: at full scale errors grow towards the historical-average
floor as the input window's information decays.  At reduced scale the
per-lead curve is dominated by which times-of-day the few test windows
place at each lead, so the robust, asserted shape is the *gap*: the
learned models sit at or below the historical-average floor at every
single lead time, and clearly below it on average.  The floor itself is
lead-invariant by construction (it ignores the input window), which makes
it the right yardstick for how much signal survives to each lead.
"""

from __future__ import annotations

import numpy as np

from ..data import space_split, temporal_split
from ..evaluation import forecast_window_starts, horizon_profile
from .configs import get_scale
from .reporting import format_table
from .runners import build_dataset, build_model

__all__ = ["run"]


def run(
    scale_name: str = "small",
    dataset_key: str = "pems-bay",
    models: list[str] | None = None,
    seed: int = 0,
) -> dict:
    """Per-lead-time RMSE for each model on one contiguous split."""
    scale = get_scale(scale_name)
    model_names = models if models is not None else [
        "HistoricalAverage", "INCREASE", "STSM",
    ]
    dataset = build_dataset(dataset_key, scale)
    split = space_split(dataset.coords, "horizontal")
    spec = scale.window_spec(dataset_key)
    train_ix, _ = temporal_split(dataset.num_steps)
    starts = forecast_window_starts(dataset, spec, max_windows=scale.max_test_windows)

    curves: dict[str, list[float]] = {}
    for name in model_names:
        model = build_model(
            name, dataset_key, scale, num_observed=len(split.observed), seed=seed
        )
        model.fit(dataset, split, spec, train_ix)
        profile = horizon_profile(model, dataset, split, spec, starts)
        curves[name] = [m.rmse for m in profile]

    rows = []
    for step in range(spec.horizon):
        row = {"Lead": step + 1}
        for name in model_names:
            row[name] = curves[name][step]
        rows.append(row)
    text = (
        f"RMSE vs lead time on {dataset_key} ({scale.name} scale, horizon "
        f"{spec.horizon})\n" + format_table(rows)
    )
    return {"rows": rows, "curves": curves, "horizon": spec.horizon, "text": text}
