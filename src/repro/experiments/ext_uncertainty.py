"""Extension experiment: calibrated uncertainty for the unobserved region.

STSM is a point forecaster; the paper's related work points at DeepSTUQ
[Qian et al. 2023] for uncertainty-aware traffic forecasting.  Forecasting
a region with *no sensors at all* is where error bars matter most, so this
experiment scores three predictive-distribution constructions on the same
contiguous-unobserved split:

* **STSM + MC dropout** — stochastic forward passes of one trained model;
* **STSM deep ensemble** — independently seeded members;
* **GP kriging** — the classical closed-form Gaussian predictive.

Reported per model: point RMSE, PICP vs the nominal level, MPIW, Winkler
score and CRPS.  The expected shape: both neural constructions badly
*under-cover* (PICP ≪ nominal) — they only express epistemic spread
around one learned function, which says nothing about the irreducible
error of extrapolating into a sensor-free region — while the GP's
distance-driven variance yields wide but honest intervals (PICP near
nominal) and consequently a better Winkler score despite a worse point
RMSE.  This is the classic argument for hybrid UQ (DeepSTUQ combines
variational and post-hoc calibration for the same reason).
"""

from __future__ import annotations

import numpy as np

from ..baselines import GPKrigingForecaster
from ..core import DeepEnsembleForecaster, MCDropoutForecaster, config_for_dataset
from ..core.variants import STSM_VARIANTS
from ..data import space_split, temporal_split
from ..evaluation import (
    compute_metrics,
    evaluate_intervals,
    forecast_window_starts,
    stack_truth,
)
from .configs import get_scale
from .reporting import format_table
from .runners import build_dataset

__all__ = ["run"]


def _stsm_factory(dataset_key, scale, num_observed, variant="STSM"):
    """STSM constructor bound to the scale's budgets (mirrors build_model)."""

    def make(seed: int):
        overrides = dict(scale.stsm)
        overrides["seed"] = seed
        config = config_for_dataset(dataset_key, **overrides)
        if config.top_k > num_observed:
            config = config.replace(top_k=max(2, num_observed // 2))
        if config.dropout <= 0.0:
            config = config.replace(dropout=0.1)
        return STSM_VARIANTS[variant](config=config)

    return make


def run(
    scale_name: str = "small",
    dataset_key: str = "pems-bay",
    coverage: float = 0.8,
    mc_samples: int = 8,
    ensemble_members: int = 3,
    seed: int = 0,
) -> dict:
    """Score MC-dropout, ensemble and GP-kriging intervals on one split."""
    scale = get_scale(scale_name)
    dataset = build_dataset(dataset_key, scale)
    split = space_split(dataset.coords, "horizontal")
    spec = scale.window_spec(dataset_key)
    train_ix, _ = temporal_split(dataset.num_steps)
    starts = forecast_window_starts(
        dataset, spec, max_windows=scale.max_test_windows
    )
    truth = stack_truth(dataset, split, spec, starts)
    factory = _stsm_factory(dataset_key, scale, num_observed=len(split.observed))

    models = {
        "STSM-MCDropout": MCDropoutForecaster(factory(seed), num_samples=mc_samples),
        "STSM-Ensemble": DeepEnsembleForecaster(
            factory, num_members=ensemble_members,
            seeds=list(range(seed, seed + ensemble_members)),
        ),
        "GP-Kriging": GPKrigingForecaster(seed=seed),
    }

    rows = []
    details = {}
    for name, model in models.items():
        model.fit(dataset, split, spec, train_ix)
        if isinstance(model, GPKrigingForecaster):
            # Closed-form Gaussian: draw samples for the common CRPS path.
            mean, variance = model.predict_with_variance(starts)
            sigma = np.sqrt(variance) * model.scaler.std_
            rng = np.random.default_rng(seed)
            noise = rng.standard_normal((max(mc_samples, 16),) + mean.shape)
            samples = mean[None] + noise * sigma[None, None, None, :]
        else:
            samples = model.predict_samples(starts)
        interval = evaluate_intervals(samples, truth, coverage=coverage)
        point = compute_metrics(samples.mean(axis=0), truth)
        rows.append(
            {
                "Model": name,
                "RMSE": point.rmse,
                "PICP": interval.picp,
                "MPIW": interval.mpiw,
                "Winkler": interval.winkler,
                "CRPS": interval.crps,
            }
        )
        details[name] = {"interval": interval, "point": point}

    text = (
        f"Uncertainty on {dataset_key} ({scale.name} scale, nominal coverage "
        f"{coverage:.0%})\n" + format_table(rows)
    )
    return {"rows": rows, "details": details, "coverage": coverage, "text": text}
