"""The ``ArrayBackend`` protocol: every array op the substrate may issue.

``repro.autograd`` (tensors + functional ops), ``repro.nn`` and
``repro.optim`` never call an array library directly; they go through the
active :class:`ArrayBackend` (see :mod:`repro.backend.registry`).  A
backend supplies

* **primitives** — creation, elementwise math, matmul/einsum, reductions,
  shape manipulation, indexing/scatter, and RNG draws from an *explicit*
  generator object (the backend never owns hidden RNG state; callers
  thread generators through, which is what makes fits reproducible across
  backends); and
* **composites** — fusable multi-op kernels (sigmoid, softmax,
  convolution gather/scatter, optimiser update steps).  The base class
  implements every composite in terms of the primitives, so a minimal
  backend only implements the primitive surface; a performance backend
  overrides the composites with fused kernels.

Determinism rules
-----------------
* :class:`~repro.backend.numpy_ref.NumpyRefBackend` is the reference
  semantics: float64 by default (float32 preserved), numpy broadcasting,
  and bit-identical results to the pre-backend code for any fixed seed.
* Other backends must match ``numpy_ref`` *outputs and gradients* to
  tight floating-point tolerance on every op (see
  ``tests/backend/test_parity.py``) but may reorder float reductions,
  fuse kernels, or update buffers in place.
* RNG: ``default_rng(seed)`` must return a generator whose
  ``random``/``uniform``/``normal`` draw sequences match numpy's
  ``Generator`` for the same seed, so masking and dropout patterns are
  backend-independent.

Arrays are opaque to callers: the substrate only ever feeds a backend's
arrays back into the same backend.  Both shipped backends use
``numpy.ndarray``; a GPU/accelerator backend would return its own device
arrays and implement ``asarray``/``to_numpy`` conversions at the edges.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["ArrayBackend"]


class ArrayBackend:
    """Abstract array backend; see the module docstring for the contract."""

    #: Registry name; subclasses override.
    name: str = "abstract"

    def configured(self, device: str | None = None, dtype: str | None = None):
        """Return a backend honouring the device/dtype overrides.

        Host (numpy) backends support only cpu/float64 and return
        ``self`` when the overrides are compatible no-ops; accelerator
        backends (torch) override this to return a configured instance.
        """
        if device not in (None, "cpu"):
            raise ValueError(
                f"backend {self.name!r} runs on the host cpu only, got "
                f"device={device!r}; use the 'torch' backend for other devices"
            )
        if dtype not in (None, "float64"):
            raise ValueError(
                f"backend {self.name!r} computes in float64 only, got "
                f"dtype={dtype!r}; use the 'torch' backend for float32"
            )
        return self

    # ------------------------------------------------------------------
    # Creation / conversion
    # ------------------------------------------------------------------
    def asarray(self, data, dtype=None):
        raise NotImplementedError

    def to_float_array(self, data):
        """Coerce to the backend's float array (float32 kept, else float64)."""
        raise NotImplementedError

    def to_numpy(self, a):
        """Return a host-side ``numpy.ndarray`` view/copy of ``a``."""
        raise NotImplementedError

    def copy(self, a):
        raise NotImplementedError

    def copy_cast(self, a, dtype):
        """Fresh array with the given dtype (always a copy)."""
        raise NotImplementedError

    def copyto(self, dst, src) -> None:
        """Overwrite ``dst``'s contents with ``src`` (parameter loading)."""
        raise NotImplementedError

    def cast(self, a, dtype):
        raise NotImplementedError

    def zeros(self, shape, dtype=None):
        raise NotImplementedError

    def zeros_like(self, a):
        raise NotImplementedError

    def ones(self, shape, dtype=None):
        raise NotImplementedError

    def ones_like(self, a):
        raise NotImplementedError

    def empty_like(self, a):
        raise NotImplementedError

    def arange(self, start, stop=None, step=1):
        raise NotImplementedError

    def eye(self, n, dtype=None):
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Elementwise math (binary ops broadcast; scalars allowed)
    # ------------------------------------------------------------------
    def add(self, a, b, out=None):
        raise NotImplementedError

    def subtract(self, a, b, out=None):
        raise NotImplementedError

    def multiply(self, a, b, out=None):
        raise NotImplementedError

    def divide(self, a, b, out=None):
        raise NotImplementedError

    def power(self, a, exponent):
        raise NotImplementedError

    def maximum(self, a, b):
        raise NotImplementedError

    def minimum(self, a, b):
        raise NotImplementedError

    def iadd(self, a, b):
        """In-place ``a += b``; returns ``a``."""
        raise NotImplementedError

    def isub(self, a, b):
        """In-place ``a -= b``; returns ``a``."""
        raise NotImplementedError

    def imul(self, a, b):
        """In-place ``a *= b``; returns ``a``."""
        raise NotImplementedError

    def negative(self, a, out=None):
        raise NotImplementedError

    def exp(self, a, out=None):
        raise NotImplementedError

    def log(self, a, out=None):
        raise NotImplementedError

    def log1p(self, a, out=None):
        raise NotImplementedError

    def sqrt(self, a, out=None):
        raise NotImplementedError

    def abs(self, a, out=None):
        raise NotImplementedError

    def sign(self, a):
        raise NotImplementedError

    def tanh(self, a, out=None):
        raise NotImplementedError

    def sin(self, a):
        raise NotImplementedError

    def cos(self, a):
        raise NotImplementedError

    def clip(self, a, low, high, out=None):
        raise NotImplementedError

    def where(self, condition, a, b):
        raise NotImplementedError

    def greater(self, a, b):
        raise NotImplementedError

    def greater_equal(self, a, b):
        raise NotImplementedError

    def less_equal(self, a, b):
        raise NotImplementedError

    def equal(self, a, b):
        raise NotImplementedError

    def logical_or(self, a, b):
        raise NotImplementedError

    def logical_and(self, a, b):
        raise NotImplementedError

    def logical_not(self, a):
        raise NotImplementedError

    def isfinite(self, a):
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def matmul(self, a, b):
        raise NotImplementedError

    def einsum(self, subscripts: str, *operands):
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, a, axis=None, keepdims: bool = False):
        raise NotImplementedError

    def amax(self, a, axis=None, keepdims: bool = False):
        raise NotImplementedError

    def amin(self, a, axis=None, keepdims: bool = False):
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, a, shape):
        raise NotImplementedError

    def transpose(self, a, axes=None):
        raise NotImplementedError

    def swapaxes(self, a, axis1: int, axis2: int):
        raise NotImplementedError

    def expand_dims(self, a, axis):
        raise NotImplementedError

    def squeeze(self, a, axis=None):
        raise NotImplementedError

    def broadcast_to(self, a, shape):
        raise NotImplementedError

    def concatenate(self, arrays: Sequence, axis: int = 0):
        raise NotImplementedError

    def stack(self, arrays: Sequence, axis: int = 0):
        raise NotImplementedError

    def split(self, a, sections: int, axis: int = 0):
        raise NotImplementedError

    def pad(self, a, pad_width, constant: float = 0.0):
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Indexing / scatter
    # ------------------------------------------------------------------
    def getitem(self, a, index):
        raise NotImplementedError

    def scatter_add(self, target, index, values) -> None:
        """Duplicate-safe in-place ``target[index] += values``."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # RNG (explicit generator state)
    # ------------------------------------------------------------------
    def default_rng(self, seed=None):
        raise NotImplementedError

    def random(self, rng, shape):
        raise NotImplementedError

    def uniform(self, rng, low: float, high: float, shape):
        raise NotImplementedError

    def normal(self, rng, loc: float, scale: float, shape):
        raise NotImplementedError

    # ==================================================================
    # Composites — default implementations in terms of the primitives.
    # A fast backend overrides these with fused kernels; the defaults
    # reproduce the reference semantics exactly.
    # ==================================================================

    # -- activations ----------------------------------------------------
    def sigmoid(self, x):
        """``1 / (1 + exp(-clip(x, -60, 60)))`` (overflow-safe logistic)."""
        return self.divide(1.0, self.add(1.0, self.exp(self.negative(self.clip(x, -60.0, 60.0)))))

    def sigmoid_backward(self, grad, out):
        """``grad * out * (1 - out)``."""
        return self.multiply(self.multiply(grad, out), self.subtract(1.0, out))

    def tanh_backward(self, grad, out):
        """``grad * (1 - out**2)``."""
        return self.multiply(grad, self.subtract(1.0, self.power(out, 2)))

    def relu(self, x):
        """Return ``(x * (x > 0), mask)`` — the mask feeds the backward."""
        mask = self.greater(x, 0)
        return self.multiply(x, mask), mask

    def relu_backward(self, grad, mask):
        return self.multiply(grad, mask)

    def maximum_backward(self, grad, a, b, a_shape, b_shape, unbroadcast):
        """Adjoint of elementwise max: winners take the gradient, ties split.

        ``unbroadcast`` is the caller's gradient-reduction function (sums
        over broadcast axes); it is passed in so backends can fuse the
        mask arithmetic without owning broadcasting semantics.
        """
        dtype = grad.dtype
        a_wins = self.cast(self.greater(a, b), dtype)
        b_wins = self.cast(self.greater(b, a), dtype)
        tie = self.multiply(self.cast(self.equal(a, b), dtype), 0.5)
        grad_a = unbroadcast(self.multiply(grad, self.add(a_wins, tie)), a_shape)
        grad_b = unbroadcast(self.multiply(grad, self.add(b_wins, tie)), b_shape)
        return grad_a, grad_b

    # -- softmax family -------------------------------------------------
    def softmax(self, x, axis: int = -1):
        """Shift-stabilised softmax along ``axis``."""
        shifted = self.subtract(x, self.amax(x, axis=axis, keepdims=True))
        exp = self.exp(shifted)
        return self.divide(exp, self.sum(exp, axis=axis, keepdims=True))

    def softmax_backward(self, grad, out, axis: int = -1):
        """``out * (grad - sum(grad * out, axis, keepdims))``."""
        dot = self.sum(self.multiply(grad, out), axis=axis, keepdims=True)
        return self.multiply(out, self.subtract(grad, dot))

    def log_softmax(self, x, axis: int = -1):
        """Return ``(log_softmax(x), softmax(x))`` along ``axis``."""
        shifted = self.subtract(x, self.amax(x, axis=axis, keepdims=True))
        log_norm = self.log(self.sum(self.exp(shifted), axis=axis, keepdims=True))
        out = self.subtract(shifted, log_norm)
        return out, self.exp(out)

    def log_softmax_backward(self, grad, soft, axis: int = -1):
        """``grad - soft * sum(grad, axis, keepdims)``."""
        return self.subtract(grad, self.multiply(soft, self.sum(grad, axis=axis, keepdims=True)))

    # -- dropout --------------------------------------------------------
    def dropout_mask(self, rng, shape, keep: float, dtype):
        """Inverted-dropout mask: ``(u < keep) / keep`` with ``u~U[0,1)``."""
        return self.divide(self.cast(self.greater(keep, self.random(rng, shape)), dtype), keep)

    # -- dilated conv1d kernels ----------------------------------------
    @staticmethod
    def _conv1d_tap_index(kernel: int, dilation: int, out_len: int):
        """``(kernel, out_len)`` host-side gather indices: ``t + k * dilation``."""
        import numpy as np

        return np.arange(out_len)[None, :] + dilation * np.arange(kernel)[:, None]

    def conv1d_apply(self, padded, weight, dilation: int, out_len: int):
        """Dilated conv forward on ``(B, C, L)`` inputs.

        Returns ``(out, saved)`` where ``saved`` is backend-private
        context handed back to :meth:`conv1d_backward` (the reference
        backend keeps the gathered tap columns; a fused backend may keep
        nothing and recompute from ``padded``).
        """
        kernel = weight.shape[2]
        tap_index = self._conv1d_tap_index(kernel, dilation, out_len)
        # cols[b, c, k, t] = padded[b, c, t + k * dilation]
        cols = self.getitem(padded, (slice(None), slice(None), tap_index))
        return self.einsum("bckt,ock->bot", cols, weight), cols

    def conv1d_backward(self, grad, saved, padded, weight, dilation: int):
        """Adjoint of :meth:`conv1d_apply`: ``(grad_weight, grad_padded)``."""
        cols = saved
        grad_weight = self.einsum("bot,bckt->ock", grad, cols)
        grad_cols = self.einsum("bot,ock->bckt", grad, weight)
        tap_index = self._conv1d_tap_index(weight.shape[2], dilation, grad.shape[-1])
        grad_padded = self.zeros_like(padded)
        self.scatter_add(grad_padded, (slice(None), slice(None), tap_index), grad_cols)
        return grad_weight, grad_padded

    # -- optimiser update steps ----------------------------------------
    def sgd_step(self, param, grad, velocity, lr: float, momentum: float) -> None:
        """In-place SGD update (velocity is ``None`` without momentum)."""
        if momentum:
            self.imul(velocity, momentum)
            self.iadd(velocity, grad)
            self.isub(param, self.multiply(lr, velocity))
        else:
            self.isub(param, self.multiply(lr, grad))

    def adam_step(
        self,
        param,
        grad,
        m,
        v,
        lr: float,
        beta1: float,
        beta2: float,
        eps: float,
        correction1: float,
        correction2: float,
        weight_decay: float,
    ) -> None:
        """In-place Adam update with bias correction."""
        if weight_decay:
            grad = self.add(grad, self.multiply(weight_decay, param))
        self.imul(m, beta1)
        self.iadd(m, self.multiply(1.0 - beta1, grad))
        self.imul(v, beta2)
        self.iadd(v, self.multiply(self.multiply(1.0 - beta2, grad), grad))
        m_hat = self.divide(m, correction1)
        v_hat = self.divide(v, correction2)
        self.isub(param, self.divide(self.multiply(lr, m_hat), self.add(self.sqrt(v_hat), eps)))

    def grad_norm_squared(self, grad) -> float:
        """``float(sum(grad ** 2))`` — one term of a global norm."""
        return float(self.sum(self.power(grad, 2)))

    def scale_inplace(self, a, scale: float) -> None:
        """``a *= scale`` (gradient rescaling after clipping)."""
        self.imul(a, scale)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ArrayBackend {self.name!r}>"


# Re-exported for type annotations elsewhere.
Array = Any
