"""Pluggable array backends for the neural substrate.

``repro.autograd``, ``repro.nn`` and ``repro.optim`` issue every array
operation through the active :class:`ArrayBackend` rather than calling
numpy directly.  Three backends ship:

* ``numpy_ref`` (default) — plain numpy, bit-identical to the
  pre-backend substrate for any fixed seed;
* ``numpy_fused`` — same dtypes and semantics, but with single-GEMM
  matmuls for stacked operands, memoised einsum paths, ``out=`` fused
  elementwise kernels, strided conv scatters, and in-place optimiser
  updates;
* ``torch`` (optional; registered only when PyTorch is importable) —
  the protocol on ``torch.Tensor``, float64 by default for parity with
  float32 opt-in, cpu/cuda device selection, numpy-seeded RNG streams.

Select with ``REPRO_BACKEND=<name>``, :func:`set_backend`, the
:func:`use_backend` context manager, or ``STSMConfig(backend=...)``;
``STSMConfig(device=..., dtype=...)`` configure device backends via
:func:`resolve_backend`.  See DESIGN.md ("Array backends", "Torch
accelerator backend") for the protocol and how to add one.
"""

from .base import ArrayBackend
from .numpy_fused import NumpyFusedBackend
from .numpy_ref import NumpyRefBackend
from .registry import (
    KNOWN_OPTIONAL_BACKENDS,
    BackendUnavailableError,
    UnknownBackendError,
    available_backends,
    backend_available,
    get_backend,
    register_backend,
    resolve_backend,
    set_backend,
    use_backend,
)

__all__ = [
    "ArrayBackend",
    "BackendUnavailableError",
    "KNOWN_OPTIONAL_BACKENDS",
    "NumpyFusedBackend",
    "NumpyRefBackend",
    "UnknownBackendError",
    "available_backends",
    "backend_available",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "set_backend",
    "use_backend",
]
