"""Pluggable array backends for the neural substrate.

``repro.autograd``, ``repro.nn`` and ``repro.optim`` issue every array
operation through the active :class:`ArrayBackend` rather than calling
numpy directly.  Two backends ship:

* ``numpy_ref`` (default) — plain numpy, bit-identical to the
  pre-backend substrate for any fixed seed;
* ``numpy_fused`` — same dtypes and semantics, but with single-GEMM
  matmuls for stacked operands, memoised einsum paths, ``out=`` fused
  elementwise kernels, strided conv scatters, and in-place optimiser
  updates.

Select with ``REPRO_BACKEND=numpy_fused``, :func:`set_backend`, the
:func:`use_backend` context manager, or ``STSMConfig(backend=...)``.
See DESIGN.md ("Array backends") for the protocol and how to add one.
"""

from .base import ArrayBackend
from .numpy_fused import NumpyFusedBackend
from .numpy_ref import NumpyRefBackend
from .registry import (
    available_backends,
    get_backend,
    register_backend,
    set_backend,
    use_backend,
)

__all__ = [
    "ArrayBackend",
    "NumpyFusedBackend",
    "NumpyRefBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "set_backend",
    "use_backend",
]
