"""Fused numpy backend: same dtype semantics, fewer passes and temporaries.

Inherits the primitive surface from :class:`NumpyRefBackend` and overrides
the hot paths:

* **matmul** — stacked operands against 2-D matrices are flattened into a
  single large GEMM instead of numpy's per-slice broadcast loop (the shape
  ``(B, T, N, C) @ (C, C')`` Linear case and the ``(N, N) @ (B, T, N, C)``
  graph-convolution case dominate STSM's runtime).
* **einsum** — contraction paths are memoised per (subscripts, shapes), so
  the dilated-convolution einsums skip ``einsum_path`` re-planning on
  every batch.
* **elementwise composites** (sigmoid, tanh/sigmoid backward, softmax,
  dropout mask) — run as in-place ``out=`` chains over one preallocated
  buffer instead of a fresh temporary per ufunc.
* **conv1d scatter / scatter_add** — the tap-gather adjoint walks the
  kernel taps with strided ``+=`` slabs instead of ``np.add.at`` (which
  falls back to a slow per-element inner loop), and basic-slice scatters
  skip ``np.add.at`` entirely.
* **optimiser steps** — SGD/Adam state updates run in place on the
  moment/velocity buffers, with a single parameter-sized scratch
  temporary per step instead of the reference rule's chain of
  intermediates.

Numerical contract: results match ``numpy_ref`` to tight floating-point
tolerance (same dtypes, same algorithms) but are not bit-identical —
reassociated GEMMs and fused reductions round differently in the last
ulps.  ``tests/backend/test_parity.py`` pins the agreement.
"""

from __future__ import annotations

import numpy as np

from .numpy_ref import NumpyRefBackend

__all__ = ["NumpyFusedBackend"]


def _is_basic_index(index) -> bool:
    """True when ``index`` contains no integer/bool arrays (no duplicates)."""
    if isinstance(index, tuple):
        return all(_is_basic_index(part) for part in index)
    return isinstance(index, (int, np.integer, slice, type(None), type(Ellipsis)))


class NumpyFusedBackend(NumpyRefBackend):
    """Fused/in-place numpy backend (see module docstring)."""

    name = "numpy_fused"

    def __init__(self) -> None:
        self._einsum_paths: dict = {}

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    # matmul is inherited unchanged: numpy's broadcast matmul is already
    # the fastest formulation for both stacked-lhs and stacked-rhs cases
    # on a single-core BLAS (measured against flattened single GEMMs and
    # tensordot reshapes, which lose to their transpose copies).

    def einsum(self, subscripts: str, *operands):
        key = (subscripts, tuple(op.shape for op in operands))
        path = self._einsum_paths.get(key)
        if path is None:
            path = np.einsum_path(subscripts, *operands, optimize="optimal")[0]
            self._einsum_paths[key] = path
        return np.einsum(subscripts, *operands, optimize=path)

    # ------------------------------------------------------------------
    # Dilated-convolution kernels as per-tap strided GEMMs
    # ------------------------------------------------------------------
    # The reference backend materialises tap columns (a fancy-index copy)
    # and contracts with einsum, then scatter-adds the adjoint through
    # np.add.at.  Each kernel tap k actually reads/writes one contiguous
    # slab padded[:, :, k*dilation : k*dilation + T_out], so the whole
    # convolution is K strided broadcast GEMMs with no gather, no column
    # tensor, and no scatter — the dominant win of this backend on the
    # TCN path.
    def conv1d_apply(self, padded, weight, dilation: int, out_len: int):
        kernel = weight.shape[2]
        out = weight[:, :, 0] @ padded[:, :, :out_len]
        for k in range(1, kernel):
            start = k * dilation
            out += weight[:, :, k] @ padded[:, :, start : start + out_len]
        return out, None

    def conv1d_backward(self, grad, saved, padded, weight, dilation: int):
        kernel = weight.shape[2]
        out_len = grad.shape[-1]
        grad_weight = np.empty_like(weight)
        grad_padded = np.zeros_like(padded)
        for k in range(kernel):
            slab = slice(k * dilation, k * dilation + out_len)
            # grad_w[o, c, k] = sum_{b, t} grad[b, o, t] * padded[b, c, t + k*d]
            grad_weight[:, :, k] = np.tensordot(grad, padded[:, :, slab], axes=([0, 2], [0, 2]))
            grad_padded[:, :, slab] += weight[:, :, k].T @ grad
        return grad_weight, grad_padded

    # ------------------------------------------------------------------
    # Fused elementwise composites
    # ------------------------------------------------------------------
    def sigmoid(self, x):
        out = np.clip(x, -60.0, 60.0)
        np.negative(out, out=out)
        np.exp(out, out=out)
        out += 1.0
        np.reciprocal(out, out=out)
        return out

    def sigmoid_backward(self, grad, out):
        buf = np.subtract(1.0, out)
        buf *= out
        buf *= grad
        return buf

    def tanh_backward(self, grad, out):
        buf = np.multiply(out, out)
        np.subtract(1.0, buf, out=buf)
        buf *= grad
        return buf

    def softmax(self, x, axis: int = -1):
        out = np.subtract(x, np.max(x, axis=axis, keepdims=True))
        np.exp(out, out=out)
        out /= np.sum(out, axis=axis, keepdims=True)
        return out

    def softmax_backward(self, grad, out, axis: int = -1):
        buf = np.multiply(grad, out)
        dot = np.sum(buf, axis=axis, keepdims=True)
        np.subtract(grad, dot, out=buf)
        buf *= out
        return buf

    def log_softmax(self, x, axis: int = -1):
        out = np.subtract(x, np.max(x, axis=axis, keepdims=True))
        soft = np.exp(out)
        norm = np.sum(soft, axis=axis, keepdims=True)
        out -= np.log(norm)
        soft /= norm
        return out, soft

    def log_softmax_backward(self, grad, soft, axis: int = -1):
        buf = np.multiply(soft, np.sum(grad, axis=axis, keepdims=True))
        np.subtract(grad, buf, out=buf)
        return buf

    def dropout_mask(self, rng, shape, keep: float, dtype):
        mask = rng.random(shape) < keep
        out = mask.astype(dtype)
        out /= keep
        return out

    def maximum_backward(self, grad, a, b, a_shape, b_shape, unbroadcast):
        # winners-plus-half-ties weight per side: 1 on wins, 0.5 on ties,
        # 0 on losses, as 0.5 * ((x > y) + (x >= y)).  Each side uses its
        # own comparisons (not the complement of the other) so NaN
        # entries — where every comparison is False — zero both sides
        # exactly like the reference rule.
        weight = np.greater(a, b).astype(grad.dtype)
        weight += np.greater_equal(a, b)
        weight *= 0.5
        weight *= grad
        grad_a = unbroadcast(weight, a_shape)
        weight_b = np.greater(b, a).astype(grad.dtype)
        weight_b += np.greater_equal(b, a)
        weight_b *= 0.5
        weight_b *= grad
        grad_b = unbroadcast(weight_b, b_shape)
        return grad_a, grad_b

    # ------------------------------------------------------------------
    # Scatter
    # ------------------------------------------------------------------
    def scatter_add(self, target, index, values) -> None:
        if _is_basic_index(index):
            # Basic slicing cannot alias elements, so a strided += is exact.
            target[index] += values
        else:
            np.add.at(target, index, values)

    # ------------------------------------------------------------------
    # Optimiser steps
    # ------------------------------------------------------------------
    def sgd_step(self, param, grad, velocity, lr: float, momentum: float) -> None:
        if momentum:
            velocity *= momentum
            velocity += grad
            buf = np.multiply(velocity, lr)
        else:
            buf = np.multiply(grad, lr)
        param -= buf

    def adam_step(
        self,
        param,
        grad,
        m,
        v,
        lr: float,
        beta1: float,
        beta2: float,
        eps: float,
        correction1: float,
        correction2: float,
        weight_decay: float,
    ) -> None:
        buf = np.empty_like(grad)
        if weight_decay:
            np.multiply(param, weight_decay, out=buf)
            buf += grad
            grad = buf.copy()
        np.multiply(grad, 1.0 - beta1, out=buf)
        m *= beta1
        m += buf
        np.multiply(grad, grad, out=buf)
        buf *= 1.0 - beta2
        v *= beta2
        v += buf
        np.divide(v, correction2, out=buf)
        np.sqrt(buf, out=buf)
        buf += eps
        np.divide(m, buf, out=buf)
        buf *= lr / correction1
        param -= buf
