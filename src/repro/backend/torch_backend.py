"""Torch accelerator backend: the ArrayBackend protocol on ``torch.Tensor``.

Third registered backend (after ``numpy_ref`` / ``numpy_fused``), and the
first whose arrays are not numpy — it proves the protocol against a second
tensor library and unlocks vectorised-CPU / GPU execution for the whole
substrate (``autograd``, ``nn``, ``optim``, the engine and serving run
unchanged on top of it).

Design decisions
----------------
* **Own autograd, not torch's.**  The repository's reverse-mode tape
  (:mod:`repro.autograd.tensor`) drives every backward pass; torch tensors
  here are raw storage + kernels.  ``requires_grad`` is never set and no
  torch graph is ever built.
* **float64 by default** so the parity suite can hold the backend to tight
  tolerance against ``numpy_ref``; ``float32`` is an explicit opt-in
  (constructor / ``STSMConfig.dtype`` / ``REPRO_TORCH_DTYPE``) that trades
  parity for speed and memory.
* **Device selection**: constructor argument, else ``REPRO_TORCH_DEVICE``,
  else ``cuda`` when available, else ``cpu``.
* **Deterministic RNG by construction**: ``default_rng`` returns a *numpy*
  ``Generator`` and every draw happens host-side before transfer, so seeds
  produce bit-identical draw sequences (and therefore identical masks,
  dropout patterns and initialisations) across all registered backends —
  torch's own RNG is never consulted.
* **Zero-copy bridging on CPU**: ``torch.from_numpy`` /
  ``Tensor.numpy()`` share memory at the numpy↔torch boundary, so the
  host-side data pipeline feeds tensors without copies; CUDA pays the
  expected transfer at the same two seams.
* **numpy dtype-promotion semantics**: torch promotes ``int64 * 0.5`` to
  its *default* dtype (float32); numpy promotes to float64.  Binary ops
  here upcast integer/bool tensors to float64 when combined with a Python
  float, so backend-agnostic code keeps numpy semantics.

This module imports ``torch`` at module level and must only be imported
through the registry's lazy factory — ``import repro.backend`` works on
machines without torch installed.
"""

from __future__ import annotations

import os
from typing import Sequence

import numpy as np

try:
    import torch
    import torch.nn.functional as F
except ImportError as error:  # pragma: no cover - exercised without torch
    raise ImportError(
        "the 'torch' backend requires PyTorch "
        "(pip install torch --index-url https://download.pytorch.org/whl/cpu)"
    ) from error

from .base import ArrayBackend

__all__ = ["TorchBackend"]

ENV_DEVICE = "REPRO_TORCH_DEVICE"
ENV_DTYPE = "REPRO_TORCH_DTYPE"

_FLOAT_DTYPES = {"float64": torch.float64, "float32": torch.float32}

#: numpy <-> torch dtype bridge for the dtypes the substrate uses.
_TORCH_FROM_NUMPY = {
    np.dtype(np.float64): torch.float64,
    np.dtype(np.float32): torch.float32,
    np.dtype(np.int64): torch.int64,
    np.dtype(np.int32): torch.int32,
    np.dtype(np.bool_): torch.bool,
}
_NUMPY_FROM_TORCH = {t: n for n, t in _TORCH_FROM_NUMPY.items()}


def _is_basic_index(index) -> bool:
    """True when ``index`` contains no integer/bool arrays (no duplicates)."""
    if isinstance(index, tuple):
        return all(_is_basic_index(part) for part in index)
    return isinstance(index, (int, np.integer, slice, type(None), type(Ellipsis)))


class TorchBackend(ArrayBackend):
    """:class:`ArrayBackend` on ``torch.Tensor`` (see module docstring)."""

    name = "torch"

    #: Cache of configured instances keyed by (device, dtype) so repeated
    #: ``resolve_backend("torch", ...)`` calls share kernels and state.
    _configured: dict[tuple[str, str], "TorchBackend"] = {}

    def __init__(self, device: str | None = None, dtype: str | None = None) -> None:
        if device is None:
            device = os.environ.get(ENV_DEVICE)
        if device is None:
            device = "cuda" if torch.cuda.is_available() else "cpu"
        self.device = torch.device(device)
        if dtype is None:
            dtype = os.environ.get(ENV_DTYPE, "float64")
        if dtype not in _FLOAT_DTYPES:
            raise ValueError(
                f"unknown torch backend dtype {dtype!r}; use 'float64' or 'float32'"
            )
        self.dtype = _FLOAT_DTYPES[dtype]

    def configured(self, device: str | None = None, dtype: str | None = None) -> "TorchBackend":
        if device is None and dtype is None:
            return self
        key = (
            device if device is not None else str(self.device),
            dtype if dtype is not None else str(self.dtype).removeprefix("torch."),
        )
        backend = self._configured.get(key)
        if backend is None:
            backend = TorchBackend(device=key[0], dtype=key[1])
            self._configured[key] = backend
        return backend

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ArrayBackend 'torch' device={self.device} dtype={self.dtype}>"

    # ------------------------------------------------------------------
    # Conversion plumbing
    # ------------------------------------------------------------------
    def _torch_dtype(self, dtype) -> torch.dtype | None:
        if dtype is None or isinstance(dtype, torch.dtype):
            return dtype
        if dtype is bool:
            return torch.bool
        return _TORCH_FROM_NUMPY[np.dtype(dtype)]

    def _from_host(self, arr: np.ndarray) -> torch.Tensor:
        """Host numpy array -> device tensor (zero-copy on CPU)."""
        if not arr.flags.writeable:
            # from_numpy would alias read-only memory (and warn); the
            # substrate mutates some buffers in place, so copy instead.
            arr = arr.copy()
        try:
            t = torch.from_numpy(arr)
        except (TypeError, ValueError):
            t = torch.from_numpy(np.ascontiguousarray(arr))
        return t if self.device.type == "cpu" else t.to(self.device)

    def _tensorize(self, data) -> torch.Tensor:
        """Any array-like -> tensor on this backend's device.

        Routes non-tensor input through numpy so Python scalars and
        nested lists get numpy's dtype rules (float lists become float64,
        not torch's float32 default).
        """
        if isinstance(data, torch.Tensor):
            return data if data.device == self.device else data.to(self.device)
        return self._from_host(np.asarray(data))

    @staticmethod
    def _match_numpy_promotion(a, b):
        """Upcast int/bool tensors paired with a Python float to float64.

        numpy promotes ``int64_array * 0.5`` to float64; torch would use
        its global default dtype (float32) instead.
        """

        def _needs(tensor, other) -> bool:
            return (
                isinstance(tensor, torch.Tensor)
                and not tensor.dtype.is_floating_point
                and tensor.dtype is not torch.complex64
                and isinstance(other, float)
            )

        if _needs(a, b):
            a = a.to(torch.float64)
        if _needs(b, a):
            b = b.to(torch.float64)
        return a, b

    def _pair(self, a, b):
        """Prepare two operands for a binary op (scalars stay scalar)."""
        if isinstance(a, np.ndarray):
            a = self._from_host(a)
        if isinstance(b, np.ndarray):
            b = self._from_host(b)
        return self._match_numpy_promotion(a, b)

    def _pair_tensor(self, a, b):
        """Like :meth:`_pair` but guarantees both sides are tensors
        (for torch functions that reject Python scalars)."""
        a, b = self._pair(a, b)
        if not isinstance(a, torch.Tensor) and not isinstance(b, torch.Tensor):
            a = self._from_host(np.asarray(a))
        if not isinstance(a, torch.Tensor):
            a = torch.as_tensor(a, dtype=b.dtype if b.dtype.is_floating_point or not isinstance(a, float) else torch.float64, device=b.device)
        if not isinstance(b, torch.Tensor):
            b = torch.as_tensor(b, dtype=a.dtype if a.dtype.is_floating_point or not isinstance(b, float) else torch.float64, device=a.device)
        return a, b

    # ------------------------------------------------------------------
    # Creation / conversion
    # ------------------------------------------------------------------
    def asarray(self, data, dtype=None):
        target = self._torch_dtype(dtype)
        if isinstance(data, torch.Tensor):
            out = data if target is None or data.dtype == target else data.to(target)
            return out if out.device == self.device else out.to(self.device)
        if target is None:
            return self._from_host(np.asarray(data))
        return self._from_host(np.asarray(data, dtype=_NUMPY_FROM_TORCH[target]))

    def to_float_array(self, data):
        t = self.asarray(data)
        if t.dtype == self.dtype:
            return t
        if t.dtype == torch.float32 and self.dtype == torch.float64:
            # Mirror numpy_ref: float32 data is preserved, not widened.
            return t
        return t.to(self.dtype)

    def to_numpy(self, a):
        if isinstance(a, torch.Tensor):
            return a.detach().cpu().numpy()
        return np.asarray(a)

    def copy(self, a):
        return self._tensorize(a).clone()

    def copy_cast(self, a, dtype):
        return self._tensorize(a).to(self._torch_dtype(dtype), copy=True)

    def copyto(self, dst, src) -> None:
        dst.copy_(self._tensorize(src))

    def cast(self, a, dtype):
        # numpy's astype copies unconditionally; keep that so casts of
        # broadcast views never alias writable gradient buffers.
        return self._tensorize(a).to(self._torch_dtype(dtype), copy=True)

    def zeros(self, shape, dtype=None):
        return torch.zeros(shape, dtype=self._torch_dtype(dtype) or self.dtype, device=self.device)

    def zeros_like(self, a):
        return torch.zeros_like(a)

    def ones(self, shape, dtype=None):
        return torch.ones(shape, dtype=self._torch_dtype(dtype) or self.dtype, device=self.device)

    def ones_like(self, a):
        return torch.ones_like(a)

    def empty_like(self, a):
        return torch.empty_like(a)

    def arange(self, start, stop=None, step=1):
        # numpy decides the dtype (int64 for int args, float64 for float
        # args); torch.arange would pick float32 for float args.
        if stop is None:
            return self._from_host(np.arange(start))
        return self._from_host(np.arange(start, stop, step))

    def eye(self, n, dtype=None):
        return torch.eye(n, dtype=self._torch_dtype(dtype) or self.dtype, device=self.device)

    # ------------------------------------------------------------------
    # Elementwise (Python operators handle scalar-first and broadcasting)
    # ------------------------------------------------------------------
    def add(self, a, b, out=None):
        a, b = self._pair(a, b)
        if out is not None:
            a, b = self._pair_tensor(a, b)
            return torch.add(a, b, out=out)
        return a + b

    def subtract(self, a, b, out=None):
        a, b = self._pair(a, b)
        if out is not None:
            a, b = self._pair_tensor(a, b)
            return torch.subtract(a, b, out=out)
        return a - b

    def multiply(self, a, b, out=None):
        a, b = self._pair(a, b)
        if out is not None:
            a, b = self._pair_tensor(a, b)
            return torch.multiply(a, b, out=out)
        return a * b

    def divide(self, a, b, out=None):
        a, b = self._pair(a, b)
        if out is not None:
            a, b = self._pair_tensor(a, b)
            return torch.divide(a, b, out=out)
        return a / b

    def power(self, a, exponent):
        return self._tensorize(a) ** exponent

    def maximum(self, a, b):
        return torch.maximum(*self._pair_tensor(a, b))

    def minimum(self, a, b):
        return torch.minimum(*self._pair_tensor(a, b))

    def iadd(self, a, b):
        a += b
        return a

    def isub(self, a, b):
        a -= b
        return a

    def imul(self, a, b):
        a *= b
        return a

    def negative(self, a, out=None):
        return torch.neg(self._tensorize(a), out=out) if out is not None else -self._tensorize(a)

    def exp(self, a, out=None):
        return torch.exp(self._tensorize(a), out=out) if out is not None else torch.exp(self._tensorize(a))

    def log(self, a, out=None):
        return torch.log(self._tensorize(a), out=out) if out is not None else torch.log(self._tensorize(a))

    def log1p(self, a, out=None):
        return torch.log1p(self._tensorize(a), out=out) if out is not None else torch.log1p(self._tensorize(a))

    def sqrt(self, a, out=None):
        return torch.sqrt(self._tensorize(a), out=out) if out is not None else torch.sqrt(self._tensorize(a))

    def abs(self, a, out=None):
        return torch.abs(self._tensorize(a), out=out) if out is not None else torch.abs(self._tensorize(a))

    def sign(self, a):
        return torch.sign(self._tensorize(a))

    def tanh(self, a, out=None):
        return torch.tanh(self._tensorize(a), out=out) if out is not None else torch.tanh(self._tensorize(a))

    def sin(self, a):
        return torch.sin(self._tensorize(a))

    def cos(self, a):
        return torch.cos(self._tensorize(a))

    def clip(self, a, low, high, out=None):
        t = self._tensorize(a)
        if out is not None:
            return torch.clamp(t, min=low, max=high, out=out)
        return torch.clamp(t, min=low, max=high)

    def where(self, condition, a, b):
        cond = self._tensorize(condition)
        if cond.dtype != torch.bool:
            cond = cond.to(torch.bool)
        a, b = self._pair(a, b)
        if not isinstance(a, torch.Tensor) and not isinstance(b, torch.Tensor):
            # Two scalar branches (e.g. the GAT mask's (0.0, -1e9)):
            # numpy would produce float64, torch would use float32.
            dtype = torch.float64 if isinstance(a, float) or isinstance(b, float) else torch.int64
            a = torch.as_tensor(a, dtype=dtype, device=cond.device)
        if not isinstance(a, torch.Tensor):
            a = torch.as_tensor(a, dtype=b.dtype, device=b.device)
        if not isinstance(b, torch.Tensor):
            b = torch.as_tensor(b, dtype=a.dtype, device=a.device)
        return torch.where(cond, a, b)

    def greater(self, a, b):
        a, b = self._pair(a, b)
        return a > b

    def greater_equal(self, a, b):
        a, b = self._pair(a, b)
        return a >= b

    def less_equal(self, a, b):
        a, b = self._pair(a, b)
        return a <= b

    def equal(self, a, b):
        a, b = self._pair(a, b)
        return a == b

    def logical_or(self, a, b):
        return torch.logical_or(*self._pair_tensor(a, b))

    def logical_and(self, a, b):
        return torch.logical_and(*self._pair_tensor(a, b))

    def logical_not(self, a):
        return torch.logical_not(self._tensorize(a))

    def isfinite(self, a):
        return torch.isfinite(self._tensorize(a))

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def matmul(self, a, b):
        return self._tensorize(a) @ self._tensorize(b)

    def einsum(self, subscripts: str, *operands):
        return torch.einsum(subscripts, *[self._tensorize(op) for op in operands])

    # ------------------------------------------------------------------
    # Reductions (numpy's axis=None / tuple-axis / keepdims semantics)
    # ------------------------------------------------------------------
    def _reduce(self, fn, a, axis, keepdims):
        t = self._tensorize(a)
        if axis is None:
            if not keepdims or t.ndim == 0:
                return fn(t)
            axis = tuple(range(t.ndim))
        return fn(t, axis, keepdims)

    def sum(self, a, axis=None, keepdims: bool = False):
        return self._reduce(
            lambda t, dim=None, keep=False: t.sum() if dim is None else t.sum(dim=dim, keepdim=keep),
            a, axis, keepdims,
        )

    def amax(self, a, axis=None, keepdims: bool = False):
        return self._reduce(
            lambda t, dim=None, keep=False: t.amax() if dim is None else t.amax(dim=dim, keepdim=keep),
            a, axis, keepdims,
        )

    def amin(self, a, axis=None, keepdims: bool = False):
        return self._reduce(
            lambda t, dim=None, keep=False: t.amin() if dim is None else t.amin(dim=dim, keepdim=keep),
            a, axis, keepdims,
        )

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    def reshape(self, a, shape):
        return self._tensorize(a).reshape(shape)

    def transpose(self, a, axes=None):
        t = self._tensorize(a)
        if axes is None:
            axes = tuple(reversed(range(t.ndim)))
        return t.permute(tuple(int(axis) for axis in axes))

    def swapaxes(self, a, axis1: int, axis2: int):
        return torch.transpose(self._tensorize(a), axis1, axis2)

    def expand_dims(self, a, axis):
        t = self._tensorize(a)
        axes = (axis,) if isinstance(axis, (int, np.integer)) else tuple(axis)
        out_ndim = t.ndim + len(axes)
        for ax in sorted(int(ax) % out_ndim for ax in axes):
            t = t.unsqueeze(ax)
        return t

    def squeeze(self, a, axis=None):
        t = self._tensorize(a)
        if axis is None:
            return t.squeeze()
        axes = (axis,) if isinstance(axis, (int, np.integer)) else tuple(axis)
        for ax in sorted((int(ax) % t.ndim for ax in axes), reverse=True):
            t = t.squeeze(ax)
        return t

    def broadcast_to(self, a, shape):
        return self._tensorize(a).expand(tuple(int(n) for n in shape))

    def concatenate(self, arrays: Sequence, axis: int = 0):
        return torch.cat([self._tensorize(a) for a in arrays], dim=axis)

    def stack(self, arrays: Sequence, axis: int = 0):
        return torch.stack([self._tensorize(a) for a in arrays], dim=axis)

    def split(self, a, sections: int, axis: int = 0):
        t = self._tensorize(a)
        length = t.shape[axis]
        if length % sections:
            raise ValueError(
                f"array split does not result in an equal division ({length} into {sections})"
            )
        return list(torch.split(t, length // sections, dim=axis))

    def pad(self, a, pad_width, constant: float = 0.0):
        t = self._tensorize(a)
        pairs = self._normalise_pad(pad_width, t.ndim)
        flat: list[int] = []
        for before, after in reversed(pairs):
            flat.extend((int(before), int(after)))
        return F.pad(t, flat, mode="constant", value=constant)

    @staticmethod
    def _normalise_pad(pad_width, ndim: int) -> list[tuple[int, int]]:
        """numpy ``pad_width`` forms -> explicit per-dim (before, after)."""
        if isinstance(pad_width, (int, np.integer)):
            return [(int(pad_width), int(pad_width))] * ndim
        pad_width = list(pad_width)
        if pad_width and isinstance(pad_width[0], (int, np.integer)):
            before, after = pad_width  # a single (before, after) pair
            return [(int(before), int(after))] * ndim
        return [(int(before), int(after)) for before, after in pad_width]

    # ------------------------------------------------------------------
    # Indexing / scatter
    # ------------------------------------------------------------------
    def _convert_index(self, index):
        """Map numpy arrays inside an index expression to device tensors."""
        if isinstance(index, tuple):
            return tuple(self._convert_index(part) for part in index)
        if isinstance(index, np.ndarray):
            t = self._from_host(index)
            if t.dtype not in (torch.bool, torch.int64):
                t = t.to(torch.int64)
            return t
        return index

    def getitem(self, a, index):
        return self._tensorize(a)[self._convert_index(index)]

    def scatter_add(self, target, index, values) -> None:
        values = self._tensorize(values)
        if _is_basic_index(index):
            # Basic slicing cannot alias elements, so a strided += is exact.
            target[index] += values
            return
        advanced = index if isinstance(index, tuple) else (index,)
        if all(isinstance(part, (np.ndarray, torch.Tensor)) for part in advanced):
            # Pure advanced index: duplicate-safe accumulate on device.
            target.index_put_(self._convert_index(advanced), values, accumulate=True)
            return
        # Mixed basic+advanced indexing (slices alongside index arrays):
        # index_put_ cannot express it, so accumulate through numpy.  On
        # CPU ``.numpy()`` shares memory with the tensor, so np.add.at
        # mutates ``target`` directly; CUDA pays one round trip.
        np_index = tuple(
            part.cpu().numpy() if isinstance(part, torch.Tensor) else part for part in advanced
        )
        if target.device.type == "cpu":
            np.add.at(target.numpy(), np_index, values.cpu().numpy())
        else:  # pragma: no cover - needs a CUDA box
            host = target.cpu().numpy()
            np.add.at(host, np_index, values.cpu().numpy())
            target.copy_(torch.from_numpy(host))

    # ------------------------------------------------------------------
    # RNG: numpy generators, host-side draws (backend-identical streams)
    # ------------------------------------------------------------------
    def default_rng(self, seed=None):
        return np.random.default_rng(seed)

    def random(self, rng, shape):
        return self._from_host(rng.random(shape))

    def uniform(self, rng, low: float, high: float, shape):
        return self._from_host(rng.uniform(low, high, size=shape))

    def normal(self, rng, loc: float, scale: float, shape):
        return self._from_host(rng.normal(loc, scale, size=shape))

    def dropout_mask(self, rng, shape, keep: float, dtype):
        # The comparison happens on the host float64 draws, so the kept
        # pattern is bit-identical to the numpy backends for any seed.
        mask = self._from_host(rng.random(shape) < keep)
        return mask.to(self._torch_dtype(dtype)) / keep

    # ------------------------------------------------------------------
    # Fused composites (same formulations as numpy_fused, torch kernels)
    # ------------------------------------------------------------------
    def sigmoid(self, x):
        return torch.sigmoid(torch.clamp(self._tensorize(x), -60.0, 60.0))

    def sigmoid_backward(self, grad, out):
        return grad * out * (1.0 - out)

    def tanh_backward(self, grad, out):
        return grad * (1.0 - out * out)

    def softmax(self, x, axis: int = -1):
        return torch.softmax(self._tensorize(x), dim=axis)

    def softmax_backward(self, grad, out, axis: int = -1):
        return out * (grad - (grad * out).sum(dim=axis, keepdim=True))

    def log_softmax(self, x, axis: int = -1):
        out = F.log_softmax(self._tensorize(x), dim=axis)
        return out, out.exp()

    def log_softmax_backward(self, grad, soft, axis: int = -1):
        return grad - soft * grad.sum(dim=axis, keepdim=True)

    # ------------------------------------------------------------------
    # Dilated conv1d as per-tap strided GEMMs (numpy_fused's slab trick:
    # each kernel tap reads/writes one contiguous slab, so the whole conv
    # is K broadcast matmuls with no gather, no column tensor, no scatter)
    # ------------------------------------------------------------------
    def conv1d_apply(self, padded, weight, dilation: int, out_len: int):
        kernel = weight.shape[2]
        out = weight[:, :, 0] @ padded[:, :, :out_len]
        for k in range(1, kernel):
            start = k * dilation
            out += weight[:, :, k] @ padded[:, :, start : start + out_len]
        return out, None

    def conv1d_backward(self, grad, saved, padded, weight, dilation: int):
        kernel = weight.shape[2]
        out_len = grad.shape[-1]
        grad_weight = torch.empty_like(weight)
        grad_padded = torch.zeros_like(padded)
        for k in range(kernel):
            slab = slice(k * dilation, k * dilation + out_len)
            grad_weight[:, :, k] = torch.tensordot(
                grad, padded[:, :, slab], dims=([0, 2], [0, 2])
            )
            grad_padded[:, :, slab] += weight[:, :, k].T @ grad
        return grad_weight, grad_padded

    # ------------------------------------------------------------------
    # Optimiser steps, in place on the device buffers
    # ------------------------------------------------------------------
    def sgd_step(self, param, grad, velocity, lr: float, momentum: float) -> None:
        if momentum:
            velocity.mul_(momentum).add_(grad)
            param.sub_(velocity, alpha=lr)
        else:
            param.sub_(grad, alpha=lr)

    def adam_step(
        self,
        param,
        grad,
        m,
        v,
        lr: float,
        beta1: float,
        beta2: float,
        eps: float,
        correction1: float,
        correction2: float,
        weight_decay: float,
    ) -> None:
        if weight_decay:
            grad = grad.add(param, alpha=weight_decay)
        m.mul_(beta1).add_(grad, alpha=1.0 - beta1)
        v.mul_(beta2).addcmul_(grad, grad, value=1.0 - beta2)
        denom = (v / correction2).sqrt_().add_(eps)
        param.addcdiv_(m, denom, value=-lr / correction1)
