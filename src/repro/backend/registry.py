"""Backend registry: naming, selection, and the process-wide active backend.

Selection precedence (first hit wins):

1. an explicit :func:`set_backend` / :func:`use_backend` call;
2. the ``REPRO_BACKEND`` environment variable, read once on first use;
3. the default, ``numpy_ref``.

``STSMConfig.backend`` threads a per-model choice through the same
mechanism — :class:`~repro.core.model.STSMForecaster` wraps its fit and
predict paths in :func:`use_backend`.
"""

from __future__ import annotations

import contextlib
import os
import threading
from typing import Callable, Iterator

from .base import ArrayBackend
from .numpy_fused import NumpyFusedBackend
from .numpy_ref import NumpyRefBackend

__all__ = [
    "available_backends",
    "get_backend",
    "register_backend",
    "set_backend",
    "use_backend",
]

DEFAULT_BACKEND = "numpy_ref"
ENV_VAR = "REPRO_BACKEND"

_FACTORIES: dict[str, Callable[[], ArrayBackend]] = {}
_INSTANCES: dict[str, ArrayBackend] = {}
_ACTIVE: ArrayBackend | None = None
_LOCK = threading.Lock()


def register_backend(name: str, factory: Callable[[], ArrayBackend]) -> None:
    """Register a backend factory under ``name`` (idempotent per name)."""
    if not name or not isinstance(name, str):
        raise ValueError(f"backend name must be a non-empty string, got {name!r}")
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_FACTORIES))


def _instance(name: str) -> ArrayBackend:
    backend = _INSTANCES.get(name)
    if backend is None:
        factory = _FACTORIES.get(name)
        if factory is None:
            raise KeyError(
                f"unknown backend {name!r}; available: {', '.join(available_backends())}"
            )
        backend = factory()
        _INSTANCES[name] = backend
    return backend


def get_backend() -> ArrayBackend:
    """The active backend (resolving ``REPRO_BACKEND`` on first use)."""
    global _ACTIVE
    backend = _ACTIVE
    if backend is None:
        with _LOCK:
            if _ACTIVE is None:
                _ACTIVE = _instance(os.environ.get(ENV_VAR, DEFAULT_BACKEND))
            backend = _ACTIVE
    return backend


def set_backend(backend: str | ArrayBackend) -> ArrayBackend:
    """Switch the process-wide active backend; returns the previous one.

    Accepts a registered name or an :class:`ArrayBackend` instance.
    """
    global _ACTIVE
    previous = get_backend()
    _ACTIVE = _instance(backend) if isinstance(backend, str) else backend
    return previous


@contextlib.contextmanager
def use_backend(backend: str | ArrayBackend | None) -> Iterator[ArrayBackend]:
    """Context manager scoping the active backend; ``None`` is a no-op.

    Mixing tensors created under different numpy-family backends is safe
    (they share the ndarray type); a future device backend would need its
    tensors created and consumed under the same backend scope.
    """
    if backend is None:
        yield get_backend()
        return
    previous = set_backend(backend)
    try:
        yield get_backend()
    finally:
        set_backend(previous)


register_backend("numpy_ref", NumpyRefBackend)
register_backend("numpy_fused", NumpyFusedBackend)
