"""Backend registry: naming, selection, and the process-wide active backend.

Selection precedence (first hit wins):

1. an explicit :func:`set_backend` / :func:`use_backend` call;
2. the ``REPRO_BACKEND`` environment variable, read once on first use;
3. the default, ``numpy_ref``.

``STSMConfig.backend`` threads a per-model choice through the same
mechanism — :class:`~repro.core.model.STSMForecaster` wraps its fit and
predict paths in :func:`use_backend`, resolving device/dtype overrides
through :func:`resolve_backend`.

Optional backends (currently ``torch``) register lazily: the name appears
in :func:`available_backends` only when the library is importable, so
``import repro.backend`` keeps working on machines without it.  Unknown or
uninstalled names raise :class:`UnknownBackendError` /
:class:`BackendUnavailableError` with the full list of registered and
known-optional backends plus an install hint.
"""

from __future__ import annotations

import contextlib
import importlib.util
import os
import threading
from typing import Callable, Iterator

from ..obs.profiling import maybe_instrument_backend
from .base import ArrayBackend
from .numpy_fused import NumpyFusedBackend
from .numpy_ref import NumpyRefBackend

__all__ = [
    "BackendUnavailableError",
    "UnknownBackendError",
    "available_backends",
    "backend_available",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "set_backend",
    "use_backend",
]

DEFAULT_BACKEND = "numpy_ref"
ENV_VAR = "REPRO_BACKEND"

#: Backends that exist but need an extra library: name -> install hint.
KNOWN_OPTIONAL_BACKENDS = {
    "torch": "pip install torch --index-url https://download.pytorch.org/whl/cpu",
}

_FACTORIES: dict[str, Callable[[], ArrayBackend]] = {}
_INSTANCES: dict[str, ArrayBackend] = {}
_ACTIVE: ArrayBackend | None = None
_LOCK = threading.Lock()


class UnknownBackendError(KeyError):
    """Raised for a backend name that is neither registered nor optional.

    Subclasses ``KeyError`` so pre-existing ``except KeyError`` handling
    (and tests matching on "unknown backend") keeps working.
    """

    def __init__(self, name: str) -> None:
        message = (
            f"unknown backend {name!r}; registered: "
            f"{', '.join(available_backends()) or '(none)'}"
        )
        missing = sorted(set(KNOWN_OPTIONAL_BACKENDS) - set(_FACTORIES))
        if missing:
            hints = "; ".join(
                f"{opt} ({KNOWN_OPTIONAL_BACKENDS[opt]})" for opt in missing
            )
            message += f"; known optional, not installed: {hints}"
        super().__init__(message)

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]


class BackendUnavailableError(ImportError):
    """Raised when a registered optional backend fails to import."""


def register_backend(name: str, factory: Callable[[], ArrayBackend]) -> None:
    """Register a backend factory under ``name`` (idempotent per name)."""
    if not name or not isinstance(name, str):
        raise ValueError(f"backend name must be a non-empty string, got {name!r}")
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted.

    Optional backends appear only when their library is importable; use
    :func:`backend_available` to also verify the import actually works.
    """
    return tuple(sorted(_FACTORIES))


def backend_available(name: str) -> bool:
    """True when ``name`` is registered and its backend instantiates."""
    try:
        _instance(name)
    except (UnknownBackendError, BackendUnavailableError):
        return False
    return True


def _instance(name: str) -> ArrayBackend:
    backend = _INSTANCES.get(name)
    if backend is None:
        factory = _FACTORIES.get(name)
        if factory is None:
            raise UnknownBackendError(name)
        # With REPRO_OBS=1 every backend instance is wrapped in an
        # op-counting proxy (attribute-forwarding; results untouched).
        backend = maybe_instrument_backend(factory())
        _INSTANCES[name] = backend
    return backend


def get_backend() -> ArrayBackend:
    """The active backend (resolving ``REPRO_BACKEND`` on first use)."""
    global _ACTIVE
    backend = _ACTIVE
    if backend is None:
        with _LOCK:
            if _ACTIVE is None:
                _ACTIVE = _instance(os.environ.get(ENV_VAR, DEFAULT_BACKEND))
            backend = _ACTIVE
    return backend


def set_backend(backend: str | ArrayBackend) -> ArrayBackend:
    """Switch the process-wide active backend; returns the previous one.

    Accepts a registered name or an :class:`ArrayBackend` instance.
    """
    global _ACTIVE
    previous = get_backend()
    _ACTIVE = _instance(backend) if isinstance(backend, str) else backend
    return previous


def resolve_backend(
    name: str | None,
    device: str | None = None,
    dtype: str | None = None,
) -> ArrayBackend | None:
    """Resolve a (name, device, dtype) triple to a backend instance.

    Returns ``None`` when all three are ``None`` — the caller's
    :func:`use_backend` then treats it as "keep the active backend".
    Device/dtype overrides with ``name=None`` configure the *active*
    backend; numpy-family backends accept only cpu/float64 (they raise
    :class:`ValueError` otherwise, pointing at the torch backend).
    """
    if name is None and device is None and dtype is None:
        return None
    backend = _instance(name) if name is not None else get_backend()
    return backend.configured(device=device, dtype=dtype)


@contextlib.contextmanager
def use_backend(backend: str | ArrayBackend | None) -> Iterator[ArrayBackend]:
    """Context manager scoping the active backend; ``None`` is a no-op.

    Mixing tensors created under different numpy-family backends is safe
    (they share the ndarray type); device backends (torch) need their
    tensors created and consumed under the same backend scope.
    """
    if backend is None:
        yield get_backend()
        return
    previous = set_backend(backend)
    try:
        yield get_backend()
    finally:
        set_backend(previous)


def _torch_factory() -> ArrayBackend:
    try:
        from .torch_backend import TorchBackend
    except ImportError as error:
        # find_spec saw torch but the import failed (broken install,
        # missing shared libraries): surface the hint, not a traceback
        # pointing into torch internals.
        raise BackendUnavailableError(
            f"backend 'torch' is registered but failed to import: {error}. "
            f"Reinstall with: {KNOWN_OPTIONAL_BACKENDS['torch']}"
        ) from error
    return TorchBackend()


register_backend("numpy_ref", NumpyRefBackend)
register_backend("numpy_fused", NumpyFusedBackend)
if importlib.util.find_spec("torch") is not None:
    register_backend("torch", _torch_factory)
