"""Reference numpy backend — bit-identical to the pre-backend substrate.

Every primitive is the literal numpy expression the autograd/nn/optim code
used before the backend seam existed, so any fixed-seed fit through this
backend reproduces the historical results exactly (enforced by
``tests/backend/test_golden_ref.py``).  Keep it boring: no ``out=``
buffers, no reassociated reductions, no fused kernels.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .base import ArrayBackend

__all__ = ["NumpyRefBackend"]


class NumpyRefBackend(ArrayBackend):
    """Plain numpy implementation of the :class:`ArrayBackend` surface."""

    name = "numpy_ref"

    # -- creation / conversion -----------------------------------------
    def asarray(self, data, dtype=None):
        return np.asarray(data, dtype=dtype)

    def to_float_array(self, data):
        arr = np.asarray(data)
        if arr.dtype not in (np.float32, np.float64):
            arr = arr.astype(np.float64)
        return arr

    def to_numpy(self, a):
        return np.asarray(a)

    def copy(self, a):
        return np.array(a, copy=True)

    def copy_cast(self, a, dtype):
        return np.array(a, dtype=dtype, copy=True)

    def copyto(self, dst, src) -> None:
        np.copyto(dst, src)

    def cast(self, a, dtype):
        return a.astype(dtype)

    def zeros(self, shape, dtype=None):
        return np.zeros(shape, dtype=dtype)

    def zeros_like(self, a):
        return np.zeros_like(a)

    def ones(self, shape, dtype=None):
        return np.ones(shape, dtype=dtype)

    def ones_like(self, a):
        return np.ones_like(a)

    def empty_like(self, a):
        return np.empty_like(a)

    def arange(self, start, stop=None, step=1):
        if stop is None:
            return np.arange(start)
        return np.arange(start, stop, step)

    def eye(self, n, dtype=None):
        return np.eye(n, dtype=dtype)

    # -- elementwise ----------------------------------------------------
    def add(self, a, b, out=None):
        return np.add(a, b, out=out)

    def subtract(self, a, b, out=None):
        return np.subtract(a, b, out=out)

    def multiply(self, a, b, out=None):
        return np.multiply(a, b, out=out)

    def divide(self, a, b, out=None):
        return np.divide(a, b, out=out)

    def power(self, a, exponent):
        return a ** exponent

    def maximum(self, a, b):
        return np.maximum(a, b)

    def minimum(self, a, b):
        return np.minimum(a, b)

    def iadd(self, a, b):
        a += b
        return a

    def isub(self, a, b):
        a -= b
        return a

    def imul(self, a, b):
        a *= b
        return a

    def negative(self, a, out=None):
        return np.negative(a, out=out)

    def exp(self, a, out=None):
        return np.exp(a, out=out)

    def log(self, a, out=None):
        return np.log(a, out=out)

    def log1p(self, a, out=None):
        return np.log1p(a, out=out)

    def sqrt(self, a, out=None):
        return np.sqrt(a, out=out)

    def abs(self, a, out=None):
        return np.absolute(a, out=out)

    def sign(self, a):
        return np.sign(a)

    def tanh(self, a, out=None):
        return np.tanh(a, out=out)

    def sin(self, a):
        return np.sin(a)

    def cos(self, a):
        return np.cos(a)

    def clip(self, a, low, high, out=None):
        return np.clip(a, low, high, out=out)

    def where(self, condition, a, b):
        return np.where(condition, a, b)

    def greater(self, a, b):
        return np.greater(a, b)

    def greater_equal(self, a, b):
        return np.greater_equal(a, b)

    def less_equal(self, a, b):
        return np.less_equal(a, b)

    def equal(self, a, b):
        return np.equal(a, b)

    def logical_or(self, a, b):
        return np.logical_or(a, b)

    def logical_and(self, a, b):
        return np.logical_and(a, b)

    def logical_not(self, a):
        return np.logical_not(a)

    def isfinite(self, a):
        return np.isfinite(a)

    # -- linear algebra -------------------------------------------------
    def matmul(self, a, b):
        return a @ b

    def einsum(self, subscripts: str, *operands):
        return np.einsum(subscripts, *operands, optimize=True)

    # -- reductions -----------------------------------------------------
    def sum(self, a, axis=None, keepdims: bool = False):
        return np.sum(a, axis=axis, keepdims=keepdims)

    def amax(self, a, axis=None, keepdims: bool = False):
        return np.max(a, axis=axis, keepdims=keepdims)

    def amin(self, a, axis=None, keepdims: bool = False):
        return np.min(a, axis=axis, keepdims=keepdims)

    # -- shape ----------------------------------------------------------
    def reshape(self, a, shape):
        return a.reshape(shape)

    def transpose(self, a, axes=None):
        return a.transpose(axes) if axes is not None else a.transpose()

    def swapaxes(self, a, axis1: int, axis2: int):
        return np.swapaxes(a, axis1, axis2)

    def expand_dims(self, a, axis):
        return np.expand_dims(a, axis=axis)

    def squeeze(self, a, axis=None):
        return np.squeeze(a, axis=axis)

    def broadcast_to(self, a, shape):
        return np.broadcast_to(a, shape)

    def concatenate(self, arrays: Sequence, axis: int = 0):
        return np.concatenate(arrays, axis=axis)

    def stack(self, arrays: Sequence, axis: int = 0):
        return np.stack(arrays, axis=axis)

    def split(self, a, sections: int, axis: int = 0):
        return np.split(a, sections, axis=axis)

    def pad(self, a, pad_width, constant: float = 0.0):
        return np.pad(a, pad_width, constant_values=constant)

    # -- indexing / scatter ---------------------------------------------
    def getitem(self, a, index):
        return a[index]

    def scatter_add(self, target, index, values) -> None:
        np.add.at(target, index, values)

    # -- RNG -------------------------------------------------------------
    def default_rng(self, seed=None):
        return np.random.default_rng(seed)

    def random(self, rng, shape):
        return rng.random(shape)

    def uniform(self, rng, low: float, high: float, shape):
        return rng.uniform(low, high, size=shape)

    def normal(self, rng, loc: float, scale: float, shape):
        return rng.normal(loc, scale, size=shape)
