"""Per-horizon and per-location error profiles.

The headline tables average over the whole forecast window; these helpers
break errors down by lead time (how fast accuracy decays from +1 step to
+T') and by location (which parts of the unobserved region are hard) —
the views practitioners ask for first when adopting a forecaster.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import SpatioTemporalDataset
from ..data.splits import SpaceSplit
from ..data.windows import WindowSpec
from ..interfaces import Forecaster
from .metrics import Metrics, compute_metrics

__all__ = ["horizon_profile", "location_profile", "stack_truth"]


def stack_truth(
    dataset: SpatioTemporalDataset,
    split: SpaceSplit,
    spec: WindowSpec,
    window_starts: np.ndarray,
) -> np.ndarray:
    """Ground-truth tensor ``(windows, T', N_u)`` for the given starts."""
    return np.stack(
        [
            dataset.values[s + spec.input_length : s + spec.total][:, split.unobserved]
            for s in np.asarray(window_starts, dtype=int)
        ]
    )


def horizon_profile(
    forecaster: Forecaster,
    dataset: SpatioTemporalDataset,
    split: SpaceSplit,
    spec: WindowSpec,
    window_starts: np.ndarray,
) -> list[Metrics]:
    """Metrics at each lead time (index ``h`` -> forecasting ``h+1`` steps ahead)."""
    predictions = forecaster.predict(window_starts)
    truth = stack_truth(dataset, split, spec, window_starts)
    if predictions.shape != truth.shape:
        raise ValueError(
            f"prediction shape {predictions.shape} does not match truth {truth.shape}"
        )
    return [
        compute_metrics(predictions[:, h, :], truth[:, h, :])
        for h in range(spec.horizon)
    ]


def location_profile(
    forecaster: Forecaster,
    dataset: SpatioTemporalDataset,
    split: SpaceSplit,
    spec: WindowSpec,
    window_starts: np.ndarray,
) -> list[dict]:
    """Per-unobserved-location metrics, sorted worst-RMSE first.

    Each entry carries the global location id, its coordinates, its
    distance to the nearest observed sensor, and its metrics — enough to
    see whether errors concentrate deep inside the unobserved region.
    """
    predictions = forecaster.predict(window_starts)
    truth = stack_truth(dataset, split, spec, window_starts)
    observed_coords = dataset.coords[split.observed]
    entries = []
    for j, location in enumerate(split.unobserved):
        metrics = compute_metrics(predictions[:, :, j], truth[:, :, j])
        gap = np.linalg.norm(observed_coords - dataset.coords[location], axis=1).min()
        entries.append(
            {
                "location": int(location),
                "coords": tuple(np.round(dataset.coords[location], 1)),
                "nearest_observed_distance": float(gap),
                "metrics": metrics,
            }
        )
    entries.sort(key=lambda e: e["metrics"].rmse, reverse=True)
    return entries
