"""Metrics and evaluation harness (paper §5.1)."""

from .evaluator import (
    EvaluationResult,
    average_metrics,
    evaluate_forecaster,
    evaluate_on_splits,
    forecast_window_starts,
)
from .horizon import horizon_profile, location_profile, stack_truth
from .intervals import (
    IntervalMetrics,
    crps_from_samples,
    empirical_interval,
    evaluate_intervals,
    mean_interval_width,
    picp,
    winkler_score,
)
from .metrics import Metrics, compute_metrics, mae, mape, r_squared, rmse
from .significance import PairedComparison, paired_bootstrap

__all__ = [
    "Metrics",
    "compute_metrics",
    "rmse",
    "mae",
    "mape",
    "r_squared",
    "EvaluationResult",
    "evaluate_forecaster",
    "evaluate_on_splits",
    "average_metrics",
    "forecast_window_starts",
    "horizon_profile",
    "location_profile",
    "stack_truth",
    "paired_bootstrap",
    "PairedComparison",
    "IntervalMetrics",
    "evaluate_intervals",
    "empirical_interval",
    "picp",
    "mean_interval_width",
    "winkler_score",
    "crps_from_samples",
]
