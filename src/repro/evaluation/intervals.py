"""Prediction-interval metrics for probabilistic forecasts.

The paper's related work cites DeepSTUQ [Qian et al. 2023] for uncertainty
quantification in traffic forecasting but STSM itself is a point
forecaster.  The :mod:`repro.core.uncertainty` extension adds MC-dropout
and seed-ensemble predictive distributions on top of STSM; this module
provides the standard metrics to score them:

* **PICP** — prediction interval coverage probability: the fraction of
  actuals that fall inside the interval; should match the nominal level.
* **MPIW** — mean prediction interval width; narrower is better *at equal
  coverage*.
* **Winkler (interval) score** — width plus a coverage penalty scaled by
  ``2/α``; proper for the central ``1−α`` interval, lower is better.
* **CRPS** — continuous ranked probability score from samples, via the
  energy-form identity ``CRPS = E|X − y| − ½·E|X − X′|``; generalises MAE
  to distributions, lower is better.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "IntervalMetrics",
    "empirical_interval",
    "picp",
    "mean_interval_width",
    "winkler_score",
    "crps_from_samples",
    "evaluate_intervals",
]


def _as_float(values) -> np.ndarray:
    return np.asarray(values, dtype=float)


def empirical_interval(
    samples: np.ndarray, coverage: float = 0.9
) -> tuple[np.ndarray, np.ndarray]:
    """Central interval bounds from the sample axis (axis 0).

    Parameters
    ----------
    samples:
        ``(S, ...)`` Monte-Carlo predictions; the first axis is the sample
        dimension.
    coverage:
        Nominal central coverage, e.g. ``0.9`` for an 80–120 quantile pair
        at 5% / 95%.
    """
    if not 0.0 < coverage < 1.0:
        raise ValueError(f"coverage must be in (0, 1), got {coverage}")
    samples = _as_float(samples)
    if samples.ndim < 1 or samples.shape[0] < 2:
        raise ValueError("need at least 2 samples along axis 0")
    alpha = 1.0 - coverage
    lower = np.quantile(samples, alpha / 2.0, axis=0)
    upper = np.quantile(samples, 1.0 - alpha / 2.0, axis=0)
    return lower, upper


def picp(lower: np.ndarray, upper: np.ndarray, actual: np.ndarray) -> float:
    """Fraction of actual values inside ``[lower, upper]``."""
    lower, upper, actual = _as_float(lower), _as_float(upper), _as_float(actual)
    inside = (actual >= lower) & (actual <= upper)
    return float(inside.mean())


def mean_interval_width(lower: np.ndarray, upper: np.ndarray) -> float:
    """Average interval width (MPIW)."""
    return float((_as_float(upper) - _as_float(lower)).mean())


def winkler_score(
    lower: np.ndarray, upper: np.ndarray, actual: np.ndarray, coverage: float = 0.9
) -> float:
    """Winkler/interval score for the central ``coverage`` interval.

    ``width + (2/α)·(lower − y)`` below the interval and symmetrically
    above; equals the plain width when the actual is covered.
    """
    if not 0.0 < coverage < 1.0:
        raise ValueError(f"coverage must be in (0, 1), got {coverage}")
    alpha = 1.0 - coverage
    lower, upper, actual = _as_float(lower), _as_float(upper), _as_float(actual)
    width = upper - lower
    below = np.maximum(lower - actual, 0.0)
    above = np.maximum(actual - upper, 0.0)
    return float((width + (2.0 / alpha) * (below + above)).mean())


def crps_from_samples(samples: np.ndarray, actual: np.ndarray) -> float:
    """Sample-based CRPS, averaged over all forecast entries.

    Uses the energy form ``E|X − y| − ½·E|X − X′|`` with all S² sample
    pairs.  ``samples`` is ``(S, ...)`` and ``actual`` matches the trailing
    shape.
    """
    samples = _as_float(samples)
    actual = _as_float(actual)
    if samples.shape[1:] != actual.shape:
        raise ValueError(
            f"samples trailing shape {samples.shape[1:]} != actual shape {actual.shape}"
        )
    num_samples = samples.shape[0]
    if num_samples < 2:
        raise ValueError("need at least 2 samples for CRPS")
    term_accuracy = np.abs(samples - actual[None]).mean()
    # Pairwise spread without materialising the (S, S, ...) tensor at once.
    spread = 0.0
    for i in range(num_samples):
        spread += np.abs(samples[i][None] - samples).mean()
    term_spread = spread / num_samples
    return float(term_accuracy - 0.5 * term_spread)


@dataclass(frozen=True)
class IntervalMetrics:
    """Scores for one probabilistic forecast at one nominal coverage."""

    coverage_nominal: float
    picp: float
    mpiw: float
    winkler: float
    crps: float

    def as_dict(self) -> dict:
        return {
            "coverage_nominal": self.coverage_nominal,
            "picp": self.picp,
            "mpiw": self.mpiw,
            "winkler": self.winkler,
            "crps": self.crps,
        }


def evaluate_intervals(
    samples: np.ndarray, actual: np.ndarray, coverage: float = 0.9
) -> IntervalMetrics:
    """All interval metrics from Monte-Carlo samples against actuals."""
    lower, upper = empirical_interval(samples, coverage)
    return IntervalMetrics(
        coverage_nominal=coverage,
        picp=picp(lower, upper, actual),
        mpiw=mean_interval_width(lower, upper),
        winkler=winkler_score(lower, upper, actual, coverage),
        crps=crps_from_samples(samples, actual),
    )
