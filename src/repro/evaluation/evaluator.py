"""End-to-end model evaluation on a dataset + split.

Handles the paper's protocol (§5.1.1): temporal 70/30 split, fit on the
observed region over the training period, forecast the unobserved region
over test-period windows, and report RMSE/MAE/MAPE/R² plus wall-clock
train/test times (Table 5).  ``evaluate_on_splits`` averages over the four
standard space splits.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..data.dataset import SpatioTemporalDataset
from ..data.splits import SpaceSplit, four_standard_splits, temporal_split
from ..data.windows import WindowSpec, window_starts
from ..interfaces import FitReport, Forecaster
from .metrics import Metrics, compute_metrics

__all__ = ["EvaluationResult", "evaluate_forecaster", "evaluate_on_splits", "average_metrics"]


@dataclass
class EvaluationResult:
    """Metrics and timings for one (model, dataset, split) run."""

    model_name: str
    dataset_name: str
    split_name: str
    metrics: Metrics
    fit_report: FitReport
    test_seconds: float
    num_windows: int
    extra: dict = field(default_factory=dict)


def forecast_window_starts(
    dataset: SpatioTemporalDataset,
    spec: WindowSpec,
    train_fraction: float = 0.7,
    stride: int | None = None,
    max_windows: int | None = None,
) -> np.ndarray:
    """Window starts lying fully inside the test (last 30%) period."""
    _train_ix, test_ix = temporal_split(dataset.num_steps, train_fraction)
    first = int(test_ix[0])
    usable = dataset.num_steps - spec.total
    if usable < first:
        raise ValueError("test period is shorter than one window")
    stride = stride if stride is not None else 1
    starts = np.arange(first, usable + 1, stride)
    if max_windows is not None and len(starts) > max_windows:
        pick = np.linspace(0, len(starts) - 1, max_windows).round().astype(int)
        starts = starts[np.unique(pick)]
    return starts


def evaluate_forecaster(
    forecaster: Forecaster,
    dataset: SpatioTemporalDataset,
    split: SpaceSplit,
    spec: WindowSpec,
    train_fraction: float = 0.7,
    test_stride: int | None = None,
    max_test_windows: int | None = 64,
    use_service: bool = False,
    store=None,
) -> EvaluationResult:
    """Fit and evaluate one model on one dataset/split.

    ``max_test_windows`` caps the number of evaluated windows (spread
    evenly over the test period) so reduced-scale benchmark runs stay
    fast; pass ``None`` to use every window.

    ``use_service`` routes the test predictions through a
    :class:`~repro.serving.ForecastService` (coalesced batches +
    per-window LRU cache) instead of one direct ``predict`` call; the
    service's counters land in ``result.extra["service"]``.  For
    stateless models the outputs (and hence metrics) are identical
    either way; for stateful ones (GE-GAN) the service issues
    per-window ``predict`` calls, which draw different noise than one
    batched call, so its metrics differ between the two paths.

    ``store`` (with ``use_service``) draws the per-window result cache
    from a shared :class:`~repro.engine.ArtifactStore`: repeated sweeps
    over the same fitted model content serve their test windows from
    the store (bit-exact hits, so metrics are unchanged).  Models with
    no derivable content scope (naive baselines) silently keep a
    private cache.
    """
    split.validate(dataset.num_locations)
    train_ix, _test_ix = temporal_split(dataset.num_steps, train_fraction)
    fit_report = forecaster.fit(dataset, split, spec, train_ix)

    starts = forecast_window_starts(
        dataset, spec, train_fraction, stride=test_stride, max_windows=max_test_windows
    )
    extra: dict = {}
    began = time.perf_counter()
    if use_service:
        from ..engine import default_store_scope  # local import: avoid cycle
        from ..serving import ForecastService

        service_kwargs: dict = {}
        if store is not None:
            scope = default_store_scope(forecaster)  # hash weights once
            if scope is not None:
                service_kwargs = {"store": store, "store_scope": scope}
        service = ForecastService(
            forecaster, cache_size=max(len(starts), 1), **service_kwargs
        )
        predictions = service.forecast(starts)
        extra["service"] = service.stats
    else:
        predictions = forecaster.predict(starts)
    test_seconds = time.perf_counter() - began

    truth = np.stack(
        [
            dataset.values[s + spec.input_length : s + spec.total][:, split.unobserved]
            for s in starts
        ]
    )
    if predictions.shape != truth.shape:
        raise ValueError(
            f"{forecaster.name} returned predictions of shape {predictions.shape}, "
            f"expected {truth.shape}"
        )
    return EvaluationResult(
        model_name=forecaster.name,
        dataset_name=dataset.name,
        split_name=split.name,
        metrics=compute_metrics(predictions, truth),
        fit_report=fit_report,
        test_seconds=test_seconds,
        num_windows=len(starts),
        extra=extra,
    )


def average_metrics(results: Sequence[EvaluationResult]) -> Metrics:
    """Mean of each metric over runs (the paper reports split averages)."""
    if not results:
        raise ValueError("no results to average")
    return Metrics(
        rmse=float(np.mean([r.metrics.rmse for r in results])),
        mae=float(np.mean([r.metrics.mae for r in results])),
        mape=float(np.mean([r.metrics.mape for r in results])),
        r2=float(np.mean([r.metrics.r2 for r in results])),
    )


def evaluate_on_splits(
    make_forecaster: Callable[[], Forecaster],
    dataset: SpatioTemporalDataset,
    spec: WindowSpec,
    splits: Sequence[SpaceSplit] | None = None,
    **kwargs,
) -> tuple[Metrics, list[EvaluationResult]]:
    """Evaluate a fresh model instance on each split and average.

    ``make_forecaster`` is called once per split so no state leaks between
    spatial partitions (the paper averages four independent runs).
    """
    splits = splits if splits is not None else four_standard_splits(dataset.coords)
    results = [
        evaluate_forecaster(make_forecaster(), dataset, split, spec, **kwargs)
        for split in splits
    ]
    return average_metrics(results), results
