"""Forecast error metrics (paper §5.1.3).

RMSE, MAE, MAPE and R², where R² measures "how much better the model
prediction results are compared with just using average observations as
results" — i.e. the classic coefficient of determination against the test
ground truth's mean.  MAPE guards against division by ~0 with a floor on
the absolute ground truth (PM2.5 and speeds are bounded away from zero,
but synthetic noise can graze it).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Metrics", "rmse", "mae", "mape", "r_squared", "compute_metrics"]

#: Floor on |truth| in the MAPE denominator.
MAPE_FLOOR = 1e-3


def _validate(prediction: np.ndarray, truth: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    prediction = np.asarray(prediction, dtype=float)
    truth = np.asarray(truth, dtype=float)
    if prediction.shape != truth.shape:
        raise ValueError(f"shape mismatch: prediction {prediction.shape} vs truth {truth.shape}")
    if prediction.size == 0:
        raise ValueError("cannot compute metrics on empty arrays")
    return prediction.ravel(), truth.ravel()


def rmse(prediction: np.ndarray, truth: np.ndarray) -> float:
    """Root mean squared error."""
    p, t = _validate(prediction, truth)
    return float(np.sqrt(np.mean((p - t) ** 2)))


def mae(prediction: np.ndarray, truth: np.ndarray) -> float:
    """Mean absolute error."""
    p, t = _validate(prediction, truth)
    return float(np.mean(np.abs(p - t)))


def mape(prediction: np.ndarray, truth: np.ndarray) -> float:
    """Mean absolute percentage error (as a fraction, matching the paper)."""
    p, t = _validate(prediction, truth)
    return float(np.mean(np.abs(p - t) / np.maximum(np.abs(t), MAPE_FLOOR)))


def r_squared(prediction: np.ndarray, truth: np.ndarray) -> float:
    """Coefficient of determination vs. the mean-observation predictor."""
    p, t = _validate(prediction, truth)
    residual = np.sum((t - p) ** 2)
    total = np.sum((t - t.mean()) ** 2)
    if total == 0:
        return 0.0 if residual > 0 else 1.0
    return float(1.0 - residual / total)


@dataclass(frozen=True)
class Metrics:
    """The four-metric bundle used across all result tables."""

    rmse: float
    mae: float
    mape: float
    r2: float

    def as_dict(self) -> dict[str, float]:
        return {"RMSE": self.rmse, "MAE": self.mae, "MAPE": self.mape, "R2": self.r2}

    def __str__(self) -> str:
        return (
            f"RMSE={self.rmse:.3f} MAE={self.mae:.3f} "
            f"MAPE={self.mape:.3f} R2={self.r2:.3f}"
        )


def compute_metrics(prediction: np.ndarray, truth: np.ndarray) -> Metrics:
    """All four metrics in one call."""
    return Metrics(
        rmse=rmse(prediction, truth),
        mae=mae(prediction, truth),
        mape=mape(prediction, truth),
        r2=r_squared(prediction, truth),
    )
