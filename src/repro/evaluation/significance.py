"""Paired bootstrap significance test for model comparisons.

The paper reports point estimates; when deltas are small (e.g. STSM vs
INCREASE within a few percent), a paired test over the shared evaluation
windows tells you whether the ordering is stable.  This is the standard
paired-bootstrap on per-window squared errors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PairedComparison", "paired_bootstrap"]


@dataclass(frozen=True)
class PairedComparison:
    """Outcome of a paired bootstrap between model A and model B.

    Attributes
    ----------
    rmse_a / rmse_b:
        Point-estimate RMSEs on the shared windows.
    delta:
        ``rmse_a - rmse_b`` (negative = A better).
    p_value:
        Two-sided bootstrap p-value for ``delta != 0``.
    wins:
        Fraction of bootstrap resamples where A beats B.
    """

    rmse_a: float
    rmse_b: float
    delta: float
    p_value: float
    wins: float

    @property
    def significant(self) -> bool:
        """Conventional 5% threshold."""
        return self.p_value < 0.05


def paired_bootstrap(
    predictions_a: np.ndarray,
    predictions_b: np.ndarray,
    truth: np.ndarray,
    num_resamples: int = 2000,
    rng: np.random.Generator | None = None,
) -> PairedComparison:
    """Compare two models' predictions over the same windows.

    Parameters
    ----------
    predictions_a / predictions_b:
        ``(windows, ...)`` prediction tensors over identical windows.
    truth:
        Matching ground-truth tensor.
    num_resamples:
        Bootstrap iterations (resampling windows with replacement).
    rng:
        Random generator (deterministic default).
    """
    predictions_a = np.asarray(predictions_a, dtype=float)
    predictions_b = np.asarray(predictions_b, dtype=float)
    truth = np.asarray(truth, dtype=float)
    if predictions_a.shape != truth.shape or predictions_b.shape != truth.shape:
        raise ValueError("all inputs must share one shape")
    if len(truth) < 2:
        raise ValueError("need at least 2 windows for a paired bootstrap")
    rng = rng if rng is not None else np.random.default_rng(0)

    axes = tuple(range(1, truth.ndim))
    se_a = ((predictions_a - truth) ** 2).mean(axis=axes)  # per-window MSE
    se_b = ((predictions_b - truth) ** 2).mean(axis=axes)
    n = len(se_a)
    rmse_a = float(np.sqrt(se_a.mean()))
    rmse_b = float(np.sqrt(se_b.mean()))
    observed = rmse_a - rmse_b

    indices = rng.integers(0, n, size=(num_resamples, n))
    boot_a = np.sqrt(se_a[indices].mean(axis=1))
    boot_b = np.sqrt(se_b[indices].mean(axis=1))
    deltas = boot_a - boot_b
    wins = float((deltas < 0).mean())
    # Two-sided p-value: how often the bootstrap delta crosses zero
    # relative to the observed sign.
    if observed == 0:
        p_value = 1.0
    else:
        crossed = (deltas >= 0).mean() if observed < 0 else (deltas <= 0).mean()
        p_value = float(min(1.0, 2.0 * crossed))
    return PairedComparison(
        rmse_a=rmse_a, rmse_b=rmse_b, delta=float(observed),
        p_value=p_value, wins=wins,
    )
