"""Training callbacks shared by every learned forecaster.

The :class:`Trainer` drives these; they carry no model-specific logic.
``EarlyStopping`` reproduces the monitoring rule STSM used inline before
the engine refactor: an epoch "improves" only when the monitored score
drops below the best score by more than ``min_delta`` (a NaN score never
improves, so models without a validation signal simply exhaust their
patience), and the best epoch's weights are snapshotted so they can be
restored when training stops.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

__all__ = ["EarlyStopping", "History"]


class History:
    """Per-epoch training curve collected by the :class:`Trainer`.

    Attributes
    ----------
    train_losses:
        One entry per completed epoch (mean batch loss, or whatever the
        program's ``run_epoch`` returns).
    val_scores:
        Monitored validation scores, aligned with ``train_losses``; NaN
        when the program produced no score that epoch.
    """

    def __init__(self) -> None:
        self.train_losses: list[float] = []
        self.val_scores: list[float] = []

    def record(self, train_loss: float, val_score: float | None = None) -> None:
        self.train_losses.append(float(train_loss))
        self.val_scores.append(float("nan") if val_score is None else float(val_score))

    @property
    def epochs(self) -> int:
        return len(self.train_losses)

    def best_val(self) -> float:
        """Smallest recorded validation score (NaN if none was finite)."""
        finite = [s for s in self.val_scores if np.isfinite(s)]
        return min(finite) if finite else float("nan")

    def __len__(self) -> int:
        return self.epochs

    def __repr__(self) -> str:
        return f"History(epochs={self.epochs}, best_val={self.best_val():.6g})"


class EarlyStopping:
    """Stop training when the monitored score stops improving.

    Parameters
    ----------
    patience:
        Number of consecutive non-improving epochs tolerated before
        :attr:`should_stop` turns True.
    min_delta:
        Required improvement margin: ``score < best - min_delta``.

    The callback snapshots the program's state dict on every improvement
    and can :meth:`restore` it afterwards, so the model ends at its best
    validation epoch rather than its last.
    """

    def __init__(self, patience: int, min_delta: float = 1e-9) -> None:
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        self.patience = patience
        self.min_delta = min_delta
        self.best_score = float("inf")
        self.best_state: Mapping[str, np.ndarray] | None = None
        self._patience_left = patience

    def update(self, score: float, snapshot: Callable[[], Mapping[str, np.ndarray]]) -> bool:
        """Record one epoch's score; returns True when it improved.

        ``snapshot`` is only invoked on improvement, so programs with
        expensive state dicts pay nothing on flat epochs.  A NaN score
        compares False against any best and therefore never improves.
        """
        if score < self.best_score - self.min_delta:
            self.best_score = float(score)
            self.best_state = snapshot()
            self._patience_left = self.patience
            return True
        self._patience_left -= 1
        return False

    @property
    def should_stop(self) -> bool:
        return self._patience_left <= 0

    def restore(self, load: Callable[[Mapping[str, np.ndarray]], None]) -> bool:
        """Load the best snapshot back; returns False if none was taken."""
        if self.best_state is None:
            return False
        load(self.best_state)
        return True
