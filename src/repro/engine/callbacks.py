"""Training callbacks shared by every learned forecaster.

The :class:`Trainer` drives these; they carry no model-specific logic.
``EarlyStopping`` reproduces the monitoring rule STSM used inline before
the engine refactor: an epoch "improves" only when the monitored score
drops below the best score by more than ``min_delta`` (a NaN score never
improves, so models without a validation signal simply exhaust their
patience), and the best epoch's weights are snapshotted so they can be
restored when training stops.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Callable, Mapping

import numpy as np

__all__ = ["EarlyStopping", "History"]


class History:
    """Per-epoch training curve collected by the :class:`Trainer`.

    Attributes
    ----------
    train_losses:
        One entry per completed epoch (mean batch loss, or whatever the
        program's ``run_epoch`` returns).
    val_scores:
        Monitored validation scores, aligned with ``train_losses``; NaN
        when the program produced no score that epoch.
    """

    def __init__(self) -> None:
        self.train_losses: list[float] = []
        self.val_scores: list[float] = []

    def record(self, train_loss: float, val_score: float | None = None) -> None:
        self.train_losses.append(float(train_loss))
        self.val_scores.append(float("nan") if val_score is None else float(val_score))

    @property
    def epochs(self) -> int:
        return len(self.train_losses)

    def best_val(self) -> float:
        """Smallest recorded validation score (NaN if none was finite)."""
        finite = [s for s in self.val_scores if np.isfinite(s)]
        return min(finite) if finite else float("nan")

    def __len__(self) -> int:
        return self.epochs

    def __repr__(self) -> str:
        return f"History(epochs={self.epochs}, best_val={self.best_val():.6g})"


class EarlyStopping:
    """Stop training when the monitored score stops improving.

    Parameters
    ----------
    patience:
        Number of consecutive non-improving epochs tolerated before
        :attr:`should_stop` turns True.
    min_delta:
        Required improvement margin: ``score < best - min_delta``.
    checkpoint_dir:
        Optional directory; when set, every improvement also persists the
        best state dict to ``<dir>/best.npz`` (plus a ``best.json``
        metadata sidecar) so long fits survive restarts and later runs
        can warm-start via :meth:`load_checkpoint` /
        :meth:`~repro.engine.Trainer.restore`.

    The callback snapshots the program's state dict on every improvement
    and can :meth:`restore` it afterwards, so the model ends at its best
    validation epoch rather than its last.
    """

    #: File names used inside ``checkpoint_dir``.
    CHECKPOINT_FILE = "best.npz"
    METADATA_FILE = "best.json"

    def __init__(
        self,
        patience: int,
        min_delta: float = 1e-9,
        checkpoint_dir: str | Path | None = None,
    ) -> None:
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        self.patience = patience
        self.min_delta = min_delta
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir is not None else None
        self.best_score = float("inf")
        self.best_epoch: int | None = None
        self.best_state: Mapping[str, np.ndarray] | None = None
        self._patience_left = patience
        self._epochs_seen = 0

    def update(self, score: float, snapshot: Callable[[], Mapping[str, np.ndarray]]) -> bool:
        """Record one epoch's score; returns True when it improved.

        ``snapshot`` is only invoked on improvement, so programs with
        expensive state dicts pay nothing on flat epochs.  A NaN score
        compares False against any best and therefore never improves.
        """
        epoch = self._epochs_seen
        self._epochs_seen += 1
        if score < self.best_score - self.min_delta:
            self.best_score = float(score)
            self.best_epoch = epoch
            self.best_state = snapshot()
            self._patience_left = self.patience
            if self.checkpoint_dir is not None:
                self._persist()
            return True
        self._patience_left -= 1
        return False

    def _persist(self) -> None:
        """Write the best state dict and its metadata to ``checkpoint_dir``.

        Both files are written to temporaries and atomically renamed so a
        fit killed mid-save (the restart scenario checkpoints exist for)
        never leaves a truncated ``best.npz`` behind — the previous
        complete checkpoint survives instead.
        """
        directory = self.checkpoint_dir
        directory.mkdir(parents=True, exist_ok=True)
        state = {name: np.asarray(values) for name, values in self.best_state.items()}
        checkpoint_tmp = directory / (self.CHECKPOINT_FILE + ".tmp")
        with open(checkpoint_tmp, "wb") as handle:
            np.savez(handle, **state)
        os.replace(checkpoint_tmp, directory / self.CHECKPOINT_FILE)
        metadata = {"best_score": self.best_score, "best_epoch": self.best_epoch}
        metadata_tmp = directory / (self.METADATA_FILE + ".tmp")
        metadata_tmp.write_text(json.dumps(metadata))
        os.replace(metadata_tmp, directory / self.METADATA_FILE)

    @classmethod
    def load_checkpoint(
        cls, checkpoint_dir: str | Path
    ) -> tuple[dict[str, np.ndarray], dict]:
        """Load ``(state_dict, metadata)`` persisted by a prior fit.

        Raises ``FileNotFoundError`` when the directory holds no
        checkpoint.
        """
        directory = Path(checkpoint_dir)
        path = directory / cls.CHECKPOINT_FILE
        if not path.exists():
            raise FileNotFoundError(f"no checkpoint at {path}")
        with np.load(path) as archive:
            state = {name: archive[name] for name in archive.files}
        meta_path = directory / cls.METADATA_FILE
        metadata = json.loads(meta_path.read_text()) if meta_path.exists() else {}
        return state, metadata

    @property
    def should_stop(self) -> bool:
        return self._patience_left <= 0

    def restore(self, load: Callable[[Mapping[str, np.ndarray]], None]) -> bool:
        """Load the best snapshot back; returns False if none was taken."""
        if self.best_state is None:
            return False
        load(self.best_state)
        return True
