"""Shared training engine driving every learned forecaster.

Before this engine existed, STSM and the four learned baselines each
hand-rolled an epoch/batch loop with subtly different validation and
checkpointing behaviour.  The :class:`Trainer` consolidates that
machinery — seeded epoch iteration, per-batch gradient steps with
clipping, LR-scheduler hooks, loss history, early stopping with
best-weight restore — behind one loop, while each model contributes only
the parts that are genuinely model-specific through a
:class:`TrainingProgram`.

Determinism contract: the Trainer threads a single ``numpy`` Generator
through the program hooks in a fixed order (``on_epoch_start`` →
``batches`` → ``train_batch``), so a program that consumed randomness in
that order before the refactor produces bit-identical draws after it.

Hook surface (override what the model needs, inherit the rest):

``on_epoch_start(epoch, rng)``
    Per-epoch state rebuild — STSM redraws its mask and rebuilds the
    temporal adjacency here.
``batches(epoch, rng)``
    Yields opaque batch objects.  Iteration-style models (IGNNK,
    INCREASE, GE-GAN) yield exactly one freshly drawn batch per epoch.
``train_batch(batch, rng)``
    One gradient step; the default implements the standard
    zero-grad → loss → backward → clip → step sequence with the
    program's single ``optimiser``.  GE-GAN overrides it with its
    two-optimiser adversarial step.
``run_epoch(epoch, rng)``
    The default averages ``train_batch`` losses over ``batches``; purely
    non-gradient models (ALS matrix completion) replace the whole epoch
    body instead.
``validation_score(epoch)``
    Monitored score for early stopping; ``None`` disables monitoring.
"""

from __future__ import annotations

import time
import warnings
import zipfile
from typing import Iterable, Iterator, Mapping

import numpy as np

from ..nn.module import Module
from ..obs.metrics import global_registry
from ..obs.profiling import obs_enabled
from ..obs.trace import (
    TraceContext,
    get_recorder,
    mint_span_id,
    mint_trace_id,
    record_span,
)
from ..optim import Optimizer, clip_grad_norm
from .callbacks import EarlyStopping, History

__all__ = ["TrainingProgram", "Trainer"]


class TrainingProgram:
    """Model-specific hooks consumed by the :class:`Trainer`.

    Subclasses set :attr:`network` (checkpointed by early stopping and
    toggled into train mode each epoch), :attr:`optimiser` and
    :attr:`grad_clip` (used by the default ``train_batch``), or override
    the corresponding hooks outright.
    """

    #: Main module, used for train-mode toggling and state snapshots.
    network: Module | None = None
    #: Optimiser driving the default ``train_batch``.
    optimiser: Optimizer | None = None
    #: Global gradient-norm ceiling (None disables clipping).
    grad_clip: float | None = None

    # -- per-epoch hooks ------------------------------------------------
    def on_epoch_start(self, epoch: int, rng: np.random.Generator | None) -> None:
        """Rebuild per-epoch state (masks, adjacencies, ...)."""

    def batches(self, epoch: int, rng: np.random.Generator | None) -> Iterator:
        """Yield the epoch's batches (draw randomness from ``rng``)."""
        raise NotImplementedError(
            f"{type(self).__name__} must implement batches() or override run_epoch()"
        )

    def compute_loss(self, batch, rng: np.random.Generator | None):
        """Forward pass returning the scalar loss Tensor for ``batch``."""
        raise NotImplementedError(
            f"{type(self).__name__} must implement compute_loss() or override train_batch()"
        )

    def train_batch(self, batch, rng: np.random.Generator | None) -> float:
        """One optimisation step; returns the batch loss as a float."""
        if self.optimiser is None:
            raise RuntimeError(
                f"{type(self).__name__} has no optimiser; set one or override train_batch()"
            )
        self.optimiser.zero_grad()
        loss = self.compute_loss(batch, rng)
        loss.backward()
        if self.grad_clip is not None:
            clip_grad_norm(self.optimiser.parameters, self.grad_clip)
        self.optimiser.step()
        return loss.item()

    def run_epoch(self, epoch: int, rng: np.random.Generator | None) -> float:
        """Run all batches of one epoch; returns the mean batch loss."""
        total = 0.0
        count = 0
        for batch in self.batches(epoch, rng):
            total += self.train_batch(batch, rng)
            count += 1
        return total / max(count, 1)

    def validation_score(self, epoch: int) -> float | None:
        """Score monitored by early stopping (lower is better)."""
        return None

    # -- mode & checkpointing -------------------------------------------
    def set_train_mode(self, mode: bool) -> None:
        if self.network is not None:
            self.network.train(mode)

    def state_dict(self) -> Mapping[str, np.ndarray]:
        if self.network is None:
            raise RuntimeError(f"{type(self).__name__} has no network to snapshot")
        return self.network.state_dict()

    def load_state_dict(self, state: Mapping[str, np.ndarray]) -> None:
        if self.network is None:
            raise RuntimeError(f"{type(self).__name__} has no network to restore")
        self.network.load_state_dict(state)


class Trainer:
    """Seeded epoch loop shared by all learned forecasters.

    Parameters
    ----------
    program:
        The model's :class:`TrainingProgram`.
    max_epochs:
        Upper bound on epochs (iteration-style models pass their
        iteration budget and yield one batch per epoch).
    rng:
        Generator threaded through every program hook; ``None`` for
        programs that consume no randomness (e.g. ALS sweeps).
    early_stopping:
        Optional :class:`EarlyStopping`; consulted only on epochs whose
        ``validation_score`` is not ``None``, and its best snapshot is
        restored once training ends.
    schedulers:
        LR schedulers whose ``step()`` advances once per completed epoch
        (after the epoch's gradient steps, before the next epoch).
    store:
        Optional shared :class:`~repro.engine.store.ArtifactStore` the
        program's caches draw from; the trainer persists its dirty
        entries to the disk tier once the loop finishes, so artifacts
        computed during this fit survive into later processes (a no-op
        for memory-only stores).
    """

    def __init__(
        self,
        program: TrainingProgram,
        *,
        max_epochs: int,
        rng: np.random.Generator | None = None,
        early_stopping: EarlyStopping | None = None,
        schedulers: Iterable | None = None,
        store=None,
    ) -> None:
        if max_epochs < 0:
            raise ValueError(f"max_epochs must be >= 0, got {max_epochs}")
        self.program = program
        self.max_epochs = max_epochs
        self.rng = rng
        self.early_stopping = early_stopping
        self.schedulers = list(schedulers) if schedulers is not None else []
        self.store = store
        self.history = History()
        #: Per-epoch/per-phase timing profile of the most recent
        #: :meth:`fit` (``REPRO_OBS=1`` only; ``None`` otherwise).
        self.profile: dict | None = None

    def fit(self) -> History:
        """Run the training loop; returns the recorded :class:`History`.

        With observability on (``REPRO_OBS=1``) the loop additionally
        times every epoch's phases (``epoch_start`` / ``run_epoch`` /
        ``validate``), publishes per-epoch durations to the global
        ``repro_train_epoch_seconds`` histogram, records ``train.*``
        spans under a fresh trace, and leaves the collected numbers on
        :attr:`profile`.  Profiling reads clocks only — the hook order
        and every RNG draw are identical with it on or off.
        """
        if not obs_enabled():
            self.profile = None
            return self._fit_loop(None, None)
        profile = {"epochs": [], "phase_seconds": {
            "epoch_start": 0.0, "run_epoch": 0.0, "validate": 0.0,
        }}
        # The root span's id is pre-minted so per-epoch spans recorded
        # during the loop can already parent under it; the root itself
        # is recorded once its duration is known.
        root = TraceContext(mint_trace_id(), mint_span_id())
        fit_began = time.monotonic()
        try:
            return self._fit_loop(profile, root)
        finally:
            fit_ended = time.monotonic()
            get_recorder().record({
                "trace": root.trace_id,
                "span": root.span_id,
                "parent": None,
                "name": "train.fit",
                "start": fit_began,
                "dur": fit_ended - fit_began,
                "wall": time.time(),
                "attrs": {
                    "program": type(self.program).__name__,
                    "epochs": len(profile["epochs"]),
                },
            })
            profile["total_seconds"] = fit_ended - fit_began
            profile["trace_id"] = root.trace_id
            self.profile = profile

    def _fit_loop(
        self, profile: dict | None, root: TraceContext | None
    ) -> History:
        program = self.program
        epoch_hist = (
            global_registry().histogram(
                "repro_train_epoch_seconds",
                "Wall-clock seconds per training epoch (REPRO_OBS=1)",
            ).labels()
            if profile is not None
            else None
        )
        for epoch in range(self.max_epochs):
            if profile is None:
                program.on_epoch_start(epoch, self.rng)
                program.set_train_mode(True)
                train_loss = program.run_epoch(epoch, self.rng)
                score = program.validation_score(epoch)
            else:
                t0 = time.monotonic()
                program.on_epoch_start(epoch, self.rng)
                program.set_train_mode(True)
                t1 = time.monotonic()
                train_loss = program.run_epoch(epoch, self.rng)
                t2 = time.monotonic()
                score = program.validation_score(epoch)
                t3 = time.monotonic()
                timings = {
                    "epoch": epoch,
                    "epoch_start": t1 - t0,
                    "run_epoch": t2 - t1,
                    "validate": t3 - t2,
                    "total": t3 - t0,
                }
                profile["epochs"].append(timings)
                for phase in ("epoch_start", "run_epoch", "validate"):
                    profile["phase_seconds"][phase] += timings[phase]
                epoch_hist.observe(timings["total"])
                epoch_ctx = record_span(
                    "train.epoch", root, t0, t3, epoch=epoch
                )
                record_span("train.epoch_start", epoch_ctx, t0, t1)
                record_span("train.run_epoch", epoch_ctx, t1, t2)
                record_span("train.validate", epoch_ctx, t2, t3)
            self.history.record(train_loss, score)
            for scheduler in self.schedulers:
                scheduler.step()
            if self.early_stopping is not None and score is not None:
                self.early_stopping.update(score, program.state_dict)
                if self.early_stopping.should_stop:
                    break
        if self.early_stopping is not None:
            self.early_stopping.restore(program.load_state_dict)
        if self.store is not None:
            self.store.persist()
        return self.history

    def restore(self, checkpoint_dir=None) -> bool:
        """Reload best-epoch weights into the program.

        An explicitly passed ``checkpoint_dir`` always loads from disk
        (warm-starting from another run's checkpoint).  Without one, the
        in-memory snapshot held by this trainer's :class:`EarlyStopping`
        is preferred, falling back to the early stopper's own
        ``checkpoint_dir`` — the restart-recovery path.  Returns True
        when weights were loaded.
        """
        if checkpoint_dir is None:
            if self.early_stopping is not None and self.early_stopping.best_state is not None:
                return self.early_stopping.restore(self.program.load_state_dict)
            if self.early_stopping is not None:
                checkpoint_dir = self.early_stopping.checkpoint_dir
        if checkpoint_dir is None:
            return False
        try:
            state, _metadata = EarlyStopping.load_checkpoint(checkpoint_dir)
        except FileNotFoundError:
            return False
        except (ValueError, OSError, zipfile.BadZipFile) as error:
            # A corrupt archive (e.g. from a pre-atomic-write version or a
            # damaged disk) should degrade to "nothing to restore", not
            # crash the restart-recovery path.
            warnings.warn(f"ignoring unreadable checkpoint in {checkpoint_dir}: {error}")
            return False
        self.program.load_state_dict(state)
        return True
