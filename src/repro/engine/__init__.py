"""Shared training engine: one epoch loop for every learned forecaster.

STSM and the learned baselines (IGNNK, GE-GAN, INCREASE, matrix
completion) all fit through :class:`Trainer` by expressing their
model-specific pieces as a :class:`TrainingProgram`; early stopping,
best-weight restore, loss history, LR scheduling and gradient clipping
live here exactly once.  :mod:`repro.engine.cache` adds the
content-addressed memoisation (mask-keyed adjacency/pseudo-observation
reuse, per-pair DTW) that makes repeated epochs and repeated fits cheap,
and :mod:`repro.engine.store` lifts it to a process-wide two-tier
:class:`ArtifactStore` so sweeps and fresh processes reuse artifacts
across fits (opt in via ``$REPRO_CACHE_DIR`` or
``STSMConfig.cache_store``).
"""

from .cache import LRUCache, PairwiseDTWCache, array_key
from .callbacks import EarlyStopping, History
from .store import (
    CACHE_DIR_ENV,
    CACHE_MAX_BYTES_ENV,
    CACHE_MEMORY_ITEMS_ENV,
    ArtifactStore,
    StoreConfig,
    StoreView,
    active_store,
    add_cache_arguments,
    configure_store,
    default_store_scope,
    get_store,
    open_store,
    parse_byte_size,
    reset_store,
    resolve_store,
    store_active,
    store_config_from_args,
    store_metric_samples,
)
from .trainer import Trainer, TrainingProgram

__all__ = [
    "ArtifactStore",
    "CACHE_DIR_ENV",
    "CACHE_MAX_BYTES_ENV",
    "CACHE_MEMORY_ITEMS_ENV",
    "EarlyStopping",
    "History",
    "LRUCache",
    "PairwiseDTWCache",
    "StoreConfig",
    "StoreView",
    "Trainer",
    "TrainingProgram",
    "active_store",
    "add_cache_arguments",
    "array_key",
    "configure_store",
    "default_store_scope",
    "get_store",
    "open_store",
    "parse_byte_size",
    "reset_store",
    "resolve_store",
    "store_active",
    "store_config_from_args",
    "store_metric_samples",
]
