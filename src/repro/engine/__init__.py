"""Shared training engine: one epoch loop for every learned forecaster.

STSM and the learned baselines (IGNNK, GE-GAN, INCREASE, matrix
completion) all fit through :class:`Trainer` by expressing their
model-specific pieces as a :class:`TrainingProgram`; early stopping,
best-weight restore, loss history, LR scheduling and gradient clipping
live here exactly once.  :mod:`repro.engine.cache` adds the
content-addressed memoisation (mask-keyed adjacency/pseudo-observation
reuse, per-pair DTW) that makes repeated epochs and repeated fits cheap.
"""

from .cache import LRUCache, PairwiseDTWCache, array_key
from .callbacks import EarlyStopping, History
from .trainer import Trainer, TrainingProgram

__all__ = [
    "EarlyStopping",
    "History",
    "LRUCache",
    "PairwiseDTWCache",
    "Trainer",
    "TrainingProgram",
    "array_key",
]
