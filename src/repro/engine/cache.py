"""Memoisation primitives for expensive fit/predict-time artifacts.

Two costs dominate repeated STSM training epochs: IDW pseudo-observation
fills and the quadratic DTW adjacency rebuild (§3.4.1 recomputes
``A_dtw^train`` every epoch because the mask changes).  Both are pure
functions of the drawn mask once the scaled observations are fixed, and
across epochs most *pairs* of series do not change at all — only the
masked columns do.  This module provides content-addressed caches that
exploit exactly that:

* :class:`LRUCache` — bounded generic memo store (also backs the serving
  layer's per-window forecast cache);
* :func:`array_key` — stable content hash of numpy arrays / scalars,
  used to key cache entries by mask identity;
* :class:`PairwiseDTWCache` — a drop-in for
  :func:`repro.temporal.dtw.dtw_distance_matrix` that memoises *per
  series pair*, so an epoch whose mask leaves a pair of daily profiles
  untouched never re-runs that pair's dynamic program.

Everything cached here is bit-exact: cache hits return the same floats
the uncached computation would have produced, so fixed-seed training
metrics are unchanged by enabling the caches.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Callable, Hashable

import numpy as np

from ..temporal.dtw import DEFAULT_CHUNK_PAIRS, _dtw_batch_chunked

__all__ = ["LRUCache", "PairwiseDTWCache", "array_key"]

_MISSING = object()


def array_key(*parts) -> bytes:
    """Stable content key for a mix of numpy arrays and plain scalars.

    Arrays are hashed over dtype, shape and raw bytes so two arrays with
    equal contents (and layout-normalised via ``ascontiguousarray``)
    collide intentionally; non-array parts contribute their ``repr``.
    """
    digest = hashlib.blake2b(digest_size=16)
    for part in parts:
        if isinstance(part, np.ndarray):
            arr = np.ascontiguousarray(part)
            digest.update(str(arr.dtype).encode())
            digest.update(str(arr.shape).encode())
            digest.update(arr.tobytes())
        else:
            digest.update(repr(part).encode())
        digest.update(b"|")
    return digest.digest()


class LRUCache:
    """Bounded least-recently-used memo store with hit/miss counters.

    Thread-safe: every operation takes an internal lock, so the serving
    scheduler's worker thread and direct callers can share one cache
    (get/put/``get_or_compute`` are individually atomic).  The lock is
    uncontended in single-threaded use, so the overhead per operation is
    a fraction of a microsecond — negligible next to the DTW dynamic
    programs and model ``predict`` calls being memoised.
    """

    def __init__(self, maxsize: int = 128) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._store: OrderedDict[Hashable, object] = OrderedDict()
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._store

    def get(self, key: Hashable, default=None):
        with self._lock:
            if key in self._store:
                self._store.move_to_end(key)
                self.hits += 1
                return self._store[key]
            self.misses += 1
            return default

    def put(self, key: Hashable, value) -> None:
        with self._lock:
            self._store[key] = value
            self._store.move_to_end(key)
            while len(self._store) > self.maxsize:
                self._store.popitem(last=False)

    def get_or_compute(self, key: Hashable, compute: Callable[[], object]):
        """Return the cached value for ``key``, computing it on a miss.

        ``compute`` runs outside the lock (it may be arbitrarily slow);
        two threads racing on the same missing key may both compute, but
        the store stays consistent — the first writer wins and the loser
        adopts the stored value, so every caller sees the same object.
        For the bit-exact caches in this repository both computations
        produce identical floats, so which one wins is unobservable.
        """
        value = self.get(key, _MISSING)
        if value is _MISSING:
            value = compute()
            with self._lock:  # RLock: put() re-enters safely
                if key in self._store:
                    self._store.move_to_end(key)
                    return self._store[key]
                self.put(key, value)
        return value

    def clear(self) -> None:
        with self._lock:
            self._store.clear()
            self.hits = 0
            self.misses = 0

    def items(self) -> list[tuple[Hashable, object]]:
        """Snapshot of the stored (key, value) pairs, LRU order."""
        with self._lock:
            return list(self._store.items())

    @property
    def stats(self) -> dict:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses, "size": len(self._store)}


class PairwiseDTWCache:
    """Per-pair memoising replacement for ``dtw_distance_matrix``.

    STSM rebuilds its temporal adjacency every epoch from daily profiles
    in which only the freshly masked columns changed; the DTW distance of
    every untouched (observed, observed) pair is identical to the
    previous epoch's.  :meth:`distance_matrix` hashes each profile row,
    looks up every pair by its (unordered — DTW under absolute-difference
    cost is symmetric) content key, and runs the batched dynamic program
    only for the pairs never seen before.  Results are bitwise identical
    to the uncached function because the same ``_dtw_batch`` kernel
    evaluates each missing pair, independently per row.

    ``store`` swaps the private per-fit LRU for a view over a shared
    :class:`~repro.engine.store.ArtifactStore` (namespace ``dtw_pair``):
    pair keys hash profile content, so they are valid across fits and
    across processes, and sweeps over seeds or hyper-parameters reuse
    every unchanged pair.
    """

    def __init__(self, maxsize: int = 65536, store=None) -> None:
        if store is not None:
            self._cache = store.view("dtw_pair")
        else:
            self._cache = LRUCache(maxsize)

    @property
    def stats(self) -> dict:
        return self._cache.stats

    def clear(self) -> None:
        self._cache.clear()

    def distance_matrix(
        self,
        series: np.ndarray,
        others: np.ndarray | None = None,
        band: int | None = None,
    ) -> np.ndarray:
        """Memoised drop-in for :func:`repro.temporal.dtw.dtw_distance_matrix`."""
        series = np.atleast_2d(np.asarray(series, dtype=float))
        if others is None:
            n = len(series)
            if n < 2:
                return np.zeros((n, n))
            pair_i, pair_j = np.triu_indices(n, k=1)
            left, right = series, series
        else:
            others = np.atleast_2d(np.asarray(others, dtype=float))
            n, m = len(series), len(others)
            grid_i, grid_j = np.meshgrid(np.arange(n), np.arange(m), indexing="ij")
            pair_i, pair_j = grid_i.ravel(), grid_j.ravel()
            left, right = series, others

        left_keys = [array_key(row, band) for row in left]
        right_keys = left_keys if others is None else [array_key(row, band) for row in right]

        flat = np.empty(len(pair_i))
        missing: list[int] = []
        for pos, (i, j) in enumerate(zip(pair_i, pair_j)):
            key = self._pair_key(left_keys[int(i)], right_keys[int(j)])
            value = self._cache.get(key, _MISSING)
            if value is _MISSING:
                missing.append(pos)
            else:
                flat[pos] = value
        if missing:
            rows = np.asarray(missing)
            # Chunked like the uncached function: a cold cache misses
            # every one of the N(N-1)/2 pairs at once, which is exactly
            # the all-pairs memory spike the chunking bounds.
            computed = _dtw_batch_chunked(
                left, right, pair_i[rows], pair_j[rows], band, DEFAULT_CHUNK_PAIRS
            )
            flat[rows] = computed
            for pos, value in zip(missing, computed):
                key = self._pair_key(
                    left_keys[int(pair_i[pos])], right_keys[int(pair_j[pos])]
                )
                self._cache.put(key, float(value))

        if others is None:
            out = np.zeros((n, n))
            out[pair_i, pair_j] = flat
            out[pair_j, pair_i] = flat
            return out
        return flat.reshape(n, len(others))

    @staticmethod
    def _pair_key(key_a: bytes, key_b: bytes) -> bytes:
        # Unordered pair: DTW(a, b) == DTW(b, a) for the symmetric
        # absolute-difference cost, so both orders share one entry.
        return key_a + key_b if key_a <= key_b else key_b + key_a
