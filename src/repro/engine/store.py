"""Process-wide content-addressed artifact store with an optional disk tier.

PR 1's :class:`~repro.engine.cache.PairwiseDTWCache` amortises the
quadratic DTW rebuild *within* one fit; every sweep over seeds or
hyper-parameters still re-pays identical per-pair work across fits, and
every fresh process starts cold.  The :class:`ArtifactStore` closes both
gaps: one thread-safe store shared by every fit in the process, keyed by
:func:`~repro.engine.cache.array_key` content hashes and namespaced by
artifact kind —

* ``dtw_pair`` — per-pair DTW distances (floats);
* ``mask_fill`` — mask-keyed normalised ``A_dtw^train`` adjacencies;
* ``forecast_window`` — served per-window forecast blocks.

Two tiers: a bounded-memory LRU per namespace, plus an optional disk
tier (sharded ``.npz`` segments and a JSON manifest under a cache
directory, typically ``$REPRO_CACHE_DIR``) so artifacts survive across
processes.  Disk writes are atomic (temp file + ``os.replace``) and
loads are corruption-tolerant: an unreadable segment or manifest
degrades to a cache miss, never a crash.

Bit-exactness contract: the store never transforms values.  A hit —
memory or disk — returns exactly the floats the uncached computation
would have produced (ndarray round-trips through ``.npz`` preserve raw
bits, NaN payloads included), so enabling the store cannot change any
fixed-seed metric.

Invalidation is free by construction: keys hash the *content* of every
input that determines the artifact, so changed data or hyper-parameters
simply miss.  Stale entries are only ever evicted (memory LRU) or left
unreferenced on disk; a cache directory can always be deleted wholesale.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
import time
import warnings
import zipfile
from collections import OrderedDict
from pathlib import Path

import numpy as np

from ..obs.trace import current_trace, record_span
from .cache import LRUCache, array_key

__all__ = [
    "ArtifactStore",
    "StoreView",
    "CACHE_DIR_ENV",
    "configure_store",
    "default_store_scope",
    "get_store",
    "reset_store",
    "resolve_store",
    "store_active",
]

#: Environment variable that opt-ins the process-wide store with a disk
#: tier rooted at its value (the ``--cache-dir`` CLI flags set the same
#: directory explicitly).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

MANIFEST_NAME = "store-manifest.json"
_FORMAT_VERSION = 1
_MISSING = object()
_SCALAR_KEYS = "__scalar_keys__"
_SCALAR_VALUES = "__scalar_values__"
_NAMESPACE_KEY = "__namespace__"
_ARRAY_PREFIX = "a:"

#: Default per-namespace memory-tier capacities.  ``dtw_pair`` entries
#: are single floats so the tier can afford to be deep; adjacency and
#: forecast blocks are full arrays and stay shallower.
DEFAULT_MAXSIZE = {"dtw_pair": 1 << 17, "mask_fill": 1024, "forecast_window": 4096}
_FALLBACK_MAXSIZE = 4096


def _payload_bytes(value) -> int:
    """Disk-tier payload size of one stored value (floats are 8 bytes)."""
    return int(value.nbytes) if isinstance(value, np.ndarray) else 8


class ArtifactStore:
    """Thread-safe two-tier content-addressed store.

    Parameters
    ----------
    maxsize:
        Memory-tier capacity: an int applied to every namespace, or a
        ``{namespace: capacity}`` dict (missing namespaces fall back to
        :data:`DEFAULT_MAXSIZE` / 4096).
    disk_dir:
        Optional disk-tier directory.  Created on first ``persist()``;
        an existing directory's manifest and segments are indexed
        immediately so earlier processes' artifacts are visible.
    max_loaded_segments:
        How many disk segments to keep decoded in memory (a segment is
        loaded whole on its first hit — entries written together are
        usually requested together).
    read_only:
        Serve from the disk tier without ever writing back: ``put``
        still populates the memory tier, but nothing is queued for
        ``persist()`` (which becomes a no-op).  The mode for long-lived
        serving workers over a bundle's exported cache — without it,
        every freshly computed block would accumulate in the dirty
        buffer forever, since nothing in the serving path persists.

    Keys are ``bytes`` (16-byte :func:`array_key` digests); values are
    ``float`` or ``np.ndarray``.  Anything else is a ``TypeError`` at
    ``put`` time so the disk tier can always round-trip what memory
    holds.
    """

    def __init__(
        self,
        maxsize: int | dict | None = None,
        disk_dir: str | Path | None = None,
        *,
        max_loaded_segments: int = 8,
        read_only: bool = False,
    ) -> None:
        if isinstance(maxsize, int):
            self._maxsize: dict = {}
            self._fallback_maxsize = maxsize
        else:
            self._maxsize = dict(DEFAULT_MAXSIZE)
            if maxsize:
                self._maxsize.update(maxsize)
            self._fallback_maxsize = _FALLBACK_MAXSIZE
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        self.max_loaded_segments = max_loaded_segments
        self.read_only = read_only
        self._lock = threading.RLock()
        self._tiers: dict[str, LRUCache] = {}
        # Disk index: (namespace, hex key) -> segment filename.
        self._disk_index: dict[tuple[str, str], str] = {}
        # Decoded segments, LRU-bounded: filename -> {(ns, hex): value}.
        self._loaded: OrderedDict[str, dict] = OrderedDict()
        # Entries written since the last persist(): (ns, key) -> value.
        self._dirty: dict[tuple[str, bytes], object] = {}
        # Lifecycle metadata stamped at put() time for dirty entries and
        # recovered from the manifest for disk entries:
        # (ns, hex key) -> {"created_at": float, "bytes": int}.  Absent
        # for entries persisted by pre-metadata writers (old manifests
        # stay readable; their entries just carry no accounting).
        self._entry_meta: dict[tuple[str, str], dict] = {}
        self._segment_counter = 0
        # Telemetry, per namespace.
        self._hits: dict[str, int] = {}
        self._disk_hits: dict[str, int] = {}
        self._misses: dict[str, int] = {}
        self.corrupt_segments = 0
        if self.disk_dir is not None and self.disk_dir.exists():
            with self._lock:
                self._load_disk_index()

    # ------------------------------------------------------------------
    # Core get/put
    # ------------------------------------------------------------------
    def _tier(self, namespace: str) -> LRUCache:
        tier = self._tiers.get(namespace)
        if tier is None:
            capacity = self._maxsize.get(namespace, self._fallback_maxsize)
            tier = self._tiers[namespace] = LRUCache(maxsize=capacity)
            self._hits.setdefault(namespace, 0)
            self._disk_hits.setdefault(namespace, 0)
            self._misses.setdefault(namespace, 0)
        return tier

    def get(self, namespace: str, key: bytes, default=None):
        """Memory-first lookup; falls back to the disk tier, then ``default``."""
        with self._lock:
            tier = self._tier(namespace)
            value = tier.get(key, _MISSING)
            if value is not _MISSING:
                self._hits[namespace] += 1
                return value
            value = self._disk_get(namespace, key)
            if value is not _MISSING:
                self._disk_hits[namespace] += 1
                tier.put(key, value)  # promote
                return value
            self._misses[namespace] += 1
            return default

    def put(self, namespace: str, key: bytes, value) -> None:
        """Store ``value``; queued for the disk tier until :meth:`persist`."""
        if not isinstance(key, bytes):
            raise TypeError(f"store keys must be bytes (array_key digests), got {type(key).__name__}")
        if isinstance(value, (bool, int)) or not isinstance(value, (float, np.ndarray)):
            raise TypeError(
                f"store values must be float or ndarray, got {type(value).__name__}"
            )
        with self._lock:
            self._tier(namespace).put(key, value)
            if self.disk_dir is not None and not self.read_only:
                self._dirty[(namespace, key)] = value
                # Stamp lifecycle metadata at put() time — persist()
                # writes it into the manifest so later processes can do
                # age/size accounting (GC, quotas) without decoding
                # segments.  First write wins: a re-put of an existing
                # content key is the same artifact, not a new one.
                self._entry_meta.setdefault(
                    (namespace, key.hex()),
                    {"created_at": time.time(), "bytes": _payload_bytes(value)},
                )

    def get_or_compute(self, namespace: str, key: bytes, compute):
        """Atomic-enough get-or-put: ``compute`` runs outside the lock.

        Two threads racing on one missing key may both compute; the
        first writer wins and the loser adopts the stored value — for
        the bit-exact artifacts kept here, which one wins is
        unobservable.
        """
        value = self.get(namespace, key, _MISSING)
        if value is _MISSING:
            value = compute()
            with self._lock:
                stored = self._tier(namespace).get(key, _MISSING)
                if stored is not _MISSING:
                    return stored
                self.put(namespace, key, value)
        return value

    def contains(self, namespace: str, key: bytes) -> bool:
        """Membership across both tiers (no promotion, no counters)."""
        with self._lock:
            if key in self._tier(namespace):
                return True
            return (namespace, key.hex()) in self._disk_index

    # ------------------------------------------------------------------
    # Disk tier
    # ------------------------------------------------------------------
    def _disk_get(self, namespace: str, key: bytes):
        entry = (namespace, key.hex())
        segment = self._disk_index.get(entry)
        if segment is None:
            return _MISSING
        decoded = self._loaded.get(segment)
        if decoded is None:
            decoded = self._load_segment(segment)
            if decoded is None:  # corrupt: index already scrubbed
                return _MISSING
            self._loaded[segment] = decoded
            while len(self._loaded) > self.max_loaded_segments:
                self._loaded.popitem(last=False)
        else:
            self._loaded.move_to_end(segment)
        return decoded.get(entry, _MISSING)

    def _load_segment(self, filename: str):
        """Decode one segment; corruption scrubs it from the index."""
        path = self.disk_dir / filename
        try:
            with np.load(path, allow_pickle=False) as archive:
                namespace = None
                if _NAMESPACE_KEY in archive.files:
                    namespace = bytes(archive[_NAMESPACE_KEY]).decode("utf-8")
                decoded: dict[tuple[str, str], object] = {}
                if _SCALAR_KEYS in archive.files:
                    for hexkey, value in zip(
                        archive[_SCALAR_KEYS], archive[_SCALAR_VALUES]
                    ):
                        decoded[(namespace, str(hexkey))] = float(value)
                for member in archive.files:
                    if member.startswith(_ARRAY_PREFIX):
                        decoded[(namespace, member[len(_ARRAY_PREFIX):])] = archive[member]
                return decoded
        except (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile) as error:
            warnings.warn(f"dropping unreadable cache segment {path}: {error}")
            self.corrupt_segments += 1
            self._disk_index = {
                entry: seg for entry, seg in self._disk_index.items() if seg != filename
            }
            return None

    def _load_disk_index(self) -> None:
        """Index the manifest (or scan segments when it is unusable)."""
        manifest_path = self.disk_dir / MANIFEST_NAME
        segments: dict[str, list[str]] | None = None
        if manifest_path.exists():
            try:
                manifest = json.loads(manifest_path.read_text())
                if manifest.get("format_version") == _FORMAT_VERSION:
                    segments = {}
                    for name, spec in manifest.get("segments", {}).items():
                        namespace = spec["namespace"]
                        segments[name] = [(namespace, hexkey) for hexkey in spec["keys"]]
                        # Optional per-entry lifecycle metadata (absent
                        # from manifests written before it existed).
                        for hexkey, meta in (spec.get("entries") or {}).items():
                            if isinstance(meta, dict):
                                self._entry_meta.setdefault((namespace, hexkey), meta)
            except (OSError, ValueError, KeyError, TypeError) as error:
                warnings.warn(f"unreadable cache manifest {manifest_path}: {error}")
        if segments is None:
            segments = {}
        # Index every on-disk segment the manifest does not list — it
        # carries its own namespace and keys, so the manifest is an
        # optimisation, not the source of truth.  This covers a missing
        # or corrupt manifest entirely, and heals the race where two
        # processes persist concurrently and the slower writer's
        # read-merge-replace loses the faster one's manifest entries
        # (the segment files themselves are never clobbered).
        for path in sorted(self.disk_dir.glob("seg-*.npz")):
            if path.name in segments:
                continue
            decoded = self._load_segment(path.name)
            if decoded is not None:
                segments[path.name] = list(decoded.keys())
                # A rescued segment carries no manifest metadata; its
                # file mtime is the best available creation stamp.
                try:
                    rescued_at = path.stat().st_mtime
                except OSError:
                    rescued_at = time.time()
                for entry, value in decoded.items():
                    self._entry_meta.setdefault(
                        entry,
                        {"created_at": rescued_at, "bytes": _payload_bytes(value)},
                    )
                self._loaded[path.name] = decoded
                while len(self._loaded) > self.max_loaded_segments:
                    self._loaded.popitem(last=False)
        for filename, entries in segments.items():
            if not (self.disk_dir / filename).exists():
                continue
            for namespace, hexkey in entries:
                self._disk_index[(namespace, hexkey)] = filename

    def refresh_disk_index(self) -> int:
        """Re-index the disk tier to pick up concurrent writers' segments.

        The disk index is built once when the store is created; a store
        that lives while *other processes* persist into the same
        directory (the parallel sweep executor's workers all share one
        ``$REPRO_CACHE_DIR``) will not see their segments until this is
        called.  Cheap when the concurrent-writer manifest merge kept
        the manifest complete (one JSON read); unlisted segments are
        decoded and rescued exactly as at construction time.  Returns
        the number of newly indexed entries.
        """
        with self._lock:
            if self.disk_dir is None or not self.disk_dir.exists():
                return 0
            before = len(self._disk_index)
            self._load_disk_index()
            return len(self._disk_index) - before

    def persist(self) -> int:
        """Flush queued entries to new disk segments; returns entry count.

        Atomic per file: segments and the manifest are staged next to
        their final name and ``os.replace``d, so a crashed writer leaves
        at worst a ``.tmp`` straggler, never a half-written archive.
        Concurrent writers from other processes are tolerated: the
        manifest is re-read and their segment entries carried over, and
        even when two overlapping persists race the read-merge-replace
        (last replace wins), nothing is lost — segment files are never
        clobbered, and ``_load_disk_index`` re-indexes any on-disk
        segment the manifest fails to mention.  No-op without a disk
        tier, in ``read_only`` mode, or with nothing dirty.
        """
        with self._lock:
            if self.disk_dir is None or not self._dirty:
                return 0
            self.disk_dir.mkdir(parents=True, exist_ok=True)
            by_namespace: dict[str, dict[bytes, object]] = {}
            for (namespace, key), value in self._dirty.items():
                by_namespace.setdefault(namespace, {})[key] = value
            written = 0
            new_segments: dict[str, dict] = {}
            for namespace, entries in sorted(by_namespace.items()):
                filename = self._next_segment_name(namespace)
                scalar_keys, scalar_values, payload = [], [], {}
                for key, value in entries.items():
                    if isinstance(value, float):
                        scalar_keys.append(key.hex())
                        scalar_values.append(value)
                    else:
                        payload[_ARRAY_PREFIX + key.hex()] = value
                payload[_NAMESPACE_KEY] = np.frombuffer(
                    namespace.encode("utf-8"), dtype=np.uint8
                )
                if scalar_keys:
                    payload[_SCALAR_KEYS] = np.asarray(scalar_keys)
                    payload[_SCALAR_VALUES] = np.asarray(scalar_values, dtype=np.float64)
                staging = self.disk_dir / (filename + ".tmp")
                with open(staging, "wb") as handle:
                    np.savez(handle, **payload)
                os.replace(staging, self.disk_dir / filename)
                hexkeys = [key.hex() for key in entries]
                new_segments[filename] = {
                    "namespace": namespace,
                    "keys": hexkeys,
                    # Per-entry lifecycle metadata (created_at + payload
                    # bytes), stamped at put() time.  Readers that
                    # predate it ignore the extra field, so the format
                    # version stays 1.
                    "entries": {
                        hexkey: self._entry_meta[(namespace, hexkey)]
                        for hexkey in hexkeys
                        if (namespace, hexkey) in self._entry_meta
                    },
                }
                for hexkey in hexkeys:
                    self._disk_index[(namespace, hexkey)] = filename
                written += len(entries)
            self._write_manifest(new_segments)
            self._dirty.clear()
            return written

    def _next_segment_name(self, namespace: str) -> str:
        slug = "".join(c if c.isalnum() or c in "-_" else "_" for c in namespace)
        while True:
            self._segment_counter += 1
            name = f"seg-{os.getpid()}-{self._segment_counter:06d}-{slug}.npz"
            if not (self.disk_dir / name).exists():
                return name

    def _write_manifest(self, new_segments: dict[str, dict]) -> None:
        manifest_path = self.disk_dir / MANIFEST_NAME
        segments: dict[str, dict] = {}
        if manifest_path.exists():  # merge concurrent writers' entries
            try:
                existing = json.loads(manifest_path.read_text())
                if existing.get("format_version") == _FORMAT_VERSION:
                    segments = {
                        name: spec
                        for name, spec in existing.get("segments", {}).items()
                        if (self.disk_dir / name).exists()
                    }
            except (OSError, ValueError, KeyError, TypeError):
                pass  # rebuilt below from what we know
        # Re-record every indexed entry whose segment the on-disk
        # manifest no longer (fully) lists — per segment, merging keys,
        # so a rescued multi-key segment is written back whole.
        known = {name: set(spec["keys"]) for name, spec in segments.items()}
        for (namespace, hexkey), filename in self._disk_index.items():
            if filename in new_segments:
                continue
            spec = segments.setdefault(filename, {"namespace": namespace, "keys": []})
            keys = known.setdefault(filename, set())
            if hexkey not in keys:
                keys.add(hexkey)
                spec["keys"].append(hexkey)
                meta = self._entry_meta.get((namespace, hexkey))
                if meta is not None:
                    spec.setdefault("entries", {})[hexkey] = meta
        segments.update(new_segments)
        manifest = {"format_version": _FORMAT_VERSION, "segments": segments}
        staging = manifest_path.with_suffix(".json.tmp")
        staging.write_text(json.dumps(manifest) + "\n")
        os.replace(staging, manifest_path)

    def export(self, directory: str | Path) -> int:
        """Write the store's *entire* contents as a fresh disk tier.

        Used to embed warmed cache contents in serving bundles: the
        target directory gets its own segments + manifest, readable by
        ``ArtifactStore(disk_dir=...)`` in any later process.  Returns
        the number of entries exported.
        """
        target = ArtifactStore(disk_dir=directory)
        with self._lock:
            for namespace, tier in self._tiers.items():
                for key, value in tier.items():
                    target.put(namespace, key, value)
            for (namespace, hexkey), _segment in list(self._disk_index.items()):
                key = bytes.fromhex(hexkey)
                value = self._disk_get(namespace, key)
                if value is not _MISSING:
                    target.put(namespace, key, value)
        return target.persist()

    # ------------------------------------------------------------------
    # Maintenance and introspection
    # ------------------------------------------------------------------
    def clear_memory(self) -> None:
        """Drop the memory tier and decoded segments (disk index stays).

        After this, every lookup pays the disk path again — the
        cold-start-from-disk scenario the benchmark measures.
        """
        with self._lock:
            for tier in self._tiers.values():
                tier.clear()
            self._loaded.clear()

    @property
    def stats(self) -> dict:
        """Per-namespace and total hit/miss/size/byte counters.

        ``memory_bytes`` is exact (computed from the live memory tier);
        ``disk_bytes`` sums the manifest's per-entry metadata and
        therefore under-counts directories written by pre-metadata
        versions (their entries carry no size records).
        """
        with self._lock:
            namespaces = {}
            disk_items: dict[str, int] = {}
            disk_bytes: dict[str, int] = {}
            for namespace, hexkey in self._disk_index:
                disk_items[namespace] = disk_items.get(namespace, 0) + 1
                meta = self._entry_meta.get((namespace, hexkey))
                if meta is not None:
                    disk_bytes[namespace] = (
                        disk_bytes.get(namespace, 0) + int(meta.get("bytes") or 0)
                    )
            for namespace in sorted(set(self._tiers) | set(disk_items)):
                tier = self._tiers.get(namespace)
                memory_bytes = (
                    sum(_payload_bytes(value) for _key, value in tier.items())
                    if tier is not None
                    else 0
                )
                namespaces[namespace] = {
                    "hits": self._hits.get(namespace, 0),
                    "disk_hits": self._disk_hits.get(namespace, 0),
                    "misses": self._misses.get(namespace, 0),
                    "memory_items": len(tier) if tier is not None else 0,
                    "disk_items": disk_items.get(namespace, 0),
                    "memory_bytes": memory_bytes,
                    "disk_bytes": disk_bytes.get(namespace, 0),
                }
            totals = {
                field: sum(ns[field] for ns in namespaces.values())
                for field in (
                    "hits", "disk_hits", "misses", "memory_items", "disk_items",
                    "memory_bytes", "disk_bytes",
                )
            }
            totals["dirty"] = len(self._dirty)
            totals["corrupt_segments"] = self.corrupt_segments
            return {"namespaces": namespaces, "totals": totals}

    def view(self, namespace: str, scope: bytes | str = b"") -> "StoreView":
        """A cache-shaped handle over one namespace (see :class:`StoreView`)."""
        return StoreView(self, namespace, scope)


class StoreView:
    """LRUCache-shaped adapter over one store namespace.

    Drop-in for the places that previously owned a private
    :class:`~repro.engine.cache.LRUCache` — the per-pair DTW cache, the
    mask-adjacency cache, the serving result cache — so they can draw
    from the shared store without changing their call sites.

    ``scope`` is mixed into every key: two views with different scopes
    (e.g. two served models caching ``forecast_window`` blocks by the
    same integer start) can never collide.  ``bytes`` keys with an empty
    scope pass through untouched, so globally content-addressed keys
    (DTW pair digests) stay shareable across *all* fits.

    ``clear()`` resets only this view's counters — a view is a window
    onto shared state and must not wipe other fits' artifacts.
    """

    def __init__(self, store: ArtifactStore, namespace: str, scope: bytes | str = b"") -> None:
        self._store = store
        self.namespace = namespace
        self._scope = scope if isinstance(scope, bytes) else scope.encode("utf-8")
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        # Distinct keys this view has stored or retrieved (for __len__,
        # e.g. warm-up counting); keys are 16-byte digests, so even a
        # long-lived view's set stays small.
        self._keys: set[bytes] = set()

    def _map(self, key) -> bytes:
        if isinstance(key, bytes) and not self._scope:
            return key
        return array_key(self._scope, key)

    def __contains__(self, key) -> bool:
        return self._store.contains(self.namespace, self._map(key))

    def __len__(self) -> int:
        with self._lock:
            return len(self._keys)

    def get(self, key, default=None):
        # Ambient-trace instrumentation: a traced request (the scheduler
        # scopes its context via use_trace) gets a store.get span with
        # the hit/miss outcome; untraced callers pay one thread-local
        # read.  Timing reads only — the returned value is untouched.
        ctx = current_trace()
        began = time.monotonic() if ctx is not None else 0.0
        mapped = self._map(key)
        value = self._store.get(self.namespace, mapped, _MISSING)
        if ctx is not None:
            record_span(
                "store.get", ctx, began, time.monotonic(),
                namespace=self.namespace, hit=value is not _MISSING,
            )
        with self._lock:
            if value is _MISSING:
                self.misses += 1
                return default
            self.hits += 1
            self._keys.add(mapped)
        return value

    def put(self, key, value) -> None:
        ctx = current_trace()
        began = time.monotonic() if ctx is not None else 0.0
        mapped = self._map(key)
        self._store.put(self.namespace, mapped, value)
        if ctx is not None:
            record_span(
                "store.put", ctx, began, time.monotonic(),
                namespace=self.namespace,
            )
        with self._lock:
            self._keys.add(mapped)

    def get_or_compute(self, key, compute):
        mapped = self._map(key)
        computed = []

        def instrumented():
            computed.append(True)
            return compute()

        # One store lookup total: the view's hit/miss is derived from
        # whether the compute hook actually ran, so the store-level
        # counters record exactly one probe per call.
        value = self._store.get_or_compute(self.namespace, mapped, instrumented)
        with self._lock:
            if computed:
                self.misses += 1
            else:
                self.hits += 1
            self._keys.add(mapped)
        return value

    def clear(self) -> None:
        with self._lock:
            self.hits = 0
            self.misses = 0

    @property
    def stats(self) -> dict:
        store_stats = self._store.stats["namespaces"].get(self.namespace, {})
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "size": len(self._keys),
                "namespace": self.namespace,
                "store": store_stats,
            }


# ----------------------------------------------------------------------
# Process-wide store
# ----------------------------------------------------------------------
_process_store: ArtifactStore | None = None
_process_lock = threading.Lock()


def configure_store(
    disk_dir: str | Path | None = None,
    maxsize: int | dict | None = None,
    store: ArtifactStore | None = None,
) -> ArtifactStore:
    """Install the process-wide store (replacing any existing one)."""
    global _process_store
    with _process_lock:
        _process_store = store if store is not None else ArtifactStore(
            maxsize=maxsize, disk_dir=disk_dir
        )
        return _process_store


def get_store() -> ArtifactStore:
    """The process-wide store, created on first use.

    A fresh store picks its disk tier up from ``$REPRO_CACHE_DIR`` (no
    disk tier when unset).  The directory is read once — reconfigure
    explicitly via :func:`configure_store` to move it.
    """
    global _process_store
    with _process_lock:
        if _process_store is None:
            _process_store = ArtifactStore(disk_dir=os.environ.get(CACHE_DIR_ENV) or None)
        return _process_store


def store_active() -> bool:
    """Whether cross-fit caching is opted into for this process."""
    return _process_store is not None or bool(os.environ.get(CACHE_DIR_ENV))


def resolve_store(flag: bool | None = None) -> ArtifactStore | None:
    """Map a three-state config flag to a store (or per-fit isolation).

    Falsy (but not ``None``) → ``None`` (private per-fit caches, the
    default behaviour); truthy → the process store, creating it if
    needed; ``None`` → the process store only when the process has
    opted in (``$REPRO_CACHE_DIR`` set or :func:`configure_store`
    called).  Truthiness rather than identity, so an accidental ``0``
    or ``1`` forces isolation or sharing as the caller plainly meant.
    """
    if flag is None:
        return get_store() if store_active() else None
    return get_store() if flag else None


def reset_store() -> None:
    """Drop the process-wide store (tests / benchmark isolation)."""
    global _process_store
    with _process_lock:
        _process_store = None


def default_store_scope(forecaster) -> bytes | None:
    """Content-addressed scope for one fitted forecaster's cached results.

    Hashes everything a served forecast block depends on: the network
    weights, configuration, scaler, dataset identity and split index
    sets.  A checkpoint restored bitwise in another process (PR 4
    bundles) therefore derives the *same* scope and can serve the warmed
    ``forecast_window`` entries.  Returns ``None`` when the forecaster
    has no snapshotable network (naive baselines), in which case callers
    should fall back to a private cache.
    """
    network = getattr(forecaster, "network", None)
    state_dict = getattr(network, "state_dict", None)
    if network is None or state_dict is None:
        return None
    parts: list = ["forecast-scope/v1", type(forecaster).__name__,
                   getattr(forecaster, "name", "")]
    config = getattr(forecaster, "config", None)
    if config is not None:
        if dataclasses.is_dataclass(config):
            # cache_store is guaranteed metric-neutral (it only selects
            # where artifacts are cached), so it must not partition the
            # scope: a model fit with the store forced on and the same
            # model fit under the env-var opt-in share their windows.
            fields = sorted(
                (f.name, repr(getattr(config, f.name)))
                for f in dataclasses.fields(config)
                if f.name != "cache_store"
            )
            parts.append(repr(fields))
        else:
            parts.append(repr(config))
    dataset = getattr(forecaster, "dataset", None)
    if dataset is not None:
        parts.append(getattr(dataset, "name", ""))
    split = getattr(forecaster, "split", None)
    if split is not None:
        parts.extend([split.observed, split.unobserved])
    scaler = getattr(forecaster, "scaler", None)
    if scaler is not None:
        parts.extend([np.asarray(scaler.mean_), np.asarray(scaler.std_)])
    state = state_dict()
    for key in sorted(state):
        parts.extend([key, state[key]])
    return array_key(*parts)
