"""Process-wide content-addressed artifact store with an optional disk tier.

PR 1's :class:`~repro.engine.cache.PairwiseDTWCache` amortises the
quadratic DTW rebuild *within* one fit; every sweep over seeds or
hyper-parameters still re-pays identical per-pair work across fits, and
every fresh process starts cold.  The :class:`ArtifactStore` closes both
gaps: one thread-safe store shared by every fit in the process, keyed by
:func:`~repro.engine.cache.array_key` content hashes and namespaced by
artifact kind —

* ``dtw_pair`` — per-pair DTW distances (floats);
* ``mask_fill`` — mask-keyed normalised ``A_dtw^train`` adjacencies;
* ``forecast_window`` — served per-window forecast blocks.

Two tiers: a bounded-memory LRU per namespace, plus an optional disk
tier (sharded ``.npz`` segments and a JSON manifest under a cache
directory, typically ``$REPRO_CACHE_DIR``) so artifacts survive across
processes.  Disk writes are atomic (temp file + ``os.replace``) and
loads are corruption-tolerant: an unreadable segment or manifest
degrades to a cache miss, never a crash.

Bit-exactness contract: the store never transforms values.  A hit —
memory or disk — returns exactly the floats the uncached computation
would have produced (ndarray round-trips through ``.npz`` preserve raw
bits, NaN payloads included), so enabling the store cannot change any
fixed-seed metric.

Invalidation is free by construction: keys hash the *content* of every
input that determines the artifact, so changed data or hyper-parameters
simply miss.  Stale entries are only ever evicted (memory LRU) or left
unreferenced on disk; a cache directory can always be deleted wholesale.

Lifecycle (PR 10): the disk tier is no longer append-only.  A byte
quota (``max_bytes`` / ``--cache-max-bytes`` / ``$REPRO_CACHE_MAX_BYTES``)
is enforced at :meth:`ArtifactStore.persist` time and on demand via
:meth:`ArtifactStore.gc`, which first compacts sparse segments (live
payload ratio below ``compact_ratio`` → rewritten dense) and then
evicts whole least-recently-used segments until the tier fits.  The
bit-exact contract survives: a surviving hit is byte-identical, an
evicted entry is a miss that recomputes — never a wrong answer.

Process wiring is a single pair — :func:`open_store` installs a store
built from a :class:`StoreConfig` (environment-backed), and
:func:`active_store` resolves the three-state per-fit opt-in flag.  The
former four-function surface (``configure_store`` / ``get_store`` /
``resolve_store`` / ``store_active``) survives as deprecated shims.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
import time
import warnings
import zipfile
from collections import OrderedDict
from pathlib import Path

import numpy as np

from ..obs.trace import current_trace, record_span
from .cache import LRUCache, array_key

__all__ = [
    "ArtifactStore",
    "StoreConfig",
    "StoreView",
    "CACHE_DIR_ENV",
    "CACHE_MAX_BYTES_ENV",
    "CACHE_MEMORY_ITEMS_ENV",
    "active_store",
    "add_cache_arguments",
    "configure_store",
    "default_store_scope",
    "get_store",
    "open_store",
    "parse_byte_size",
    "reset_store",
    "resolve_store",
    "store_active",
    "store_config_from_args",
    "store_metric_samples",
]

#: Environment variable that opt-ins the process-wide store with a disk
#: tier rooted at its value (the ``--cache-dir`` CLI flags set the same
#: directory explicitly).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: Disk-tier byte quota (``--cache-max-bytes``): persist()/gc() evict
#: whole LRU segments until the tier fits.  Accepts K/M/G/T suffixes.
CACHE_MAX_BYTES_ENV = "REPRO_CACHE_MAX_BYTES"
#: Memory-tier per-namespace entry capacity (``--cache-memory-items``).
CACHE_MEMORY_ITEMS_ENV = "REPRO_CACHE_MEMORY_ITEMS"

MANIFEST_NAME = "store-manifest.json"
_FORMAT_VERSION = 1
_MISSING = object()
_SCALAR_KEYS = "__scalar_keys__"
_SCALAR_VALUES = "__scalar_values__"
_NAMESPACE_KEY = "__namespace__"
_ARRAY_PREFIX = "a:"

#: Default per-namespace memory-tier capacities.  ``dtw_pair`` entries
#: are single floats so the tier can afford to be deep; adjacency and
#: forecast blocks are full arrays and stay shallower.
DEFAULT_MAXSIZE = {"dtw_pair": 1 << 17, "mask_fill": 1024, "forecast_window": 4096}
_FALLBACK_MAXSIZE = 4096


def _payload_bytes(value) -> int:
    """Disk-tier payload size of one stored value (floats are 8 bytes)."""
    return int(value.nbytes) if isinstance(value, np.ndarray) else 8


_SIZE_SUFFIXES = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30, "t": 1 << 40}


def parse_byte_size(text: str | int | None) -> int | None:
    """``"512M"`` → ``536870912``: byte sizes with binary K/M/G/T suffixes.

    Accepts plain ints (returned as-is), ``None`` (passed through so
    unset env vars stay unset), decimal magnitudes (``"1.5G"``) and an
    optional trailing ``B`` (``"512MB"``).  The parser for every quota
    surface — ``--cache-max-bytes`` and ``$REPRO_CACHE_MAX_BYTES``.
    """
    if text is None or isinstance(text, int):
        return text
    cleaned = str(text).strip().lower()
    if cleaned.endswith("b") and len(cleaned) > 1:
        cleaned = cleaned[:-1]
    factor = 1
    if cleaned and cleaned[-1] in _SIZE_SUFFIXES:
        factor = _SIZE_SUFFIXES[cleaned[-1]]
        cleaned = cleaned[:-1]
    try:
        value = int(float(cleaned) * factor) if cleaned else None
    except ValueError:
        value = None
    if value is None or value < 0:
        raise ValueError(f"unparseable byte size {text!r} (want e.g. 1048576, 512M, 1.5G)")
    return value


class ArtifactStore:
    """Thread-safe two-tier content-addressed store.

    Parameters
    ----------
    maxsize:
        Memory-tier capacity: an int applied to every namespace, or a
        ``{namespace: capacity}`` dict (missing namespaces fall back to
        :data:`DEFAULT_MAXSIZE` / 4096).
    disk_dir:
        Optional disk-tier directory.  Created on first ``persist()``;
        an existing directory's manifest and segments are indexed
        immediately so earlier processes' artifacts are visible.
    max_loaded_segments:
        How many disk segments to keep decoded in memory (a segment is
        loaded whole on its first hit — entries written together are
        usually requested together).
    read_only:
        Serve from the disk tier without ever writing back: ``put``
        still populates the memory tier, but nothing is queued for
        ``persist()`` (which becomes a no-op).  The mode for long-lived
        serving workers over a bundle's exported cache — without it,
        every freshly computed block would accumulate in the dirty
        buffer forever, since nothing in the serving path persists.
        Read-only stores refuse :meth:`gc` outright.
    max_bytes:
        Optional disk-tier byte quota.  When set, every ``persist()``
        ends with a :meth:`gc` pass that evicts whole least-recently-
        used segments until the indexed segment files fit the quota.
        Accepts ``parse_byte_size`` strings (``"512M"``).
    compact_ratio:
        Live-payload threshold below which :meth:`gc` rewrites a sparse
        segment dense (``0.5`` → segments less than half live get
        compacted).  ``0`` disables compaction.

    Keys are ``bytes`` (16-byte :func:`array_key` digests); values are
    ``float`` or ``np.ndarray``.  Anything else is a ``TypeError`` at
    ``put`` time so the disk tier can always round-trip what memory
    holds.
    """

    def __init__(
        self,
        maxsize: int | dict | None = None,
        disk_dir: str | Path | None = None,
        *,
        max_loaded_segments: int = 8,
        read_only: bool = False,
        max_bytes: int | str | None = None,
        compact_ratio: float = 0.5,
    ) -> None:
        if isinstance(maxsize, int):
            self._maxsize: dict = {}
            self._fallback_maxsize = maxsize
        else:
            self._maxsize = dict(DEFAULT_MAXSIZE)
            if maxsize:
                self._maxsize.update(maxsize)
            self._fallback_maxsize = _FALLBACK_MAXSIZE
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        self.max_loaded_segments = max_loaded_segments
        self.read_only = read_only
        self.max_bytes = parse_byte_size(max_bytes)
        self.compact_ratio = float(compact_ratio)
        self._lock = threading.RLock()
        self._tiers: dict[str, LRUCache] = {}
        # Disk index: (namespace, hex key) -> segment filename.
        self._disk_index: dict[tuple[str, str], str] = {}
        # Decoded segments, LRU-bounded: filename -> {(ns, hex): value}.
        self._loaded: OrderedDict[str, dict] = OrderedDict()
        # Entries written since the last persist(): (ns, key) -> value.
        self._dirty: dict[tuple[str, bytes], object] = {}
        # Lifecycle metadata stamped at put() time for dirty entries and
        # recovered from the manifest for disk entries:
        # (ns, hex key) -> {"created_at": float, "bytes": int}.  Absent
        # for entries persisted by pre-metadata writers (old manifests
        # stay readable; their entries just carry no accounting).
        self._entry_meta: dict[tuple[str, str], dict] = {}
        # Last-touched stamps per segment (GC eviction order): updated
        # on every disk hit and persisted into the manifest as the
        # segment's "last_used", so LRU order survives across processes.
        self._segment_touched: dict[str, float] = {}
        self._segment_counter = 0
        # Telemetry, per namespace.
        self._hits: dict[str, int] = {}
        self._disk_hits: dict[str, int] = {}
        self._misses: dict[str, int] = {}
        self.corrupt_segments = 0
        # Lifecycle telemetry (cumulative over this store's lifetime).
        self._lifecycle = {
            "gc_runs": 0,
            "evicted_segments": 0,
            "evicted_entries": 0,
            "evicted_bytes": 0,
            "compacted_segments": 0,
            "compacted_entries": 0,
            "reclaimed_bytes": 0,
        }
        if self.disk_dir is not None and self.disk_dir.exists():
            with self._lock:
                self._load_disk_index()

    # ------------------------------------------------------------------
    # Core get/put
    # ------------------------------------------------------------------
    def _tier(self, namespace: str) -> LRUCache:
        tier = self._tiers.get(namespace)
        if tier is None:
            capacity = self._maxsize.get(namespace, self._fallback_maxsize)
            tier = self._tiers[namespace] = LRUCache(maxsize=capacity)
            self._hits.setdefault(namespace, 0)
            self._disk_hits.setdefault(namespace, 0)
            self._misses.setdefault(namespace, 0)
        return tier

    def get(self, namespace: str, key: bytes, default=None):
        """Memory-first lookup; falls back to the disk tier, then ``default``."""
        with self._lock:
            tier = self._tier(namespace)
            value = tier.get(key, _MISSING)
            if value is not _MISSING:
                self._hits[namespace] += 1
                return value
            value = self._disk_get(namespace, key)
            if value is not _MISSING:
                self._disk_hits[namespace] += 1
                tier.put(key, value)  # promote
                return value
            self._misses[namespace] += 1
            return default

    def put(self, namespace: str, key: bytes, value) -> None:
        """Store ``value``; queued for the disk tier until :meth:`persist`."""
        if not isinstance(key, bytes):
            raise TypeError(f"store keys must be bytes (array_key digests), got {type(key).__name__}")
        if isinstance(value, (bool, int)) or not isinstance(value, (float, np.ndarray)):
            raise TypeError(
                f"store values must be float or ndarray, got {type(value).__name__}"
            )
        with self._lock:
            self._tier(namespace).put(key, value)
            if self.disk_dir is not None and not self.read_only:
                self._dirty[(namespace, key)] = value
                # Stamp lifecycle metadata at put() time — persist()
                # writes it into the manifest so later processes can do
                # age/size accounting (GC, quotas) without decoding
                # segments.  First write wins: a re-put of an existing
                # content key is the same artifact, not a new one.
                self._entry_meta.setdefault(
                    (namespace, key.hex()),
                    {"created_at": time.time(), "bytes": _payload_bytes(value)},
                )

    def get_or_compute(self, namespace: str, key: bytes, compute):
        """Atomic-enough get-or-put: ``compute`` runs outside the lock.

        Two threads racing on one missing key may both compute; the
        first writer wins and the loser adopts the stored value — for
        the bit-exact artifacts kept here, which one wins is
        unobservable.
        """
        value = self.get(namespace, key, _MISSING)
        if value is _MISSING:
            value = compute()
            with self._lock:
                stored = self._tier(namespace).get(key, _MISSING)
                if stored is not _MISSING:
                    return stored
                self.put(namespace, key, value)
        return value

    def contains(self, namespace: str, key: bytes) -> bool:
        """Membership across both tiers (no promotion, no counters)."""
        with self._lock:
            if key in self._tier(namespace):
                return True
            return (namespace, key.hex()) in self._disk_index

    # ------------------------------------------------------------------
    # Disk tier
    # ------------------------------------------------------------------
    def _disk_get(self, namespace: str, key: bytes):
        entry = (namespace, key.hex())
        segment = self._disk_index.get(entry)
        if segment is None:
            return _MISSING
        decoded = self._loaded.get(segment)
        if decoded is None:
            decoded = self._load_segment(segment)
            if decoded is None:  # corrupt or vanished: index already scrubbed
                return _MISSING
            self._loaded[segment] = decoded
            while len(self._loaded) > self.max_loaded_segments:
                self._loaded.popitem(last=False)
        else:
            self._loaded.move_to_end(segment)
        self._segment_touched[segment] = time.time()
        return decoded.get(entry, _MISSING)

    def _scrub_segment(self, filename: str) -> list[tuple[str, str]]:
        """Forget one segment everywhere it is tracked; returns its entries.

        Index, per-entry metadata, decoded-segment LRU and touch stamps
        all go together — dropping the index alone would leave
        ``stats()`` byte accounting counting entries that can no longer
        be served.
        """
        entries = [e for e, seg in self._disk_index.items() if seg == filename]
        for entry in entries:
            del self._disk_index[entry]
            self._entry_meta.pop(entry, None)
        self._loaded.pop(filename, None)
        self._segment_touched.pop(filename, None)
        return entries

    def _load_segment(self, filename: str):
        """Decode one segment; corruption or disappearance scrubs it."""
        path = self.disk_dir / filename
        try:
            with np.load(path, allow_pickle=False) as archive:
                namespace = None
                if _NAMESPACE_KEY in archive.files:
                    namespace = bytes(archive[_NAMESPACE_KEY]).decode("utf-8")
                decoded: dict[tuple[str, str], object] = {}
                if _SCALAR_KEYS in archive.files:
                    for hexkey, value in zip(
                        archive[_SCALAR_KEYS], archive[_SCALAR_VALUES]
                    ):
                        decoded[(namespace, str(hexkey))] = float(value)
                for member in archive.files:
                    if member.startswith(_ARRAY_PREFIX):
                        decoded[(namespace, member[len(_ARRAY_PREFIX):])] = archive[member]
                return decoded
        except FileNotFoundError:
            # Evicted by another process's gc() between our index build
            # and this read: a plain miss (the caller recomputes), not
            # corruption — no warning, no corrupt_segments bump.
            self._scrub_segment(filename)
            return None
        except (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile) as error:
            warnings.warn(f"dropping unreadable cache segment {path}: {error}")
            self.corrupt_segments += 1
            self._scrub_segment(filename)
            return None

    def _load_disk_index(self) -> None:
        """Index the manifest (or scan segments when it is unusable)."""
        manifest_path = self.disk_dir / MANIFEST_NAME
        segments: dict[str, list[str]] | None = None
        if manifest_path.exists():
            try:
                manifest = json.loads(manifest_path.read_text())
                if manifest.get("format_version") == _FORMAT_VERSION:
                    segments = {}
                    for name, spec in manifest.get("segments", {}).items():
                        namespace = spec["namespace"]
                        segments[name] = [(namespace, hexkey) for hexkey in spec["keys"]]
                        # Optional per-segment last-touch stamp (GC LRU
                        # order across processes); max-merged so a local
                        # fresher touch is never aged backwards.
                        touched = spec.get("last_used")
                        if isinstance(touched, (int, float)):
                            self._segment_touched[name] = max(
                                self._segment_touched.get(name, 0.0), float(touched)
                            )
                        # Optional per-entry lifecycle metadata (absent
                        # from manifests written before it existed).
                        for hexkey, meta in (spec.get("entries") or {}).items():
                            if isinstance(meta, dict):
                                self._entry_meta.setdefault((namespace, hexkey), meta)
            except (OSError, ValueError, KeyError, TypeError) as error:
                warnings.warn(f"unreadable cache manifest {manifest_path}: {error}")
        if segments is None:
            segments = {}
        # Index every on-disk segment the manifest does not list — it
        # carries its own namespace and keys, so the manifest is an
        # optimisation, not the source of truth.  This covers a missing
        # or corrupt manifest entirely, and heals the race where two
        # processes persist concurrently and the slower writer's
        # read-merge-replace loses the faster one's manifest entries
        # (the segment files themselves are never clobbered).
        for path in sorted(self.disk_dir.glob("seg-*.npz")):
            if path.name in segments:
                continue
            decoded = self._load_segment(path.name)
            if decoded is not None:
                segments[path.name] = list(decoded.keys())
                # A rescued segment carries no manifest metadata; its
                # file mtime is the best available creation stamp.
                try:
                    rescued_at = path.stat().st_mtime
                except OSError:
                    rescued_at = time.time()
                for entry, value in decoded.items():
                    self._entry_meta.setdefault(
                        entry,
                        {"created_at": rescued_at, "bytes": _payload_bytes(value)},
                    )
                self._loaded[path.name] = decoded
                while len(self._loaded) > self.max_loaded_segments:
                    self._loaded.popitem(last=False)
        for filename, entries in segments.items():
            if not (self.disk_dir / filename).exists():
                continue
            for namespace, hexkey in entries:
                self._disk_index[(namespace, hexkey)] = filename

    def refresh_disk_index(self) -> int:
        """Re-index the disk tier to pick up concurrent writers' segments.

        The disk index is built once when the store is created; a store
        that lives while *other processes* persist into the same
        directory (the parallel sweep executor's workers all share one
        ``$REPRO_CACHE_DIR``) will not see their segments until this is
        called.  Cheap when the concurrent-writer manifest merge kept
        the manifest complete (one JSON read); unlisted segments are
        decoded and rescued exactly as at construction time.  Segments
        another process's :meth:`gc` deleted are pruned first — their
        metadata leaves the byte accounting with them.  Returns the net
        change in indexed entries (negative when a concurrent GC
        removed more than new writers added).
        """
        with self._lock:
            if self.disk_dir is None or not self.disk_dir.exists():
                return 0
            before = len(self._disk_index)
            for filename in set(self._disk_index.values()):
                if not (self.disk_dir / filename).exists():
                    self._scrub_segment(filename)
            self._load_disk_index()
            return len(self._disk_index) - before

    def persist(self) -> int:
        """Flush queued entries to new disk segments; returns entry count.

        Atomic per file: segments and the manifest are staged next to
        their final name and ``os.replace``d, so a crashed writer leaves
        at worst a ``.tmp`` straggler, never a half-written archive.
        Concurrent writers from other processes are tolerated: the
        manifest is re-read and their segment entries carried over, and
        even when two overlapping persists race the read-merge-replace
        (last replace wins), nothing is lost — segment files are never
        clobbered, and ``_load_disk_index`` re-indexes any on-disk
        segment the manifest fails to mention.  No-op without a disk
        tier, in ``read_only`` mode, or with nothing dirty.

        When ``max_bytes`` is configured, persisting ends with a
        :meth:`gc` pass so the tier never outgrows its quota between
        explicit collections.
        """
        with self._lock:
            if self.disk_dir is None:
                return 0
            if not self._dirty:
                # Nothing to flush, but a quota-bearing store still owes
                # the tier an enforcement pass: an earlier unbounded
                # writer may have left it over budget.
                if self.max_bytes is not None and not self.read_only:
                    self.gc()
                return 0
            self.disk_dir.mkdir(parents=True, exist_ok=True)
            by_namespace: dict[str, dict[bytes, object]] = {}
            for (namespace, key), value in self._dirty.items():
                by_namespace.setdefault(namespace, {})[key] = value
            written = 0
            new_segments: dict[str, dict] = {}
            for namespace, entries in sorted(by_namespace.items()):
                filename, spec = self._write_segment_file(namespace, entries)
                new_segments[filename] = spec
                written += len(entries)
            self._write_manifest(new_segments)
            self._dirty.clear()
            if self.max_bytes is not None and not self.read_only:
                self.gc()
            return written

    def _write_segment_file(
        self, namespace: str, entries: dict[bytes, object]
    ) -> tuple[str, dict]:
        """Stage-and-replace one ``.npz`` segment; index its entries.

        Returns ``(filename, manifest_spec)``.  Shared by ``persist()``
        (dirty entries) and compaction (live entries rewritten dense);
        the spec carries each entry's put()-time metadata so created_at
        stamps survive rewrites.
        """
        filename = self._next_segment_name(namespace)
        scalar_keys, scalar_values, payload = [], [], {}
        for key, value in entries.items():
            if isinstance(value, float):
                scalar_keys.append(key.hex())
                scalar_values.append(value)
            else:
                payload[_ARRAY_PREFIX + key.hex()] = value
        payload[_NAMESPACE_KEY] = np.frombuffer(
            namespace.encode("utf-8"), dtype=np.uint8
        )
        if scalar_keys:
            payload[_SCALAR_KEYS] = np.asarray(scalar_keys)
            payload[_SCALAR_VALUES] = np.asarray(scalar_values, dtype=np.float64)
        staging = self.disk_dir / (filename + ".tmp")
        with open(staging, "wb") as handle:
            np.savez(handle, **payload)
        os.replace(staging, self.disk_dir / filename)
        hexkeys = [key.hex() for key in entries]
        now = time.time()
        spec = {
            "namespace": namespace,
            "keys": hexkeys,
            # Freshly written counts as freshly used for LRU purposes.
            "last_used": now,
            # Per-entry lifecycle metadata (created_at + payload
            # bytes), stamped at put() time.  Readers that
            # predate it ignore the extra field, so the format
            # version stays 1.
            "entries": {
                hexkey: self._entry_meta[(namespace, hexkey)]
                for hexkey in hexkeys
                if (namespace, hexkey) in self._entry_meta
            },
        }
        self._segment_touched[filename] = now
        for hexkey in hexkeys:
            self._disk_index[(namespace, hexkey)] = filename
        return filename, spec

    def _next_segment_name(self, namespace: str) -> str:
        slug = "".join(c if c.isalnum() or c in "-_" else "_" for c in namespace)
        while True:
            self._segment_counter += 1
            name = f"seg-{os.getpid()}-{self._segment_counter:06d}-{slug}.npz"
            if not (self.disk_dir / name).exists():
                return name

    def _write_manifest(
        self, new_segments: dict[str, dict], drop: set | frozenset = frozenset()
    ) -> None:
        manifest_path = self.disk_dir / MANIFEST_NAME
        segments: dict[str, dict] = {}
        if manifest_path.exists():  # merge concurrent writers' entries
            try:
                existing = json.loads(manifest_path.read_text())
                if existing.get("format_version") == _FORMAT_VERSION:
                    segments = {
                        name: spec
                        for name, spec in existing.get("segments", {}).items()
                        if name not in drop and (self.disk_dir / name).exists()
                    }
            except (OSError, ValueError, KeyError, TypeError):
                pass  # rebuilt below from what we know
        # Re-record every indexed entry whose segment the on-disk
        # manifest no longer (fully) lists — per segment, merging keys,
        # so a rescued multi-key segment is written back whole.  Only
        # segments whose file still exists: re-recording one a
        # concurrent gc() just deleted would resurrect a ghost that
        # every later reader pays a failed open() for.
        known = {name: set(spec["keys"]) for name, spec in segments.items()}
        alive: dict[str, bool] = {}
        for (namespace, hexkey), filename in self._disk_index.items():
            if filename in new_segments or filename in drop:
                continue
            if filename not in known:
                exists = alive.get(filename)
                if exists is None:
                    exists = alive[filename] = (self.disk_dir / filename).exists()
                if not exists:
                    continue
            spec = segments.setdefault(filename, {"namespace": namespace, "keys": []})
            keys = known.setdefault(filename, set())
            if hexkey not in keys:
                keys.add(hexkey)
                spec["keys"].append(hexkey)
                meta = self._entry_meta.get((namespace, hexkey))
                if meta is not None:
                    spec.setdefault("entries", {})[hexkey] = meta
        # Carry our freshest touch stamps into every surviving spec so
        # cross-process LRU order reflects actual use, not write time.
        for name, spec in segments.items():
            touched = self._segment_touched.get(name)
            if touched is not None and touched > float(spec.get("last_used") or 0.0):
                spec["last_used"] = touched
        segments.update(new_segments)
        manifest = {"format_version": _FORMAT_VERSION, "segments": segments}
        staging = manifest_path.with_suffix(".json.tmp")
        staging.write_text(json.dumps(manifest) + "\n")
        os.replace(staging, manifest_path)

    def export(self, directory: str | Path) -> int:
        """Write the store's *entire* contents as a fresh disk tier.

        Used to embed warmed cache contents in serving bundles: the
        target directory gets its own segments + manifest, readable by
        ``ArtifactStore(disk_dir=...)`` in any later process.  Returns
        the number of entries exported.
        """
        target = ArtifactStore(disk_dir=directory)
        with self._lock:
            for namespace, tier in self._tiers.items():
                for key, value in tier.items():
                    target.put(namespace, key, value)
            for (namespace, hexkey), _segment in list(self._disk_index.items()):
                key = bytes.fromhex(hexkey)
                value = self._disk_get(namespace, key)
                if value is not _MISSING:
                    target.put(namespace, key, value)
        return target.persist()

    # ------------------------------------------------------------------
    # Lifecycle: compaction + quota-bounded GC
    # ------------------------------------------------------------------
    def disk_usage(self) -> int:
        """Actual on-disk bytes of indexed segment files (the quota unit)."""
        with self._lock:
            return sum(self._segment_sizes().values())

    def _segment_sizes(self) -> dict[str, int]:
        """File sizes of every indexed segment (missing files count 0)."""
        sizes: dict[str, int] = {}
        if self.disk_dir is None:
            return sizes
        for filename in set(self._disk_index.values()):
            try:
                sizes[filename] = (self.disk_dir / filename).stat().st_size
            except OSError:
                sizes[filename] = 0
        return sizes

    def _entries_by_segment(self) -> dict[str, list[tuple[str, str]]]:
        grouped: dict[str, list[tuple[str, str]]] = {}
        for entry, filename in self._disk_index.items():
            grouped.setdefault(filename, []).append(entry)
        return grouped

    def _segment_rank(self, filename: str, entries: list[tuple[str, str]]) -> float:
        """Eviction order key: last-touched, else newest created_at, else mtime."""
        touched = self._segment_touched.get(filename)
        if touched is not None:
            return touched
        stamps = [
            float((self._entry_meta.get(entry) or {}).get("created_at") or 0.0)
            for entry in entries
        ]
        best = max(stamps, default=0.0)
        if best:
            return best
        try:
            return (self.disk_dir / filename).stat().st_mtime
        except OSError:
            return 0.0

    def gc(self, target_bytes: int | None = None) -> dict:
        """Bound the disk tier: compact sparse segments, then evict cold ones.

        ``target_bytes`` defaults to the configured quota
        (``max_bytes``); with neither set only compaction runs.
        Eviction removes whole segments, coldest first (last-touched
        stamps, falling back to manifest ``created_at``, then file
        mtime), until the indexed segment files fit the target.  Each
        removal is atomic — the file is unlinked and the manifest
        rewritten via tmp + ``os.replace`` — and concurrent-reader
        safe: a reader holding a stale index sees a plain miss and
        recomputes, never a partial or wrong value.  Only segments this
        store has indexed are touched, so a concurrent writer's
        fresh, not-yet-indexed segments are never collected.

        Raises ``RuntimeError`` on a read-only store: a serving worker
        over a bundle's cache must never mutate it.
        """
        if self.read_only:
            raise RuntimeError("read-only ArtifactStore refuses gc()")
        with self._lock:
            summary = {
                "compacted_segments": 0,
                "compacted_entries": 0,
                "reclaimed_bytes": 0,
                "evicted_segments": 0,
                "evicted_entries": 0,
                "evicted_bytes": 0,
                "disk_bytes_before": 0,
                "disk_bytes_after": 0,
                "target_bytes": target_bytes if target_bytes is not None else self.max_bytes,
            }
            if self.disk_dir is None or not self.disk_dir.exists():
                return summary
            before = sum(self._segment_sizes().values())
            summary["disk_bytes_before"] = before
            if self.compact_ratio > 0:
                compacted = self._compact_locked(self.compact_ratio)
                summary.update(compacted)
            target = summary["target_bytes"]
            if target is not None:
                summary.update(self._evict_locked(int(target)))
            summary["disk_bytes_after"] = sum(self._segment_sizes().values())
            self._lifecycle["gc_runs"] += 1
            return summary

    def _evict_locked(self, target: int) -> dict:
        """Unlink cold indexed segments until the tier fits ``target``."""
        grouped = self._entries_by_segment()
        sizes = self._segment_sizes()
        total = sum(sizes.values())
        evicted_segments = evicted_entries = evicted_bytes = 0
        dropped: set[str] = set()
        order = sorted(
            sizes, key=lambda name: (self._segment_rank(name, grouped[name]), name)
        )
        for filename in order:
            if total <= target:
                break
            entries = self._scrub_segment(filename)
            try:
                (self.disk_dir / filename).unlink()
            except OSError:
                pass  # already gone (concurrent gc) — scrub still counts
            total -= sizes[filename]
            evicted_segments += 1
            evicted_entries += len(entries)
            evicted_bytes += sizes[filename]
            dropped.add(filename)
        if dropped:
            self._write_manifest({}, drop=dropped)
            self._lifecycle["evicted_segments"] += evicted_segments
            self._lifecycle["evicted_entries"] += evicted_entries
            self._lifecycle["evicted_bytes"] += evicted_bytes
        return {
            "evicted_segments": evicted_segments,
            "evicted_entries": evicted_entries,
            "evicted_bytes": evicted_bytes,
        }

    def _compact_locked(self, min_live_ratio: float) -> dict:
        """Rewrite sparse segments dense (live entries only, bit-exact).

        A segment is sparse when the payload bytes of its *live* entries
        (the ones this store's index still maps to it) fall below
        ``min_live_ratio`` of the payload bytes the manifest records for
        it — duplicates superseded by other segments are the dead
        weight.  The ratio falls back to entry counts when metadata is
        missing.  New dense segments are written and indexed *before*
        the sparse sources are unlinked, so a crash mid-compaction
        leaves duplicates, never losses.  A segment any of whose
        recorded keys this store has never indexed is left alone — its
        liveness is unknowable (it may be a concurrent writer's fresh
        persist, newer than our index).  Conversely a segment whose
        *every* key is indexed in some other segment is safely
        removable even with zero live entries: content addressing
        guarantees the surviving copies are bit-identical.
        """
        result = {"compacted_segments": 0, "compacted_entries": 0, "reclaimed_bytes": 0}
        manifest_path = self.disk_dir / MANIFEST_NAME
        recorded: dict[str, dict] = {}
        try:
            manifest = json.loads(manifest_path.read_text())
            if manifest.get("format_version") == _FORMAT_VERSION:
                recorded = manifest.get("segments", {})
        except (OSError, ValueError, KeyError, TypeError):
            return result  # no manifest, no dead-entry knowledge
        grouped = self._entries_by_segment()
        sparse: list[str] = []
        for filename, spec in recorded.items():
            namespace = spec.get("namespace")
            keys = spec.get("keys") or []
            if not keys or any((namespace, hexkey) not in self._disk_index for hexkey in keys):
                continue  # unknown liveness — hands off
            live = grouped.get(filename, [])
            if len(live) >= len(keys):
                continue  # fully live — dense already
            total_b = live_b = 0.0
            have_meta = True
            for hexkey in keys:
                meta = self._entry_meta.get((namespace, hexkey))
                if meta is None:
                    have_meta = False
                    break
                total_b += float(meta.get("bytes") or 0.0)
            if have_meta and total_b > 0:
                for entry in live:
                    live_b += float((self._entry_meta.get(entry) or {}).get("bytes") or 0.0)
                ratio = live_b / total_b
            else:
                ratio = len(live) / len(keys)
            if ratio < min_live_ratio:
                sparse.append(filename)
        if not sparse:
            return result
        # Stat the sources directly: a fully-dead segment is not in the
        # index, so _segment_sizes() would not account for it.
        sizes: dict[str, int] = {}
        for filename in sparse:
            try:
                sizes[filename] = (self.disk_dir / filename).stat().st_size
            except OSError:
                sizes[filename] = 0
        moved: dict[str, dict[bytes, object]] = {}
        compacted: list[str] = []
        stamp = 0.0
        for filename in sparse:
            live = grouped.get(filename, [])
            if live:  # fully-dead segments need no decode — just removal
                decoded = self._loaded.get(filename)
                if decoded is None:
                    decoded = self._load_segment(filename)
                if decoded is None:
                    continue  # corrupt/vanished: already scrubbed
                for entry in live:
                    if entry not in decoded or self._disk_index.get(entry) != filename:
                        continue
                    namespace, hexkey = entry
                    moved.setdefault(namespace, {})[bytes.fromhex(hexkey)] = decoded[entry]
                stamp = max(stamp, self._segment_rank(filename, live))
            compacted.append(filename)
        if not compacted:
            return result
        new_segments: dict[str, dict] = {}
        for namespace, entries in sorted(moved.items()):
            filename, spec = self._write_segment_file(namespace, entries)
            # Compaction is maintenance, not use: the dense segment
            # inherits its sources' coldness instead of jumping to the
            # front of the LRU order.
            if stamp:
                spec["last_used"] = stamp
                self._segment_touched[filename] = stamp
            new_segments[filename] = spec
            result["compacted_entries"] += len(entries)
        reclaimed = 0
        for filename in compacted:
            self._loaded.pop(filename, None)
            self._segment_touched.pop(filename, None)
            try:
                (self.disk_dir / filename).unlink()
            except OSError:
                pass
            reclaimed += sizes.get(filename, 0)
        new_files = {
            name: (self.disk_dir / name).stat().st_size for name in new_segments
        }
        self._write_manifest(new_segments, drop=set(compacted))
        result["compacted_segments"] = len(compacted)
        result["reclaimed_bytes"] = max(0, reclaimed - sum(new_files.values()))
        self._lifecycle["compacted_segments"] += result["compacted_segments"]
        self._lifecycle["compacted_entries"] += result["compacted_entries"]
        self._lifecycle["reclaimed_bytes"] += result["reclaimed_bytes"]
        return result

    # ------------------------------------------------------------------
    # Maintenance and introspection
    # ------------------------------------------------------------------
    def clear_memory(self) -> None:
        """Drop the memory tier and decoded segments (disk index stays).

        After this, every lookup pays the disk path again — the
        cold-start-from-disk scenario the benchmark measures.
        """
        with self._lock:
            for tier in self._tiers.values():
                tier.clear()
            self._loaded.clear()

    @property
    def stats(self) -> dict:
        """Per-namespace and total hit/miss/size/byte counters.

        ``memory_bytes`` is exact (computed from the live memory tier);
        ``disk_bytes`` sums the manifest's per-entry metadata and
        therefore under-counts directories written by pre-metadata
        versions (their entries carry no size records).
        """
        with self._lock:
            namespaces = {}
            disk_items: dict[str, int] = {}
            disk_bytes: dict[str, int] = {}
            for namespace, hexkey in self._disk_index:
                disk_items[namespace] = disk_items.get(namespace, 0) + 1
                meta = self._entry_meta.get((namespace, hexkey))
                if meta is not None:
                    disk_bytes[namespace] = (
                        disk_bytes.get(namespace, 0) + int(meta.get("bytes") or 0)
                    )
            for namespace in sorted(set(self._tiers) | set(disk_items)):
                tier = self._tiers.get(namespace)
                memory_bytes = (
                    sum(_payload_bytes(value) for _key, value in tier.items())
                    if tier is not None
                    else 0
                )
                namespaces[namespace] = {
                    "hits": self._hits.get(namespace, 0),
                    "disk_hits": self._disk_hits.get(namespace, 0),
                    "misses": self._misses.get(namespace, 0),
                    "memory_items": len(tier) if tier is not None else 0,
                    "disk_items": disk_items.get(namespace, 0),
                    "memory_bytes": memory_bytes,
                    "disk_bytes": disk_bytes.get(namespace, 0),
                }
            totals = {
                field: sum(ns[field] for ns in namespaces.values())
                for field in (
                    "hits", "disk_hits", "misses", "memory_items", "disk_items",
                    "memory_bytes", "disk_bytes",
                )
            }
            totals["dirty"] = len(self._dirty)
            totals["corrupt_segments"] = self.corrupt_segments
            # Lifecycle stanza: cumulative GC/compaction counters plus
            # the live quota position (actual indexed file bytes, which
            # include npz container overhead the per-entry payload
            # accounting above does not).
            disk_file_bytes = sum(self._segment_sizes().values())
            lifecycle = dict(self._lifecycle)
            lifecycle["disk_file_bytes"] = disk_file_bytes
            lifecycle["quota_bytes"] = self.max_bytes
            lifecycle["quota_headroom_bytes"] = (
                self.max_bytes - disk_file_bytes if self.max_bytes is not None else None
            )
            lifecycle["read_only"] = self.read_only
            totals["lifecycle"] = lifecycle
            return {"namespaces": namespaces, "totals": totals}

    def view(self, namespace: str, scope: bytes | str = b"") -> "StoreView":
        """A cache-shaped handle over one namespace (see :class:`StoreView`)."""
        return StoreView(self, namespace, scope)


class StoreView:
    """LRUCache-shaped adapter over one store namespace.

    Drop-in for the places that previously owned a private
    :class:`~repro.engine.cache.LRUCache` — the per-pair DTW cache, the
    mask-adjacency cache, the serving result cache — so they can draw
    from the shared store without changing their call sites.

    ``scope`` is mixed into every key: two views with different scopes
    (e.g. two served models caching ``forecast_window`` blocks by the
    same integer start) can never collide.  ``bytes`` keys with an empty
    scope pass through untouched, so globally content-addressed keys
    (DTW pair digests) stay shareable across *all* fits.

    ``clear()`` resets only this view's counters — a view is a window
    onto shared state and must not wipe other fits' artifacts.
    """

    def __init__(self, store: ArtifactStore, namespace: str, scope: bytes | str = b"") -> None:
        self._store = store
        self.namespace = namespace
        self._scope = scope if isinstance(scope, bytes) else scope.encode("utf-8")
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        # Distinct keys this view has stored or retrieved (for __len__,
        # e.g. warm-up counting); keys are 16-byte digests, so even a
        # long-lived view's set stays small.
        self._keys: set[bytes] = set()

    def _map(self, key) -> bytes:
        if isinstance(key, bytes) and not self._scope:
            return key
        return array_key(self._scope, key)

    def __contains__(self, key) -> bool:
        return self._store.contains(self.namespace, self._map(key))

    def __len__(self) -> int:
        with self._lock:
            return len(self._keys)

    def get(self, key, default=None):
        # Ambient-trace instrumentation: a traced request (the scheduler
        # scopes its context via use_trace) gets a store.get span with
        # the hit/miss outcome; untraced callers pay one thread-local
        # read.  Timing reads only — the returned value is untouched.
        ctx = current_trace()
        began = time.monotonic() if ctx is not None else 0.0
        mapped = self._map(key)
        value = self._store.get(self.namespace, mapped, _MISSING)
        if ctx is not None:
            record_span(
                "store.get", ctx, began, time.monotonic(),
                namespace=self.namespace, hit=value is not _MISSING,
            )
        with self._lock:
            if value is _MISSING:
                self.misses += 1
                return default
            self.hits += 1
            self._keys.add(mapped)
        return value

    def put(self, key, value) -> None:
        ctx = current_trace()
        began = time.monotonic() if ctx is not None else 0.0
        mapped = self._map(key)
        self._store.put(self.namespace, mapped, value)
        if ctx is not None:
            record_span(
                "store.put", ctx, began, time.monotonic(),
                namespace=self.namespace,
            )
        with self._lock:
            self._keys.add(mapped)

    def get_or_compute(self, key, compute):
        mapped = self._map(key)
        computed = []

        def instrumented():
            computed.append(True)
            return compute()

        # One store lookup total: the view's hit/miss is derived from
        # whether the compute hook actually ran, so the store-level
        # counters record exactly one probe per call.
        value = self._store.get_or_compute(self.namespace, mapped, instrumented)
        with self._lock:
            if computed:
                self.misses += 1
            else:
                self.hits += 1
            self._keys.add(mapped)
        return value

    def clear(self) -> None:
        with self._lock:
            self.hits = 0
            self.misses = 0

    @property
    def stats(self) -> dict:
        store_stats = self._store.stats["namespaces"].get(self.namespace, {})
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "size": len(self._keys),
                "namespace": self.namespace,
                "store": store_stats,
            }


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------
_STORE_COLLECTOR_SOURCE = "artifact_store"


def store_metric_samples(store: ArtifactStore):
    """``repro_store_*`` metric samples for one store.

    The single producer behind every scrape surface: the process obs
    registry (registered by :func:`open_store`) and the serving
    runtime's stats collector both yield from here, so hit/byte
    counters and lifecycle telemetry stay name-identical everywhere.
    """
    stats = store.stats
    for namespace, ns_stats in stats.get("namespaces", {}).items():
        labels = {"namespace": namespace}
        yield ("repro_store_hits_total", labels, float(ns_stats.get("hits", 0)))
        yield ("repro_store_disk_hits_total", labels, float(ns_stats.get("disk_hits", 0)))
        yield ("repro_store_misses_total", labels, float(ns_stats.get("misses", 0)))
        yield ("repro_store_memory_bytes", labels, float(ns_stats.get("memory_bytes", 0)))
        yield ("repro_store_disk_bytes", labels, float(ns_stats.get("disk_bytes", 0)))
    lifecycle = stats.get("totals", {}).get("lifecycle", {})
    for field, name in (
        ("gc_runs", "repro_store_gc_runs_total"),
        ("evicted_segments", "repro_store_evicted_segments_total"),
        ("evicted_entries", "repro_store_evicted_entries_total"),
        ("evicted_bytes", "repro_store_evicted_bytes_total"),
        ("compacted_segments", "repro_store_compacted_segments_total"),
        ("compacted_entries", "repro_store_compacted_entries_total"),
        ("reclaimed_bytes", "repro_store_compaction_reclaimed_bytes_total"),
        ("disk_file_bytes", "repro_store_disk_file_bytes"),
    ):
        yield (name, {}, float(lifecycle.get(field) or 0))
    if lifecycle.get("quota_bytes") is not None:
        yield ("repro_store_quota_bytes", {}, float(lifecycle["quota_bytes"]))
        yield (
            "repro_store_quota_headroom_bytes",
            {},
            float(lifecycle["quota_headroom_bytes"]),
        )


def _register_store_collector(store: ArtifactStore) -> None:
    # Replace-by-source: re-opening the store re-points the collector,
    # so the registry always scrapes the live process store.
    from ..obs.metrics import global_registry

    global_registry().register_collector(
        _STORE_COLLECTOR_SOURCE, lambda: store_metric_samples(store)
    )


# ----------------------------------------------------------------------
# Process-wide store: StoreConfig + open_store / active_store
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class StoreConfig:
    """Everything needed to open an :class:`ArtifactStore`.

    The one configuration surface for the store: CLIs build one from
    the shared cache flags (:func:`add_cache_arguments` /
    :func:`store_config_from_args`), programs construct one directly,
    and :meth:`from_env` fills unset fields from ``$REPRO_CACHE_DIR`` /
    ``$REPRO_CACHE_MAX_BYTES`` / ``$REPRO_CACHE_MEMORY_ITEMS``.
    """

    disk_dir: str | Path | None = None
    max_bytes: int | None = None
    memory_items: int | dict | None = None
    max_loaded_segments: int = 8
    read_only: bool = False
    compact_ratio: float = 0.5

    @classmethod
    def from_env(cls, **overrides) -> "StoreConfig":
        """Environment-backed config; non-``None`` overrides win."""
        fields: dict = {
            "disk_dir": os.environ.get(CACHE_DIR_ENV) or None,
            "max_bytes": parse_byte_size(os.environ.get(CACHE_MAX_BYTES_ENV) or None),
            "memory_items": (
                int(os.environ[CACHE_MEMORY_ITEMS_ENV])
                if os.environ.get(CACHE_MEMORY_ITEMS_ENV)
                else None
            ),
        }
        fields.update({k: v for k, v in overrides.items() if v is not None})
        return cls(**fields)

    def build(self) -> ArtifactStore:
        """A fresh store with these settings (not installed process-wide)."""
        return ArtifactStore(
            maxsize=self.memory_items,
            disk_dir=self.disk_dir,
            max_loaded_segments=self.max_loaded_segments,
            read_only=self.read_only,
            max_bytes=self.max_bytes,
            compact_ratio=self.compact_ratio,
        )


_process_store: ArtifactStore | None = None
_process_lock = threading.Lock()


def open_store(
    config: StoreConfig | None = None, *, store: ArtifactStore | None = None
) -> ArtifactStore:
    """Install the process-wide store (replacing any existing one).

    ``config=None`` opens from the environment
    (:meth:`StoreConfig.from_env`); pass ``store=`` to adopt an
    already-built instance.  Registers the ``repro_store_*`` collector
    on the process obs registry, so lifecycle telemetry is scrapeable
    wherever metrics are.
    """
    global _process_store
    with _process_lock:
        if store is None:
            store = (config if config is not None else StoreConfig.from_env()).build()
        _process_store = store
        _register_store_collector(store)
        return store


def active_store(flag: bool | None = None) -> ArtifactStore | None:
    """The process-wide store, honouring the three-state opt-in flag.

    ``None`` (default) → the installed store; when none is installed,
    one is opened from the environment only if ``$REPRO_CACHE_DIR``
    opts in, else ``None`` (per-fit isolation).  Truthy → the installed
    store, opening one (memory-only without an environment opt-in) if
    needed — never ``None``.  Falsy-but-not-``None`` → ``None``.
    Truthiness rather than identity, so an accidental ``0`` or ``1``
    forces isolation or sharing as the caller plainly meant.
    """
    if flag is not None and not flag:
        return None
    global _process_store
    with _process_lock:
        if _process_store is None and (flag or os.environ.get(CACHE_DIR_ENV)):
            _process_store = StoreConfig.from_env().build()
            _register_store_collector(_process_store)
        return _process_store


def reset_store() -> None:
    """Drop the process-wide store (tests / benchmark isolation)."""
    global _process_store
    with _process_lock:
        _process_store = None
        try:
            from ..obs.metrics import global_registry

            global_registry().unregister_collector(_STORE_COLLECTOR_SOURCE)
        except Exception:  # noqa: BLE001 — teardown must not raise
            pass


# ----------------------------------------------------------------------
# Shared CLI surface
# ----------------------------------------------------------------------
def add_cache_arguments(parser) -> None:
    """Uniform cache flags for every CLI entry point.

    One helper shared by ``python -m repro.experiments``,
    ``python -m repro.serving`` and ``python -m repro.streaming``;
    every flag is environment-backed so a fleet can be configured once
    via ``$REPRO_CACHE_DIR`` / ``$REPRO_CACHE_MAX_BYTES`` /
    ``$REPRO_CACHE_MEMORY_ITEMS`` and overridden per-invocation.
    """
    group = parser.add_argument_group("artifact cache")
    group.add_argument(
        "--cache-dir",
        default=None,
        help="enable the cross-fit artifact store with a disk tier at this "
        f"directory (default: ${CACHE_DIR_ENV}); DTW pairs, masked "
        "adjacencies and served windows are reused bit-exactly across "
        "fits, runs and processes",
    )
    group.add_argument(
        "--cache-max-bytes",
        default=None,
        type=parse_byte_size,
        metavar="BYTES",
        help="disk-tier byte quota with K/M/G/T suffixes, e.g. 512M "
        f"(default: ${CACHE_MAX_BYTES_ENV}); persist() and gc() evict whole "
        "least-recently-used segments until the tier fits",
    )
    group.add_argument(
        "--cache-memory-items",
        default=None,
        type=int,
        metavar="N",
        help="memory-tier entries kept per namespace "
        f"(default: ${CACHE_MEMORY_ITEMS_ENV}, else built-in per-namespace depths)",
    )


def store_config_from_args(args) -> StoreConfig | None:
    """The parsed cache flags as an env-backed :class:`StoreConfig`.

    ``None`` when neither the flags nor the environment opt into
    anything — callers then keep their default behaviour (no store, or
    a bundle-provided one).
    """
    config = StoreConfig.from_env(
        disk_dir=getattr(args, "cache_dir", None),
        max_bytes=getattr(args, "cache_max_bytes", None),
        memory_items=getattr(args, "cache_memory_items", None),
    )
    if config.disk_dir is None and config.max_bytes is None and config.memory_items is None:
        return None
    return config


# ----------------------------------------------------------------------
# Deprecated wiring shims (pre-PR 10 four-function surface)
# ----------------------------------------------------------------------
def _warn_deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"repro.engine.{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def configure_store(
    disk_dir: str | Path | None = None,
    maxsize: int | dict | None = None,
    store: ArtifactStore | None = None,
) -> ArtifactStore:
    """Deprecated: use :func:`open_store` with a :class:`StoreConfig`."""
    _warn_deprecated("configure_store()", "open_store(StoreConfig(...))")
    if store is not None:
        return open_store(store=store)
    return open_store(
        StoreConfig(
            disk_dir=disk_dir,
            memory_items=maxsize,
            max_bytes=parse_byte_size(os.environ.get(CACHE_MAX_BYTES_ENV) or None),
        )
    )


def get_store() -> ArtifactStore:
    """Deprecated: use ``active_store(True)``."""
    _warn_deprecated("get_store()", "active_store(True)")
    return active_store(True)


def store_active() -> bool:
    """Deprecated: use ``active_store() is not None``."""
    _warn_deprecated("store_active()", "active_store() is not None")
    with _process_lock:
        installed = _process_store is not None
    return installed or bool(os.environ.get(CACHE_DIR_ENV))


def resolve_store(flag: bool | None = None) -> ArtifactStore | None:
    """Deprecated: use :func:`active_store`."""
    _warn_deprecated("resolve_store()", "active_store(flag)")
    return active_store(flag)


def default_store_scope(forecaster) -> bytes | None:
    """Content-addressed scope for one fitted forecaster's cached results.

    Hashes everything a served forecast block depends on: the network
    weights, configuration, scaler, dataset identity and split index
    sets.  A checkpoint restored bitwise in another process (PR 4
    bundles) therefore derives the *same* scope and can serve the warmed
    ``forecast_window`` entries.  Returns ``None`` when the forecaster
    has no snapshotable network (naive baselines), in which case callers
    should fall back to a private cache.
    """
    network = getattr(forecaster, "network", None)
    state_dict = getattr(network, "state_dict", None)
    if network is None or state_dict is None:
        return None
    parts: list = ["forecast-scope/v1", type(forecaster).__name__,
                   getattr(forecaster, "name", "")]
    config = getattr(forecaster, "config", None)
    if config is not None:
        if dataclasses.is_dataclass(config):
            # cache_store is guaranteed metric-neutral (it only selects
            # where artifacts are cached), so it must not partition the
            # scope: a model fit with the store forced on and the same
            # model fit under the env-var opt-in share their windows.
            fields = sorted(
                (f.name, repr(getattr(config, f.name)))
                for f in dataclasses.fields(config)
                if f.name != "cache_store"
            )
            parts.append(repr(fields))
        else:
            parts.append(repr(config))
    dataset = getattr(forecaster, "dataset", None)
    if dataset is not None:
        parts.append(getattr(dataset, "name", ""))
    split = getattr(forecaster, "split", None)
    if split is not None:
        parts.extend([split.observed, split.unobserved])
    scaler = getattr(forecaster, "scaler", None)
    if scaler is not None:
        parts.extend([np.asarray(scaler.mean_), np.asarray(scaler.std_)])
    state = state_dict()
    for key in sorted(state):
        parts.extend([key, state[key]])
    return array_key(*parts)
