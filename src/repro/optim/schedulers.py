"""Learning-rate schedules attached to an :class:`~repro.optim.Optimizer`."""

from __future__ import annotations

import math

from .optimizers import Optimizer

__all__ = ["StepLR", "CosineAnnealingLR", "build_scheduler"]


class StepLR:
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5) -> None:
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        """Advance one epoch and update the optimiser's learning rate."""
        self.epoch += 1
        exponent = self.epoch // self.step_size
        self.optimizer.lr = self.base_lr * (self.gamma ** exponent)


class CosineAnnealingLR:
    """Cosine decay from the base LR to ``min_lr`` over ``total_epochs``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0) -> None:
        if total_epochs <= 0:
            raise ValueError("total_epochs must be positive")
        self.optimizer = optimizer
        self.total_epochs = total_epochs
        self.min_lr = min_lr
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        """Advance one epoch and update the optimiser's learning rate."""
        self.epoch = min(self.epoch + 1, self.total_epochs)
        ratio = self.epoch / self.total_epochs
        cosine = 0.5 * (1.0 + math.cos(math.pi * ratio))
        self.optimizer.lr = self.min_lr + (self.base_lr - self.min_lr) * cosine


def build_scheduler(
    kind: str | None,
    optimizer: Optimizer,
    *,
    total_epochs: int | None = None,
    step_size: int = 10,
    gamma: float = 0.5,
    min_lr: float = 0.0,
):
    """Scheduler factory used by the training engine's scheduler hook.

    ``kind`` is ``None``/``"none"`` (no schedule), ``"step"`` or
    ``"cosine"``; the cosine schedule requires ``total_epochs``.
    """
    if kind is None or kind == "none":
        return None
    if kind == "step":
        return StepLR(optimizer, step_size=step_size, gamma=gamma)
    if kind == "cosine":
        if total_epochs is None:
            raise ValueError("cosine schedule requires total_epochs")
        return CosineAnnealingLR(optimizer, total_epochs=total_epochs, min_lr=min_lr)
    raise ValueError(f"unknown LR schedule {kind!r}")
