"""Gradient-based optimisers (Adam per the paper, plus SGD and schedulers)."""

from .optimizers import SGD, Adam, Optimizer, clip_grad_norm
from .schedulers import CosineAnnealingLR, StepLR, build_scheduler

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "StepLR",
    "CosineAnnealingLR",
    "build_scheduler",
]
