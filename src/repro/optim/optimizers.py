"""First-order optimisers operating on parameter lists.

The paper trains with Adam at an initial learning rate of 0.01 (§5.1.3);
SGD is provided for the ablation/benchmark suite and for tests.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..nn.module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


class Optimizer:
    """Base optimiser: holds parameters, exposes ``step``/``zero_grad``."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Parameter], lr: float, momentum: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            if self.momentum:
                velocity *= self.momentum
                velocity += param.grad
                param.data -= self.lr * velocity
            else:
                param.data -= self.lr * param.grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-2,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        beta1, beta2 = self.betas
        self._step_count += 1
        correction1 = 1.0 - beta1 ** self._step_count
        correction2 = 1.0 - beta2 ** self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= beta1
            m += (1.0 - beta1) * grad
            v *= beta2
            v += (1.0 - beta2) * grad * grad
            m_hat = m / correction1
            v_hat = v / correction2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Clip the global L2 norm of all gradients to ``max_norm``.

    Returns the pre-clipping norm (useful for logging).
    """
    params = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for param in params:
            param.grad *= scale
    return total
