"""First-order optimisers operating on parameter lists.

The paper trains with Adam at an initial learning rate of 0.01 (§5.1.3);
SGD is provided for the ablation/benchmark suite and for tests.

Update rules execute through the active backend's ``sgd_step`` /
``adam_step`` composites, so a performance backend can run them fully in
place (the ``numpy_fused`` backend updates parameters with one scratch
buffer and no per-step allocations).
"""

from __future__ import annotations

import math
from typing import Iterable

from ..backend import get_backend
from ..nn.module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


class Optimizer:
    """Base optimiser: holds parameters, exposes ``step``/``zero_grad``."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Parameter], lr: float, momentum: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        backend = get_backend()
        self._velocity = [backend.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        backend = get_backend()
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            backend.sgd_step(param.data, param.grad, velocity, self.lr, self.momentum)


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-2,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        backend = get_backend()
        self._m = [backend.zeros_like(p.data) for p in self.parameters]
        self._v = [backend.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        backend = get_backend()
        beta1, beta2 = self.betas
        self._step_count += 1
        correction1 = 1.0 - beta1 ** self._step_count
        correction2 = 1.0 - beta2 ** self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            backend.adam_step(
                param.data,
                param.grad,
                m,
                v,
                self.lr,
                beta1,
                beta2,
                self.eps,
                correction1,
                correction2,
                self.weight_decay,
            )


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Clip the global L2 norm of all gradients to ``max_norm``.

    Returns the pre-clipping norm (useful for logging).
    """
    backend = get_backend()
    params = [p for p in parameters if p.grad is not None]
    total = math.sqrt(sum(backend.grad_norm_squared(p.grad) for p in params))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for param in params:
            backend.scale_inplace(param.grad, scale)
    return total
