"""Static graph node embeddings for the GE-GAN baseline.

GE-GAN (Xu et al. 2020) selects the most similar observed roads for a
target road using node embeddings of the road graph.  The original uses
node2vec; we use Laplacian spectral embeddings, which capture the same
neighbourhood structure deterministically (no random walks to tune) and
are the classic choice for this graph scale.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import eigh

__all__ = ["spectral_embedding", "most_similar_nodes"]


def spectral_embedding(adjacency: np.ndarray, dim: int = 16) -> np.ndarray:
    """Normalised-Laplacian eigenvector embedding of a graph.

    Returns ``(N, dim)`` rows (eigenvectors 1..dim, skipping the trivial
    constant eigenvector).  ``dim`` is clipped to N-1.
    """
    adjacency = np.asarray(adjacency, dtype=float)
    n = len(adjacency)
    if n < 2:
        raise ValueError("spectral embedding needs at least 2 nodes")
    degrees = adjacency.sum(axis=1)
    inv_sqrt = 1.0 / np.sqrt(np.maximum(degrees, 1e-12))
    laplacian = np.eye(n) - adjacency * inv_sqrt[:, None] * inv_sqrt[None, :]
    dim = min(dim, n - 1)
    _vals, vecs = eigh(laplacian, subset_by_index=[1, dim])
    return vecs


def most_similar_nodes(
    embeddings: np.ndarray,
    target: int,
    candidates: np.ndarray,
    k: int,
) -> np.ndarray:
    """The ``k`` candidates whose embeddings are closest to the target's."""
    candidates = np.asarray(candidates, dtype=int)
    candidates = candidates[candidates != target]
    if len(candidates) == 0:
        raise ValueError("no candidate nodes to select from")
    deltas = embeddings[candidates] - embeddings[target]
    order = np.argsort((deltas ** 2).sum(axis=1))
    return candidates[order[: min(k, len(candidates))]]
