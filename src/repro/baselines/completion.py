"""Graph-regularised low-rank matrix completion baseline (related work §2.2).

The paper's related work covers tensor/matrix completion for kriging
[Bahadori et al. 2014; Takeuchi et al. 2017; Zhou et al. 2012]: factorise
the observation matrix ``Y ≈ U Vᵀ`` with temporal factors ``U ∈ R^{T×k}``
and location factors ``V ∈ R^{N×k}``, filling unobserved entries from the
low-rank structure.  A graph Laplacian regulariser on ``V`` (kernelised
probabilistic matrix factorisation, Zhou et al.) propagates factor values
from observed to unobserved locations — without it, the unobserved rows of
``V`` are unconstrained because they never appear in a data term, which is
exactly the transductive weakness the paper describes.

Forecasting adaptation: the temporal factors for *future* steps are
extrapolated with a seasonal AR(1) per factor dimension — the time-of-day
profile of ``U`` plus an autoregressive anomaly, mirroring autoregressive
tensor factorisation [Takeuchi et al. 2017].

The objective optimised by alternating least squares (ALS)::

    min_{U,V}  ‖P_Ω(Y − U Vᵀ)‖²_F + λ (‖U‖²_F + ‖V‖²_F) + γ tr(Vᵀ L V)

where ``Ω`` covers (training steps × observed locations) only and ``L`` is
the unnormalised Laplacian of the Gaussian-kernel sensor graph.

The model is *transductive*: adding a new location requires re-fitting —
one of the stated motivations for the inductive neural models.
"""

from __future__ import annotations

import time

import numpy as np

from ..data.scalers import StandardScaler
from ..engine import Trainer, TrainingProgram
from ..graph.adjacency import gaussian_kernel_adjacency
from ..graph.distances import euclidean_distance_matrix
from ..interfaces import FitReport, Forecaster

__all__ = ["MatrixCompletionForecaster", "als_graph_completion", "graph_laplacian"]


def graph_laplacian(adjacency: np.ndarray) -> np.ndarray:
    """Unnormalised Laplacian ``L = D − A`` (self-loops removed)."""
    adjacency = np.asarray(adjacency, dtype=float).copy()
    np.fill_diagonal(adjacency, 0.0)
    return np.diag(adjacency.sum(axis=1)) - adjacency


def als_graph_completion(
    values: np.ndarray,
    mask: np.ndarray,
    laplacian: np.ndarray,
    rank: int,
    ridge: float = 0.1,
    graph_weight: float = 1.0,
    iterations: int = 30,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, list[float]]:
    """Alternate U and V updates for graph-regularised completion.

    Parameters
    ----------
    values:
        ``(T, N)`` observation matrix; entries outside ``mask`` are ignored
        (may be anything, e.g. zeros for the unobserved region).
    mask:
        ``(T, N)`` boolean; True where the entry participates in the loss.
    laplacian:
        ``(N, N)`` graph Laplacian coupling location factors.
    rank:
        Number of latent factors ``k``.
    ridge:
        λ — Frobenius penalty on both factors.
    graph_weight:
        γ — strength of the Laplacian smoothness term.
    iterations:
        ALS sweeps (each sweep: closed-form U rows, then Jacobi V update).

    Returns
    -------
    ``(U, V, history)`` with ``U (T, k)``, ``V (N, k)`` and the per-sweep
    masked reconstruction RMSE.

    Notes
    -----
    The U update is exact per time step (independent ridge regressions on
    the observed columns).  The V update handles the Laplacian coupling via
    a Jacobi step: for location ``i`` with graph degree ``d_i``::

        (Σ_t m_ti u_t u_tᵀ + (λ + γ d_i) I) v_i
            = Σ_t m_ti y_ti u_t + γ Σ_j A_ij v_j

    using the *current* neighbour factors on the right-hand side.  Fully
    unobserved locations (zero data rows) still receive factors from their
    neighbours through the γ term, which is the mechanism under test.
    """
    if rank < 1:
        raise ValueError(f"rank must be >= 1, got {rank}")
    num_steps, num_locations = values.shape
    if mask.shape != values.shape:
        raise ValueError("mask shape must match values shape")
    rng = np.random.default_rng(seed)
    program = _ALSProgram(
        values=values,
        mask=mask,
        laplacian=laplacian,
        factors_u=0.1 * rng.standard_normal((num_steps, rank)),
        factors_v=0.1 * rng.standard_normal((num_locations, rank)),
        ridge=ridge,
        graph_weight=graph_weight,
    )
    Trainer(program, max_epochs=iterations).fit()
    # program.rmse_history skips empty-mask sweeps (which have no
    # residual to report) but keeps genuine NaN RMSEs visible, exactly
    # like the pre-engine loop.
    return program.factors_u, program.factors_v, program.rmse_history


class _ALSProgram(TrainingProgram):
    """One ALS sweep (closed-form U rows, Jacobi V update) per epoch.

    No autograd, no optimiser: the whole gradient machinery of the
    default ``train_batch`` is bypassed by overriding ``run_epoch``.  The
    reported epoch loss is the masked reconstruction RMSE after the
    sweep.
    """

    def __init__(
        self,
        values: np.ndarray,
        mask: np.ndarray,
        laplacian: np.ndarray,
        factors_u: np.ndarray,
        factors_v: np.ndarray,
        ridge: float,
        graph_weight: float,
    ) -> None:
        self.values = values
        self.mask = mask
        self.factors_u = factors_u
        self.factors_v = factors_v
        self.ridge = ridge
        self.graph_weight = graph_weight
        self.adjacency = np.diag(np.diag(laplacian)) - laplacian  # recover A from L
        self.degrees = np.diag(laplacian)
        self.eye = np.eye(factors_u.shape[1])
        self.masked = np.where(mask, values, 0.0)
        #: Masked reconstruction RMSE per sweep that had a residual.
        self.rmse_history: list[float] = []

    def run_epoch(self, epoch: int, rng: np.random.Generator | None) -> float:
        values, mask = self.values, self.mask
        factors_u, factors_v = self.factors_u, self.factors_v
        eye = self.eye

        # --- U update: exact ridge per time step.
        for t in range(len(values)):
            cols = mask[t]
            if not cols.any():
                factors_u[t] = 0.0
                continue
            v_obs = factors_v[cols]
            gram = v_obs.T @ v_obs + self.ridge * eye
            factors_u[t] = np.linalg.solve(gram, v_obs.T @ values[t, cols])

        # --- V update: Jacobi step with Laplacian coupling.
        new_v = np.empty_like(factors_v)
        data_gram = factors_u.T @ factors_u  # reused for fully-observed rows
        for i in range(values.shape[1]):
            rows = mask[:, i]
            if rows.all():
                gram = data_gram.copy()
            else:
                u_obs = factors_u[rows]
                gram = u_obs.T @ u_obs
            gram += (self.ridge + self.graph_weight * self.degrees[i]) * eye
            rhs = factors_u.T @ self.masked[:, i]
            rhs += self.graph_weight * (self.adjacency[i] @ factors_v)
            new_v[i] = np.linalg.solve(gram, rhs)
        self.factors_v = factors_v = new_v

        residual = (values - factors_u @ factors_v.T)[mask]
        if residual.size:
            rmse = float(np.sqrt((residual ** 2).mean()))
            self.rmse_history.append(rmse)
            return rmse
        # Empty mask: nothing to report; NaN marks the skipped sweep in
        # the Trainer history without entering rmse_history.
        return float("nan")


class MatrixCompletionForecaster(Forecaster):
    """Transductive graph-regularised completion adapted to forecasting.

    Parameters
    ----------
    rank:
        Latent dimensionality of the factorisation.
    ridge, graph_weight, iterations:
        See :func:`als_graph_completion`.
    ar_weight:
        AR(1) coefficient shrinkage for the temporal-factor extrapolation;
        the coefficient is estimated per factor and clipped to
        ``[-ar_weight, ar_weight]`` for stability.
    epsilon:
        Gaussian-kernel threshold for the sensor graph used in ``L``.
    """

    name = "MatrixCompletion"

    def __init__(
        self,
        rank: int = 8,
        ridge: float = 0.1,
        graph_weight: float = 2.0,
        iterations: int = 20,
        ar_weight: float = 0.95,
        epsilon: float = 0.05,
        seed: int = 0,
    ) -> None:
        self.rank = rank
        self.ridge = ridge
        self.graph_weight = graph_weight
        self.iterations = iterations
        self.ar_weight = ar_weight
        self.epsilon = epsilon
        self.seed = seed
        self._fitted = False

    def fit(self, dataset, split, spec, train_steps) -> FitReport:
        began = time.perf_counter()
        self.dataset = dataset
        self.split = split
        self.spec = spec
        train_steps = np.asarray(train_steps, dtype=int)
        self._train_end = int(train_steps[-1])

        observed = split.observed
        self.scaler = StandardScaler().fit(dataset.values[train_steps][:, observed])
        scaled = self.scaler.transform(dataset.values)

        mask = np.zeros(dataset.values.shape, dtype=bool)
        mask[np.ix_(train_steps, observed)] = True

        distances = euclidean_distance_matrix(dataset.coords)
        adjacency = gaussian_kernel_adjacency(distances, threshold=self.epsilon)
        laplacian = graph_laplacian(adjacency)

        self.factors_u, self.factors_v, history = als_graph_completion(
            scaled,
            mask,
            laplacian,
            rank=self.rank,
            ridge=self.ridge,
            graph_weight=self.graph_weight,
            iterations=self.iterations,
            seed=self.seed,
        )

        # Seasonal AR(1) model of the temporal factors, fitted on the
        # training rows: u_t ≈ profile[tod(t)] + φ ⊙ (u_{t-1} − profile).
        steps_per_day = dataset.steps_per_day
        u_train = self.factors_u[train_steps]
        tod = train_steps % steps_per_day
        profile = np.zeros((steps_per_day, self.rank))
        overall = u_train.mean(axis=0)
        for interval in range(steps_per_day):
            rows = u_train[tod == interval]
            profile[interval] = rows.mean(axis=0) if rows.size else overall
        self.u_profile = profile

        anomaly = u_train - profile[tod]
        lagged, current = anomaly[:-1], anomaly[1:]
        denom = np.maximum((lagged ** 2).sum(axis=0), 1e-9)
        phi = (lagged * current).sum(axis=0) / denom
        self.phi = np.clip(phi, -self.ar_weight, self.ar_weight)

        self._fitted = True
        return FitReport(
            train_seconds=time.perf_counter() - began,
            epochs=self.iterations,
            history=history,
            extra={"phi": self.phi.tolist()},
        )

    def _future_factors(self, last_step: int) -> np.ndarray:
        """Extrapolate temporal factors ``(T', k)`` past ``last_step``."""
        steps_per_day = self.dataset.steps_per_day
        # Anchor on the last *training-window* factor row available; inputs
        # beyond the training period re-use the seasonal profile as state.
        if last_step <= self._train_end:
            state = self.factors_u[last_step] - self.u_profile[last_step % steps_per_day]
        else:
            state = np.zeros(self.rank)
        horizon = self.spec.horizon
        out = np.empty((horizon, self.rank))
        for step in range(horizon):
            state = self.phi * state
            interval = (last_step + 1 + step) % steps_per_day
            out[step] = self.u_profile[interval] + state
        return out

    def predict(self, window_starts: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("predict() called before fit()")
        spec = self.spec
        unobserved = self.split.unobserved
        window_starts = np.asarray(window_starts, dtype=int)
        v_u = self.factors_v[unobserved]  # (N_u, k)
        out = np.empty((len(window_starts), spec.horizon, len(unobserved)))
        for row, start in enumerate(window_starts):
            last_step = int(start) + spec.input_length - 1
            future_u = self._future_factors(last_step)  # (T', k)
            out[row] = future_u @ v_u.T
        return self.scaler.inverse_transform(out)

    def reconstruct(self) -> np.ndarray:
        """The completed (scaled-back) matrix ``U Vᵀ`` over all steps."""
        if not self._fitted:
            raise RuntimeError("reconstruct() called before fit()")
        return self.scaler.inverse_transform(self.factors_u @ self.factors_v.T)
