"""INCREASE baseline (Zheng et al., WWW 2023), adapted.

Inductive graph representation learning for spatio-temporal kriging:
for every target location, the observations of its k nearest observed
neighbours are aggregated *in advance* under heterogeneous spatial
relations (spatial proximity and functional/POI similarity), a GRU encodes
each aggregated series, and a learned gate fuses the relation-specific
states before an MLP decodes the prediction.

Adaptation (paper §5.1.3): the decoder outputs the *future* window rather
than reconstructing the current one.

The paper's finding to reproduce: INCREASE is the strongest baseline but
"fails to utilise the global features of the graph as it only considers
the nearest neighbours" — with a contiguous unobserved region, the nearest
observed neighbours of interior targets are far away and its aggregation
degrades.
"""

from __future__ import annotations

import time

import numpy as np

from ..autograd import Tensor, concatenate, no_grad, softmax, stack
from ..data.scalers import StandardScaler
from ..engine import Trainer, TrainingProgram
from ..graph.distances import euclidean_distance_matrix
from ..interfaces import FitReport, Forecaster
from ..nn import GRU, Linear, Module, init, mse_loss
from ..optim import Adam

__all__ = ["INCREASENetwork", "INCREASEForecaster"]


class INCREASENetwork(Module):
    """Relation-wise GRU encoders + gated fusion + MLP decoder."""

    def __init__(
        self,
        num_relations: int,
        horizon: int,
        hidden: int = 32,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = init.default_rng(seed)
        self.num_relations = num_relations
        self.encoders = [GRU(1, hidden, rng=rng) for _ in range(num_relations)]
        for index, encoder in enumerate(self.encoders):
            self._modules[f"encoder{index}"] = encoder
        self.gate = Linear(hidden, 1, rng=rng)
        self.decode_hidden = Linear(hidden, hidden, rng=rng)
        self.decode_out = Linear(hidden, horizon, rng=rng)

    def forward(self, relation_inputs: list[Tensor]) -> Tensor:
        """``relation_inputs[r]`` is ``(batch, T, 1)``; returns ``(batch, T')``."""
        states = []
        for encoder, series in zip(self.encoders, relation_inputs):
            _seq, final = encoder(series)
            states.append(final)  # (batch, hidden)
        stacked = stack(states, axis=1)  # (batch, R, hidden)
        scores = self.gate(stacked)  # (batch, R, 1)
        weights = softmax(scores, axis=1)
        fused = (stacked * weights).sum(axis=1)  # (batch, hidden)
        return self.decode_out(self.decode_hidden(fused).relu())


def _relation_weights(
    scores: np.ndarray, neighbour_count: int
) -> tuple[np.ndarray, np.ndarray]:
    """Top-k neighbours and row-normalised weights from a score row."""
    order = np.argsort(scores)[::-1][:neighbour_count]
    raw = np.maximum(scores[order], 1e-9)
    return order, raw / raw.sum()


class _INCREASEProgram(TrainingProgram):
    """One INCREASE training iteration per engine epoch.

    Each epoch draws random (target, window) pairs among the observed
    locations and regresses the gated relation fusion onto the targets'
    future windows — a single-batch epoch under the shared Trainer.
    """

    def __init__(self, forecaster: "INCREASEForecaster", usable: int,
                 train_steps: np.ndarray) -> None:
        self.forecaster = forecaster
        self.network = forecaster.network
        self.optimiser = Adam(self.network.parameters(), lr=forecaster.learning_rate)
        self.grad_clip = 5.0
        self.usable = usable
        self.train_steps = train_steps

    def batches(self, epoch: int, rng: np.random.Generator | None):
        forecaster = self.forecaster
        spec = forecaster.spec
        observed = forecaster.split.observed
        targets = rng.choice(observed, size=forecaster.batch_size, replace=True)
        starts = rng.integers(0, self.usable + 1, size=forecaster.batch_size)
        relation_batches: list[list[np.ndarray]] = [[] for _ in forecaster._scores]
        labels = []
        for target, s in zip(targets, starts):
            begin = int(self.train_steps[0]) + int(s)
            window = forecaster._scaled[begin : begin + spec.input_length]
            sources = observed[observed != target]
            for r, series in enumerate(forecaster._aggregate(window, int(target), sources)):
                relation_batches[r].append(series)
            labels.append(
                forecaster._scaled[begin + spec.input_length : begin + spec.total, int(target)]
            )
        inputs = [
            Tensor(np.stack(batch, axis=0)[..., None]) for batch in relation_batches
        ]
        yield inputs, Tensor(np.stack(labels, axis=0))

    def compute_loss(self, batch, rng: np.random.Generator | None):
        inputs, y = batch
        return mse_loss(self.network(inputs), y)


class INCREASEForecaster(Forecaster):
    """INCREASE adapted to forecast a contiguous unobserved region.

    Parameters
    ----------
    num_neighbours:
        k — observed neighbours aggregated per relation.
    hidden:
        GRU/decoder width.
    iterations:
        Training batches; each draws random (target, window) pairs.
    batch_size:
        (target, window) pairs per batch.
    """

    def __init__(
        self,
        num_neighbours: int = 5,
        hidden: int = 32,
        iterations: int = 200,
        batch_size: int = 32,
        learning_rate: float = 0.005,
        seed: int = 0,
    ) -> None:
        self.num_neighbours = num_neighbours
        self.hidden = hidden
        self.iterations = iterations
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.seed = seed
        self.name = "INCREASE"
        self._fitted = False

    # ------------------------------------------------------------------
    def _relation_scores(self, dataset) -> list[np.ndarray]:
        """(N, N) similarity scores per relation: spatial, functional."""
        distances = euclidean_distance_matrix(dataset.coords)
        off = distances[~np.eye(len(distances), dtype=bool)]
        sigma = max(float(off.std()), 1e-9)
        spatial = np.exp(-(distances ** 2) / (sigma ** 2))
        poi = dataset.features.poi_counts
        norms = np.linalg.norm(poi, axis=1)
        functional = (poi @ poi.T) / np.maximum(np.outer(norms, norms), 1e-9)
        return [spatial, functional]

    def _aggregate(
        self, values_window: np.ndarray, target: int, sources: np.ndarray
    ) -> list[np.ndarray]:
        """Aggregated neighbour series per relation for one target.

        ``values_window`` is ``(T, N)`` scaled values; sources are the
        global ids the target may aggregate from.
        """
        series = []
        for scores in self._scores:
            row = scores[target, sources]
            order, weights = _relation_weights(row, self.num_neighbours)
            picked = sources[order]
            series.append(values_window[:, picked] @ weights)
        return series

    def fit(self, dataset, split, spec, train_steps) -> FitReport:
        began = time.perf_counter()
        rng = np.random.default_rng(self.seed)
        self.dataset = dataset
        self.split = split
        self.spec = spec
        observed = split.observed

        self.scaler = StandardScaler().fit(dataset.values[train_steps][:, observed])
        self._scaled = self.scaler.transform(dataset.values)
        self._scores = self._relation_scores(dataset)

        self.network = INCREASENetwork(
            num_relations=len(self._scores), horizon=spec.horizon,
            hidden=self.hidden, seed=self.seed,
        )

        usable = len(train_steps) - spec.total
        if usable < 1:
            raise ValueError("training period too short for the window spec")

        program = _INCREASEProgram(self, usable, train_steps)
        history = Trainer(program, max_epochs=self.iterations, rng=rng).fit()

        self._fitted = True
        return FitReport(
            train_seconds=time.perf_counter() - began,
            epochs=self.iterations,
            history=list(history.train_losses),
        )

    def predict(self, window_starts: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("predict() called before fit()")
        spec = self.spec
        observed = self.split.observed
        unobserved = self.split.unobserved
        window_starts = np.asarray(window_starts, dtype=int)
        out = np.empty((len(window_starts), spec.horizon, len(unobserved)))
        with no_grad():
            for w_begin in range(0, len(window_starts), 8):
                chunk = window_starts[w_begin : w_begin + 8]
                relation_batches: list[list[np.ndarray]] = [[] for _ in self._scores]
                for s in chunk:
                    window = self._scaled[s : s + spec.input_length]
                    for target in unobserved:
                        for r, series in enumerate(
                            self._aggregate(window, int(target), observed)
                        ):
                            relation_batches[r].append(series)
                inputs = [
                    Tensor(np.stack(batch, axis=0)[..., None]) for batch in relation_batches
                ]
                prediction = self.network(inputs).numpy()  # (chunk*N_u, T')
                prediction = prediction.reshape(len(chunk), len(unobserved), spec.horizon)
                out[w_begin : w_begin + len(chunk)] = self.scaler.inverse_transform(
                    prediction.transpose(0, 2, 1)
                )
        return out
