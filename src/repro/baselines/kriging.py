"""Classical Gaussian-process kriging baseline (related work §2.2).

The paper cites Gaussian process regression [Williams & Rasmussen 2006] as
the classic solution to the kriging problem before turning to neural
models, noting that "it suffers from low efficiency and poor scalability".
We implement it so the benchmark tables can show where the classical
method sits relative to the neural baselines and STSM on the
contiguous-unobserved-region task.

Kriging interpolates *spatially at one time step*; it has no notion of the
future.  To adapt it to forecasting (the same adaptation the paper applies
to the neural imputation baselines) we use a two-stage scheme:

1. *Temporal stage* — forecast each **observed** location's future window
   with a seasonal-persistence model: the training-period time-of-day
   profile of that sensor, level-shifted towards the last observed value
   with a decaying weight.
2. *Spatial stage* — ordinary kriging transfers, per future step, the
   observed-location forecasts onto the unobserved locations using weights
   derived from a fitted covariance model.

The covariance model is a Gaussian (squared-exponential) kernel with a
nugget; its length-scale is selected on the training data by leave-one-out
cross-validation over a small grid — the classical variogram-fitting role.
Ordinary kriging (weights constrained to sum to one) keeps the predictor
unbiased under an unknown constant mean, which matters here because the
unobserved region is *outside* the observed sensors' convex hull for the
paper's contiguous splits — exactly the regime where simple kriging's
pull-to-zero-mean hurts.
"""

from __future__ import annotations

import time

import numpy as np

from ..data.scalers import StandardScaler
from ..graph.distances import euclidean_distance_matrix
from ..interfaces import FitReport, Forecaster

__all__ = [
    "GPKrigingForecaster",
    "gaussian_covariance",
    "ordinary_kriging_weights",
    "loo_lengthscale_search",
]


def gaussian_covariance(
    distances: np.ndarray, lengthscale: float, nugget: float = 1e-4
) -> np.ndarray:
    """Squared-exponential covariance ``exp(-d² / (2ℓ²))`` plus a nugget.

    The nugget is added on the diagonal only (measurement noise); it also
    keeps the solve well-conditioned when sensors nearly coincide.
    """
    if lengthscale <= 0:
        raise ValueError(f"lengthscale must be positive, got {lengthscale}")
    cov = np.exp(-(distances ** 2) / (2.0 * lengthscale ** 2))
    if cov.shape[0] == cov.shape[1]:
        cov = cov + nugget * np.eye(cov.shape[0])
    return cov


def ordinary_kriging_weights(
    cov_oo: np.ndarray, cov_uo: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Solve the ordinary-kriging system for every target at once.

    Parameters
    ----------
    cov_oo:
        ``(N_o, N_o)`` covariance among observed locations (with nugget).
    cov_uo:
        ``(N_u, N_o)`` covariance between targets and observed locations.

    Returns
    -------
    weights:
        ``(N_u, N_o)`` kriging weights; each row sums to one.
    variance:
        ``(N_u,)`` ordinary-kriging variance (relative units, since the
        kernel here is a correlation function scaled by the process sill).

    Notes
    -----
    The augmented system with the Lagrange multiplier ``μ`` is::

        [ C_oo  1 ] [ w ]   [ c_uo ]
        [ 1ᵀ    0 ] [ μ ] = [  1   ]

    solved for all targets simultaneously via one factorisation.
    """
    n_o = cov_oo.shape[0]
    n_u = cov_uo.shape[0]
    system = np.zeros((n_o + 1, n_o + 1))
    system[:n_o, :n_o] = cov_oo
    system[:n_o, n_o] = 1.0
    system[n_o, :n_o] = 1.0
    rhs = np.zeros((n_o + 1, n_u))
    rhs[:n_o] = cov_uo.T
    rhs[n_o] = 1.0
    solution = np.linalg.solve(system, rhs)
    weights = solution[:n_o].T
    multiplier = solution[n_o]
    # sigma² = C(0) - wᵀ c_uo - μ ; C(0) = 1 for a correlation kernel.
    variance = 1.0 - np.einsum("ij,ij->i", weights, cov_uo) - multiplier
    return weights, np.maximum(variance, 0.0)


def loo_lengthscale_search(
    coords: np.ndarray,
    values: np.ndarray,
    candidates: np.ndarray,
    nugget: float = 1e-2,
) -> float:
    """Pick the kernel length-scale by leave-one-out error on observed data.

    Parameters
    ----------
    coords:
        ``(N_o, 2)`` observed sensor coordinates.
    values:
        ``(S, N_o)`` sample of (scaled) observation rows used to score.
    candidates:
        Length-scales to try (metres).

    For each candidate we krige every sensor from the remaining sensors and
    score the mean squared leave-one-out error; the smallest wins.  This is
    the cross-validation analogue of variogram fitting and is robust to the
    strong diurnal non-stationarity of traffic data because it is applied
    to z-scored rows.
    """
    if len(candidates) == 0:
        raise ValueError("need at least one length-scale candidate")
    distances = euclidean_distance_matrix(coords)
    n_o = len(coords)
    best_scale, best_error = float(candidates[0]), np.inf
    for lengthscale in candidates:
        cov = gaussian_covariance(distances, float(lengthscale), nugget)
        error = 0.0
        for leave in range(n_o):
            keep = np.arange(n_o) != leave
            weights, _ = ordinary_kriging_weights(
                cov[np.ix_(keep, keep)], cov[None, leave, keep]
            )
            predicted = values[:, keep] @ weights[0]
            error += float(((predicted - values[:, leave]) ** 2).mean())
        if error < best_error:
            best_error, best_scale = error, float(lengthscale)
    return best_scale


class GPKrigingForecaster(Forecaster):
    """Ordinary kriging over seasonal-persistence forecasts.

    Parameters
    ----------
    nugget:
        Diagonal noise added to the observed-observed covariance.
    level_decay:
        Per-step decay of the last-observation level shift in the seasonal
        persistence stage; ``0`` reduces to the pure time-of-day profile,
        values near ``1`` approach pure persistence.
    lengthscale_candidates:
        Grid for the leave-one-out search, as fractions of the maximum
        pairwise sensor distance.  ``None`` uses a default geometric grid.
    loo_sample_rows:
        Number of training rows sampled for the leave-one-out score (keeps
        the classical method's notorious cost bounded).
    """

    name = "GP-Kriging"

    def __init__(
        self,
        nugget: float = 1e-2,
        level_decay: float = 0.9,
        lengthscale_candidates: np.ndarray | None = None,
        loo_sample_rows: int = 64,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= level_decay <= 1.0:
            raise ValueError(f"level_decay must be in [0, 1], got {level_decay}")
        self.nugget = nugget
        self.level_decay = level_decay
        self.lengthscale_candidates = lengthscale_candidates
        self.loo_sample_rows = loo_sample_rows
        self.seed = seed
        self._fitted = False

    def fit(self, dataset, split, spec, train_steps) -> FitReport:
        began = time.perf_counter()
        rng = np.random.default_rng(self.seed)
        self.dataset = dataset
        self.split = split
        self.spec = spec
        observed = split.observed

        train_values = dataset.values[train_steps][:, observed]
        self.scaler = StandardScaler().fit(train_values)
        scaled = self.scaler.transform(train_values)

        # Seasonal profile per observed sensor (time-of-day mean).
        steps_per_day = dataset.steps_per_day
        tod = np.asarray(train_steps) % steps_per_day
        profile = np.zeros((steps_per_day, len(observed)))
        overall = scaled.mean(axis=0)
        for interval in range(steps_per_day):
            rows = scaled[tod == interval]
            profile[interval] = rows.mean(axis=0) if rows.size else overall
        self.profile = profile

        # Covariance model: length-scale by leave-one-out cross-validation.
        coords_o = dataset.coords[observed]
        max_dist = float(euclidean_distance_matrix(coords_o).max())
        if self.lengthscale_candidates is not None:
            candidates = np.asarray(self.lengthscale_candidates, dtype=float)
        else:
            candidates = max_dist * np.array([0.05, 0.1, 0.2, 0.4, 0.8])
        sample_size = min(self.loo_sample_rows, len(scaled))
        sample = scaled[rng.choice(len(scaled), size=sample_size, replace=False)]
        self.lengthscale = loo_lengthscale_search(
            coords_o, sample, candidates, nugget=self.nugget
        )

        # Kriging weights observed -> unobserved are time-invariant.
        distances = euclidean_distance_matrix(dataset.coords)
        cov_oo = gaussian_covariance(
            distances[np.ix_(observed, observed)], self.lengthscale, self.nugget
        )
        cov_uo = gaussian_covariance(
            distances[np.ix_(split.unobserved, observed)], self.lengthscale
        )
        self.weights, self.kriging_variance = ordinary_kriging_weights(cov_oo, cov_uo)

        self._fitted = True
        return FitReport(
            train_seconds=time.perf_counter() - began,
            epochs=1,
            extra={
                "lengthscale": self.lengthscale,
                "mean_kriging_variance": float(self.kriging_variance.mean()),
            },
        )

    def _forecast_observed(self, start: int) -> np.ndarray:
        """Seasonal-persistence forecast ``(T', N_o)`` for observed sensors."""
        spec = self.spec
        steps_per_day = self.dataset.steps_per_day
        observed = self.split.observed
        last_step = start + spec.input_length - 1
        last = self.scaler.transform(self.dataset.values[last_step, observed])
        anomaly = last - self.profile[last_step % steps_per_day]
        horizon_ids = (last_step + 1 + np.arange(spec.horizon)) % steps_per_day
        decay = self.level_decay ** (1 + np.arange(spec.horizon))
        return self.profile[horizon_ids] + decay[:, None] * anomaly[None, :]

    def predict(self, window_starts: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("predict() called before fit()")
        spec = self.spec
        window_starts = np.asarray(window_starts, dtype=int)
        n_u = len(self.split.unobserved)
        out = np.empty((len(window_starts), spec.horizon, n_u))
        for row, start in enumerate(window_starts):
            observed_future = self._forecast_observed(int(start))  # (T', N_o)
            out[row] = observed_future @ self.weights.T
        return self.scaler.inverse_transform(out)

    def predict_with_variance(
        self, window_starts: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Predictions plus the (time-invariant) ordinary-kriging variance.

        The variance is in *scaled* (unit-sill) terms and quantifies how far
        each unobserved location sits from the observed network — the
        classical uncertainty map for sensor-placement decisions.
        """
        predictions = self.predict(window_starts)
        return predictions, self.kriging_variance.copy()

    def predict_interval(self, window_starts: np.ndarray, coverage: float = 0.9):
        """Gaussian central prediction interval from the kriging variance.

        The GP's predictive distribution is Gaussian, so the interval is
        ``mean ± z_{(1+coverage)/2} · σ`` with σ mapped back to data units
        through the scaler.  Comparable against the Monte-Carlo intervals
        of :mod:`repro.core.uncertainty` via the same metrics.
        """
        from scipy.stats import norm

        from ..core.uncertainty import PredictionInterval

        if not 0.0 < coverage < 1.0:
            raise ValueError(f"coverage must be in (0, 1), got {coverage}")
        predictions = self.predict(window_starts)
        z_value = float(norm.ppf(0.5 + coverage / 2.0))
        sigma = np.sqrt(self.kriging_variance) * self.scaler.std_
        half_width = z_value * sigma[None, None, :]
        return PredictionInterval(
            mean=predictions,
            lower=predictions - half_width,
            upper=predictions + half_width,
            coverage_nominal=coverage,
        )
