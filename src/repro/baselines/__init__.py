"""Baseline forecasters the paper compares against (§5.1.2), the classical
methods its related work cites (§2.2), and naive sanity references used by
the test suite."""

from .completion import MatrixCompletionForecaster, als_graph_completion, graph_laplacian
from .gegan import GEGANForecaster
from .graph_embedding import most_similar_nodes, spectral_embedding
from .ignnk import DiffusionGCN, IGNNKForecaster, IGNNKNetwork
from .increase import INCREASEForecaster, INCREASENetwork
from .kriging import (
    GPKrigingForecaster,
    gaussian_covariance,
    loo_lengthscale_search,
    ordinary_kriging_weights,
)
from .mean import HistoricalAverageForecaster, IDWPersistenceForecaster, NearestObservedForecaster
from .oracle import OracleForecaster

__all__ = [
    "GEGANForecaster",
    "IGNNKForecaster",
    "IGNNKNetwork",
    "DiffusionGCN",
    "INCREASEForecaster",
    "INCREASENetwork",
    "GPKrigingForecaster",
    "gaussian_covariance",
    "ordinary_kriging_weights",
    "loo_lengthscale_search",
    "MatrixCompletionForecaster",
    "als_graph_completion",
    "graph_laplacian",
    "HistoricalAverageForecaster",
    "NearestObservedForecaster",
    "IDWPersistenceForecaster",
    "OracleForecaster",
    "spectral_embedding",
    "most_similar_nodes",
]
