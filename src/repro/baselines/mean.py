"""Naive reference forecasters.

Not part of the paper's baseline table, but used throughout the test suite
as sanity floors: a learned model that loses to the historical-average
predictor on this task is broken.
"""

from __future__ import annotations

import time

import numpy as np

from ..data.dataset import SpatioTemporalDataset
from ..data.splits import SpaceSplit
from ..data.windows import WindowSpec
from ..graph.distances import euclidean_distance_matrix
from ..interfaces import FitReport, Forecaster

__all__ = ["HistoricalAverageForecaster", "NearestObservedForecaster", "IDWPersistenceForecaster"]


class HistoricalAverageForecaster(Forecaster):
    """Predicts the training-period time-of-day mean of observed locations.

    Every unobserved location receives the same daily profile — the
    strongest model-free use of the periodic structure.
    """

    name = "HistoricalAverage"

    def fit(self, dataset, split, spec, train_steps) -> FitReport:
        began = time.perf_counter()
        self.dataset = dataset
        self.split = split
        self.spec = spec
        values = dataset.values[train_steps][:, split.observed]
        steps_per_day = dataset.steps_per_day
        tod = train_steps % steps_per_day
        profile = np.zeros(steps_per_day)
        for interval in range(steps_per_day):
            rows = values[tod == interval]
            profile[interval] = rows.mean() if rows.size else values.mean()
        self.profile = profile
        return FitReport(train_seconds=time.perf_counter() - began, epochs=1)

    def predict(self, window_starts: np.ndarray) -> np.ndarray:
        spec = self.spec
        steps_per_day = self.dataset.steps_per_day
        n_u = len(self.split.unobserved)
        out = np.empty((len(window_starts), spec.horizon, n_u))
        for row, start in enumerate(np.asarray(window_starts, dtype=int)):
            ids = (start + spec.input_length + np.arange(spec.horizon)) % steps_per_day
            out[row] = self.profile[ids][:, None]
        return out


class NearestObservedForecaster(Forecaster):
    """Copies the nearest observed sensor's last input value (persistence)."""

    name = "NearestObserved"

    def fit(self, dataset, split, spec, train_steps) -> FitReport:
        began = time.perf_counter()
        self.dataset = dataset
        self.split = split
        self.spec = spec
        distances = euclidean_distance_matrix(dataset.coords)
        block = distances[np.ix_(split.unobserved, split.observed)]
        self.nearest = split.observed[np.argmin(block, axis=1)]
        return FitReport(train_seconds=time.perf_counter() - began, epochs=1)

    def predict(self, window_starts: np.ndarray) -> np.ndarray:
        spec = self.spec
        values = self.dataset.values
        out = np.empty((len(window_starts), spec.horizon, len(self.nearest)))
        for row, start in enumerate(np.asarray(window_starts, dtype=int)):
            last = values[start + spec.input_length - 1, self.nearest]
            out[row] = np.tile(last, (spec.horizon, 1))
        return out


class IDWPersistenceForecaster(Forecaster):
    """Inverse-distance-weighted persistence of observed last inputs."""

    name = "IDWPersistence"

    def fit(self, dataset, split, spec, train_steps) -> FitReport:
        began = time.perf_counter()
        self.dataset = dataset
        self.split = split
        self.spec = spec
        distances = euclidean_distance_matrix(dataset.coords)
        block = distances[np.ix_(split.unobserved, split.observed)]
        inverse = 1.0 / np.maximum(block, 1e-6)
        self.weights = inverse / inverse.sum(axis=1, keepdims=True)
        return FitReport(train_seconds=time.perf_counter() - began, epochs=1)

    def predict(self, window_starts: np.ndarray) -> np.ndarray:
        spec = self.spec
        values = self.dataset.values
        observed = self.split.observed
        out = np.empty((len(window_starts), spec.horizon, self.weights.shape[0]))
        for row, start in enumerate(np.asarray(window_starts, dtype=int)):
            last = values[start + spec.input_length - 1, observed]
            out[row] = np.tile(self.weights @ last, (spec.horizon, 1))
        return out
