"""GE-GAN baseline (Xu et al., Transportation Research Part C 2020), adapted.

Graph-Embedding GAN for road traffic state estimation: node embeddings of
the road graph select, for each target location, the most similar observed
locations; a generator MLP maps [noise || similar locations' window] to
the target's values and a discriminator MLP tells real from generated.

Adaptations (documented per DESIGN.md):

* the ground truth is the *future* window (the paper adapts all baselines
  from imputation to forecasting this way, §5.1.3);
* node2vec embeddings are replaced by deterministic Laplacian spectral
  embeddings (:mod:`repro.baselines.graph_embedding`);
* the generator loss adds a *small* L2 term to the adversarial term so
  training does not diverge at this scale; the weight is kept low on
  purpose — the published model is adversarial, and a large L2 would turn
  it into supervised regression and mask its characteristic failure mode
  on large contiguous unobserved regions.

GE-GAN is transductive: embeddings cover the full graph (geometry of the
unobserved region is known, its data is not), so a new region requires
re-embedding — one of the drawbacks the paper highlights.

The paper's finding to reproduce: GE-GAN collapses on large contiguous
unobserved regions ("it is difficult to find similar locations when there
are many unobserved locations in a large area") but is comparatively much
better on the small urban dataset (Melbourne).
"""

from __future__ import annotations

import time

import numpy as np

from ..autograd import Tensor, concatenate, no_grad
from ..data.scalers import StandardScaler
from ..engine import Trainer, TrainingProgram
from ..graph.adjacency import gaussian_kernel_adjacency
from ..graph.distances import euclidean_distance_matrix
from ..interfaces import FitReport, Forecaster
from ..nn import Linear, Module, Sequential, ReLU, Tanh, bce_loss, init, mse_loss
from ..optim import Adam
from .graph_embedding import most_similar_nodes, spectral_embedding

__all__ = ["GEGANForecaster"]


class _Generator(Module):
    """MLP: [noise || condition window] -> target future window."""

    def __init__(self, condition_dim: int, noise_dim: int, horizon: int,
                 hidden: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.body = Sequential(
            Linear(condition_dim + noise_dim, hidden, rng=rng),
            ReLU(),
            Linear(hidden, hidden, rng=rng),
            ReLU(),
            Linear(hidden, horizon, rng=rng),
        )

    def forward(self, noise: Tensor, condition: Tensor) -> Tensor:
        return self.body(concatenate([noise, condition], axis=-1))


class _Discriminator(Module):
    """MLP: [condition || candidate future] -> real probability."""

    def __init__(self, condition_dim: int, horizon: int, hidden: int,
                 rng: np.random.Generator) -> None:
        super().__init__()
        self.body = Sequential(
            Linear(condition_dim + horizon, hidden, rng=rng),
            ReLU(),
            Linear(hidden, hidden, rng=rng),
            ReLU(),
            Linear(hidden, 1, rng=rng),
        )

    def forward(self, condition: Tensor, candidate: Tensor) -> Tensor:
        logits = self.body(concatenate([condition, candidate], axis=-1))
        return logits.sigmoid()


class _GEGANProgram(TrainingProgram):
    """Adversarial two-optimiser step under the shared Trainer.

    The default single-optimiser ``train_batch`` does not fit a GAN, so
    this program overrides it: each epoch draws one conditioned batch,
    steps the discriminator on real-vs-generated futures, then steps the
    generator against the updated discriminator (+ auxiliary L2).  The
    reported epoch loss is the generator's, matching the pre-engine
    history.
    """

    def __init__(self, forecaster: "GEGANForecaster", usable: int,
                 train_steps: np.ndarray) -> None:
        self.forecaster = forecaster
        self.network = forecaster.generator
        self.g_opt = Adam(forecaster.generator.parameters(), lr=forecaster.learning_rate)
        self.d_opt = Adam(forecaster.discriminator.parameters(), lr=forecaster.learning_rate)
        self.usable = usable
        self.train_steps = train_steps
        self.ones = Tensor(np.ones((forecaster.batch_size, 1)))
        self.zeros = Tensor(np.zeros((forecaster.batch_size, 1)))

    def batches(self, epoch: int, rng: np.random.Generator | None):
        forecaster = self.forecaster
        spec = forecaster.spec
        observed = forecaster.split.observed
        targets = rng.choice(observed, size=forecaster.batch_size, replace=True)
        starts = rng.integers(0, self.usable + 1, size=forecaster.batch_size)
        conditions, futures = [], []
        for target, s in zip(targets, starts):
            begin = int(self.train_steps[0]) + int(s)
            sims = forecaster._similar[int(target)]
            window = forecaster._scaled[begin : begin + spec.input_length][:, sims]
            conditions.append(window.T.ravel())
            futures.append(
                forecaster._scaled[begin + spec.input_length : begin + spec.total, int(target)]
            )
        condition = Tensor(np.stack(conditions, axis=0))
        real = Tensor(np.stack(futures, axis=0))
        noise = Tensor(rng.normal(size=(forecaster.batch_size, forecaster.noise_dim)))
        yield condition, real, noise

    def train_batch(self, batch, rng: np.random.Generator | None) -> float:
        forecaster = self.forecaster
        condition, real, noise = batch

        # Discriminator step.
        self.d_opt.zero_grad()
        fake = forecaster.generator(noise, condition).detach()
        d_loss = bce_loss(forecaster.discriminator(condition, real), self.ones) + bce_loss(
            forecaster.discriminator(condition, Tensor(fake.numpy())), self.zeros
        )
        d_loss.backward()
        self.d_opt.step()

        # Generator step: fool D + auxiliary L2.
        self.g_opt.zero_grad()
        generated = forecaster.generator(noise, condition)
        g_loss = bce_loss(forecaster.discriminator(condition, generated), self.ones)
        g_loss = g_loss + forecaster.l2_weight * mse_loss(generated, real)
        g_loss.backward()
        self.g_opt.step()
        return g_loss.item()


class GEGANForecaster(Forecaster):
    """GE-GAN adapted to forecast an unobserved region.

    Parameters
    ----------
    num_similar:
        How many similar observed locations condition the generator.
    noise_dim / hidden:
        Generator noise width and MLP hidden width.
    iterations:
        Adversarial training steps (each trains D then G on a batch).
    l2_weight:
        Weight of the generator's auxiliary L2 term.
    """

    #: predict() reseeds its noise generator per call, so a window's
    #: output depends on its position in the batch — the serving layer
    #: must not coalesce GE-GAN windows.
    stateless_predict = False

    def __init__(
        self,
        num_similar: int = 4,
        noise_dim: int = 8,
        hidden: int = 64,
        iterations: int = 300,
        batch_size: int = 32,
        learning_rate: float = 0.002,
        l2_weight: float = 0.3,
        embedding_dim: int = 16,
        seed: int = 0,
    ) -> None:
        self.num_similar = num_similar
        self.noise_dim = noise_dim
        self.hidden = hidden
        self.iterations = iterations
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.l2_weight = l2_weight
        self.embedding_dim = embedding_dim
        self.seed = seed
        self.name = "GE-GAN"
        self._fitted = False

    def fit(self, dataset, split, spec, train_steps) -> FitReport:
        began = time.perf_counter()
        rng = np.random.default_rng(self.seed)
        self.dataset = dataset
        self.split = split
        self.spec = spec
        observed = split.observed

        self.scaler = StandardScaler().fit(dataset.values[train_steps][:, observed])
        self._scaled = self.scaler.transform(dataset.values)

        # Transductive graph embedding over the full graph.
        distances = euclidean_distance_matrix(dataset.coords)
        adjacency = gaussian_kernel_adjacency(distances, threshold=0.05)
        self._embeddings = spectral_embedding(adjacency, dim=self.embedding_dim)
        self._similar = {
            int(node): most_similar_nodes(
                self._embeddings, int(node), observed, self.num_similar
            )
            for node in range(dataset.num_locations)
        }

        condition_dim = self.num_similar * spec.input_length
        weight_rng = init.default_rng(self.seed)
        self.generator = _Generator(
            condition_dim, self.noise_dim, spec.horizon, self.hidden, weight_rng
        )
        self.discriminator = _Discriminator(
            condition_dim, spec.horizon, self.hidden, weight_rng
        )
        usable = len(train_steps) - spec.total
        if usable < 1:
            raise ValueError("training period too short for the window spec")

        program = _GEGANProgram(self, usable, train_steps)
        history = Trainer(program, max_epochs=self.iterations, rng=rng).fit()

        self._fitted = True
        return FitReport(
            train_seconds=time.perf_counter() - began,
            epochs=self.iterations,
            history=list(history.train_losses),
        )

    def predict(self, window_starts: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("predict() called before fit()")
        spec = self.spec
        unobserved = self.split.unobserved
        rng = np.random.default_rng(self.seed + 1)
        window_starts = np.asarray(window_starts, dtype=int)
        out = np.empty((len(window_starts), spec.horizon, len(unobserved)))
        with no_grad():
            for row, s in enumerate(window_starts):
                conditions = []
                for target in unobserved:
                    sims = self._similar[int(target)]
                    window = self._scaled[s : s + spec.input_length][:, sims]
                    conditions.append(window.T.ravel())
                condition = Tensor(np.stack(conditions, axis=0))
                noise = Tensor(rng.normal(size=(len(unobserved), self.noise_dim)))
                generated = self.generator(noise, condition).numpy()  # (N_u, T')
                out[row] = self.scaler.inverse_transform(generated.T)
        return out
