"""IGNNK baseline (Wu, Zhuang, Labbe & Sun, AAAI 2021), adapted.

Inductive Graph Neural Network for Kriging: three diffusion graph
convolution (D-GCN) layers treat the time window as the node feature
vector, with random node sampling + random masking during training so the
model learns to reconstruct signals at unseen nodes.

Adaptation (paper §5.1.3): the original reconstructs the *input* window;
here the training target is the *future* window, turning imputation into
forecasting.  Everything else (diffusion convolution over forward/backward
transition matrices, random sub-sampling and masking) follows the original
design.

The paper's finding to reproduce: IGNNK "struggles in our task because
data missing at continuous locations makes it difficult for the GNNs to
learn the spatial correlation patterns" — random scattered masking at
training does not match a contiguous unobserved region at test time.
"""

from __future__ import annotations

import time

import numpy as np

from ..autograd import Tensor, no_grad
from ..data.scalers import StandardScaler
from ..engine import Trainer, TrainingProgram
from ..graph.distances import euclidean_distance_matrix
from ..interfaces import FitReport, Forecaster
from ..nn import Module, init, mse_loss
from ..nn.module import Parameter
from ..optim import Adam

__all__ = ["DiffusionGCN", "IGNNKNetwork", "IGNNKForecaster"]


def _transition_matrices(adjacency: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Forward and backward random-walk transition matrices."""
    adjacency = np.asarray(adjacency, dtype=float)
    out_deg = adjacency.sum(axis=1, keepdims=True)
    in_deg = adjacency.sum(axis=0, keepdims=True)
    forward = adjacency / np.maximum(out_deg, 1e-12)
    backward = (adjacency / np.maximum(in_deg, 1e-12)).T
    return forward, backward


class DiffusionGCN(Module):
    """One D-GCN layer: K-step diffusion over forward+backward walks.

    ``out = sum_{k=0..K-1} P_f^k Z W_f^k + P_b^k Z W_b^k`` with learned
    per-step weights (Li et al. 2018 diffusion convolution, as used by
    IGNNK).
    """

    def __init__(self, in_dim: int, out_dim: int, diffusion_steps: int = 2,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng if rng is not None else init.default_rng()
        self.diffusion_steps = diffusion_steps
        self.weights_forward = [
            Parameter(init.xavier_uniform((in_dim, out_dim), rng), name=f"wf{k}")
            for k in range(diffusion_steps)
        ]
        self.weights_backward = [
            Parameter(init.xavier_uniform((in_dim, out_dim), rng), name=f"wb{k}")
            for k in range(diffusion_steps)
        ]
        for index, param in enumerate(self.weights_forward):
            self._parameters[f"wf{index}"] = param
        for index, param in enumerate(self.weights_backward):
            self._parameters[f"wb{index}"] = param
        self.bias = Parameter(init.zeros((out_dim,)), name="bias")

    def forward(self, forward_t: Tensor, backward_t: Tensor, features: Tensor) -> Tensor:
        out = features @ self.weights_forward[0] + features @ self.weights_backward[0]
        walk_f, walk_b = features, features
        for k in range(1, self.diffusion_steps):
            walk_f = forward_t @ walk_f
            walk_b = backward_t @ walk_b
            out = out + walk_f @ self.weights_forward[k] + walk_b @ self.weights_backward[k]
        return out + self.bias


class IGNNKNetwork(Module):
    """Three stacked D-GCN layers with a residual middle block."""

    def __init__(self, input_length: int, horizon: int, hidden: int = 32,
                 diffusion_steps: int = 2, seed: int = 0) -> None:
        super().__init__()
        rng = init.default_rng(seed)
        self.layer1 = DiffusionGCN(input_length, hidden, diffusion_steps, rng=rng)
        self.layer2 = DiffusionGCN(hidden, hidden, diffusion_steps, rng=rng)
        self.layer3 = DiffusionGCN(hidden, horizon, diffusion_steps, rng=rng)

    def forward(self, forward_t: Tensor, backward_t: Tensor, features: Tensor) -> Tensor:
        hidden = self.layer1(forward_t, backward_t, features).relu()
        hidden = (self.layer2(forward_t, backward_t, hidden) + hidden).relu()
        return self.layer3(forward_t, backward_t, hidden)


class _IGNNKProgram(TrainingProgram):
    """One IGNNK training iteration per engine epoch.

    Each epoch draws a random observed sub-graph, masks a fraction of its
    nodes, and reconstructs the future window — IGNNK's random-sampling
    recipe expressed as a single-batch epoch.
    """

    def __init__(self, forecaster: "IGNNKForecaster", kernel_obs: np.ndarray,
                 sample_nodes: int, usable: int, train_steps: np.ndarray) -> None:
        self.forecaster = forecaster
        self.network = forecaster.network
        self.optimiser = Adam(self.network.parameters(), lr=forecaster.learning_rate)
        self.grad_clip = 5.0
        self.kernel_obs = kernel_obs
        self.sample_nodes = sample_nodes
        self.usable = usable
        self.train_steps = train_steps

    def batches(self, epoch: int, rng: np.random.Generator | None):
        forecaster = self.forecaster
        spec = forecaster.spec
        observed = forecaster.split.observed
        n_obs = len(observed)
        node_subset = rng.choice(n_obs, size=self.sample_nodes, replace=False)
        node_subset.sort()
        sub_kernel = self.kernel_obs[np.ix_(node_subset, node_subset)]
        forward_np, backward_np = _transition_matrices(sub_kernel)
        num_masked = max(1, int(round(forecaster.mask_ratio * self.sample_nodes)))
        masked_local = rng.choice(self.sample_nodes, size=num_masked, replace=False)

        starts = rng.integers(0, self.usable + 1, size=forecaster.batch_windows)
        xs, ys = [], []
        for s in starts:
            begin = int(self.train_steps[0]) + int(s)
            window = forecaster._scaled[begin : begin + spec.input_length][:, observed[node_subset]]
            target = forecaster._scaled[
                begin + spec.input_length : begin + spec.total
            ][:, observed[node_subset]]
            window = window.copy()
            window[:, masked_local] = 0.0
            xs.append(window.T)  # (nodes, T)
            ys.append(target.T)  # (nodes, T')
        yield (
            Tensor(forward_np),
            Tensor(backward_np),
            Tensor(np.stack(xs, axis=0)),
            Tensor(np.stack(ys, axis=0)),
        )

    def compute_loss(self, batch, rng: np.random.Generator | None):
        forward_t, backward_t, x, y = batch
        return mse_loss(self.network(forward_t, backward_t, x), y)


class IGNNKForecaster(Forecaster):
    """IGNNK adapted to forecast an unobserved region.

    Parameters
    ----------
    hidden:
        D-GCN hidden width.
    diffusion_steps:
        K — diffusion walk length per layer.
    sample_nodes:
        Nodes per random training sub-graph (IGNNK's n_o + n_m).
    mask_ratio:
        Fraction of sampled nodes masked (zeroed) per iteration.
    iterations:
        Training batches (each draws a fresh sub-graph and windows).
    """

    def __init__(
        self,
        hidden: int = 32,
        diffusion_steps: int = 2,
        sample_nodes: int | None = None,
        mask_ratio: float = 0.5,
        iterations: int = 150,
        batch_windows: int = 8,
        learning_rate: float = 0.005,
        sigma_ratio: float = 0.1,
        seed: int = 0,
    ) -> None:
        self.hidden = hidden
        self.diffusion_steps = diffusion_steps
        self.sample_nodes = sample_nodes
        self.mask_ratio = mask_ratio
        self.iterations = iterations
        self.batch_windows = batch_windows
        self.learning_rate = learning_rate
        self.sigma_ratio = sigma_ratio
        self.seed = seed
        self.name = "IGNNK"
        self._fitted = False

    def _kernel_adjacency(self, coords: np.ndarray) -> np.ndarray:
        distances = euclidean_distance_matrix(coords)
        off = distances[~np.eye(len(distances), dtype=bool)]
        sigma = max(float(off.std()), 1e-9)
        kernel = np.exp(-(distances ** 2) / (sigma ** 2))
        kernel[kernel < self.sigma_ratio] = 0.0
        return kernel

    def fit(self, dataset, split, spec, train_steps) -> FitReport:
        began = time.perf_counter()
        rng = np.random.default_rng(self.seed)
        self.dataset = dataset
        self.split = split
        self.spec = spec
        observed = split.observed
        n_obs = len(observed)

        self.scaler = StandardScaler().fit(dataset.values[train_steps][:, observed])
        self._scaled = self.scaler.transform(dataset.values)
        self._kernel_full = self._kernel_adjacency(dataset.coords)
        kernel_obs = self._kernel_full[np.ix_(observed, observed)]

        self.network = IGNNKNetwork(
            spec.input_length, spec.horizon, hidden=self.hidden,
            diffusion_steps=self.diffusion_steps, seed=self.seed,
        )

        sample_nodes = self.sample_nodes or max(4, int(0.75 * n_obs))
        sample_nodes = min(sample_nodes, n_obs)
        usable = len(train_steps) - spec.total
        if usable < 1:
            raise ValueError("training period too short for the window spec")

        program = _IGNNKProgram(self, kernel_obs, sample_nodes, usable, train_steps)
        history = Trainer(program, max_epochs=self.iterations, rng=rng).fit()

        # Precompute full-graph transitions for prediction.
        forward_np, backward_np = _transition_matrices(self._kernel_full)
        self._forward_full = Tensor(forward_np)
        self._backward_full = Tensor(backward_np)
        self._fitted = True
        return FitReport(
            train_seconds=time.perf_counter() - began,
            epochs=self.iterations,
            history=list(history.train_losses),
        )

    def predict(self, window_starts: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("predict() called before fit()")
        spec = self.spec
        unobserved = self.split.unobserved
        outputs = []
        with no_grad():
            for begin in range(0, len(window_starts), 16):
                batch = np.asarray(window_starts, dtype=int)[begin : begin + 16]
                xs = []
                for s in batch:
                    window = self._scaled[s : s + spec.input_length].copy()
                    window[:, unobserved] = 0.0
                    xs.append(window.T)
                x = Tensor(np.stack(xs, axis=0))
                prediction = self.network(self._forward_full, self._backward_full, x)
                block = prediction.numpy()[:, unobserved, :].transpose(0, 2, 1)
                outputs.append(self.scaler.inverse_transform(block))
        return np.concatenate(outputs, axis=0)
