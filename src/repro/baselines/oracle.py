"""Oracle reference: a forecaster that *sees* the unobserved region's history.

Not a baseline from the paper — a diagnostic upper reference.  It fits the
same STSM network but with the test region's historical data available
(classic forecasting with complete data), so the gap between the oracle
and real STSM quantifies how much accuracy the *missing-region* condition
itself costs, separating it from plain forecasting difficulty.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.config import STSMConfig
from ..core.model import STSMForecaster
from ..data.splits import SpaceSplit
from ..interfaces import FitReport, Forecaster

__all__ = ["OracleForecaster"]


class OracleForecaster(Forecaster):
    """STSM trained with the unobserved region's history revealed.

    Implementation: rewrites the split so every location is observed
    (train = everything except a token validation strip), fits a standard
    STSM, and at prediction time reads the (now-observed) test columns.
    """

    def __init__(self, config: STSMConfig | None = None) -> None:
        self.config = (config if config is not None else STSMConfig()).replace(
            selective_masking=False, contrastive=False
        )
        self.name = "Oracle-STSM"
        self._inner: STSMForecaster | None = None

    def fit(self, dataset, split, spec, train_steps) -> FitReport:
        began = time.perf_counter()
        self._target_index = split.unobserved
        n = dataset.num_locations
        everything = np.arange(n)
        num_val = max(1, n // 10)
        oracle_split = SpaceSplit(
            train=everything[num_val:],
            validation=everything[:num_val],
            test=np.array([], dtype=int),
            name="oracle",
        )
        # An empty test set breaks downstream index maths; use a 1-element
        # sentinel region instead (the farthest-east location), which stays
        # out of the loss focus but keeps the pipeline uniform.
        sentinel = np.array([int(np.argmax(dataset.coords[:, 0]))])
        remaining = np.setdiff1d(everything, sentinel)
        oracle_split = SpaceSplit(
            train=remaining[num_val:],
            validation=remaining[:num_val],
            test=sentinel,
            name="oracle",
        )
        self._inner = STSMForecaster(self.config, name=self.name)
        report = self._inner.fit(dataset, oracle_split, spec, train_steps)
        report.train_seconds = time.perf_counter() - began
        return report

    def predict(self, window_starts: np.ndarray) -> np.ndarray:
        if self._inner is None:
            raise RuntimeError("predict() called before fit()")
        inner = self._inner
        spec = inner.spec
        cfg = inner.config
        steps_per_day = inner.dataset.steps_per_day
        from ..autograd import Tensor, no_grad
        from ..temporal import normalised_time_encoding

        inner.network.eval()
        outputs = []
        with no_grad():
            for begin in range(0, len(window_starts), cfg.batch_size):
                batch = np.asarray(window_starts)[begin : begin + cfg.batch_size]
                xs, tes = [], []
                for s in batch:
                    xs.append(inner._filled_full[int(s) : int(s) + spec.input_length])
                    ids = (int(s) + np.arange(spec.input_length)) % steps_per_day
                    tes.append(normalised_time_encoding(ids, steps_per_day))
                x = Tensor(np.stack(xs, axis=0)[..., None])
                te = Tensor(np.stack(tes, axis=0)[..., None])
                predictions, _z = inner.network(x, te, inner._a_s_test_t, inner._a_dtw_test_t)
                scaled = predictions.numpy()[..., 0][:, :, self._target_index]
                outputs.append(inner.scaler.inverse_transform(scaled))
        return np.concatenate(outputs, axis=0)
