"""1-hop sub-graph extraction (paper §3.3).

A location's sub-graph is the location plus its 1-hop neighbours under the
``A_sg`` adjacency.  Both masking strategies (random and selective) mask
whole sub-graphs to simulate a *contiguous* unobserved region.
"""

from __future__ import annotations

import numpy as np

__all__ = ["one_hop_subgraph", "all_subgraphs", "mean_subgraph_size"]


def one_hop_subgraph(adjacency: np.ndarray, node: int) -> np.ndarray:
    """Return sorted node indices of ``node`` and its 1-hop neighbours."""
    adjacency = np.asarray(adjacency)
    n = len(adjacency)
    if not 0 <= node < n:
        raise IndexError(f"node {node} out of range for {n}-node graph")
    neighbours = np.flatnonzero(adjacency[node] != 0)
    members = np.union1d(neighbours, [node])
    return members.astype(int)


def all_subgraphs(adjacency: np.ndarray) -> list[np.ndarray]:
    """Sub-graph membership for every node (index ``i`` -> members of SG_i)."""
    return [one_hop_subgraph(adjacency, node) for node in range(len(adjacency))]


def mean_subgraph_size(adjacency: np.ndarray) -> float:
    """Average sub-graph size δ_s = mean_i |V_SGi| (paper §4.1)."""
    sizes = [len(members) for members in all_subgraphs(adjacency)]
    return float(np.mean(sizes)) if sizes else 0.0
