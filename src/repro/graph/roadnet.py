"""Road-network representation and road-network distances.

Backs two parts of the reproduction:

* the synthetic city generator places sensors and POIs on this network and
  derives per-sensor road attributes (highway_level, maxspeed, oneway,
  lanes) that feed the selective-masking features (paper §4.1);
* the STSM-rd-a / STSM-rd-m variants (paper §5.2.6, Table 11) replace
  Euclidean distances with shortest-path road distances computed here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

__all__ = ["RoadSegmentAttributes", "RoadNetwork"]

#: Ordered highway levels, most to least important.  The integer level is
#: the index in this tuple (0 = motorway).
HIGHWAY_LEVELS = ("motorway", "trunk", "primary", "secondary", "residential")

#: Default speed limits (km/h) per highway level, used by the simulator.
DEFAULT_MAXSPEED = {
    "motorway": 110.0,
    "trunk": 100.0,
    "primary": 70.0,
    "secondary": 60.0,
    "residential": 40.0,
}


@dataclass
class RoadSegmentAttributes:
    """The 4-dimensional road feature vector of paper §4.1.

    ``l_road = [highway_level, maxspeed, is_oneway, lanes]``.
    """

    highway_level: int
    maxspeed: float
    is_oneway: bool
    lanes: int

    def as_vector(self) -> np.ndarray:
        """Return the 4-d numeric vector."""
        return np.array(
            [float(self.highway_level), self.maxspeed, float(self.is_oneway), float(self.lanes)]
        )


@dataclass
class RoadNetwork:
    """An undirected road graph with segment attributes and geometry.

    Attributes
    ----------
    graph:
        networkx graph whose nodes carry ``pos`` (x, y) and whose edges carry
        ``length`` plus a :class:`RoadSegmentAttributes` under ``attributes``.
    """

    graph: nx.Graph = field(default_factory=nx.Graph)

    def add_intersection(self, node_id, position: tuple[float, float]) -> None:
        """Add an intersection node with planar coordinates."""
        self.graph.add_node(node_id, pos=(float(position[0]), float(position[1])))

    def add_segment(self, u, v, attributes: RoadSegmentAttributes) -> None:
        """Add a road segment; length is the Euclidean node distance."""
        pu = np.asarray(self.graph.nodes[u]["pos"])
        pv = np.asarray(self.graph.nodes[v]["pos"])
        length = float(np.linalg.norm(pu - pv))
        self.graph.add_edge(u, v, length=length, attributes=attributes)

    def node_positions(self) -> dict:
        """Map node id -> (x, y)."""
        return {n: d["pos"] for n, d in self.graph.nodes(data=True)}

    def nearest_node(self, point: tuple[float, float]):
        """Return the node id closest to ``point`` in Euclidean distance."""
        positions = self.node_positions()
        if not positions:
            raise ValueError("road network has no nodes")
        items = list(positions.items())
        coords = np.array([p for _n, p in items])
        deltas = coords - np.asarray(point, dtype=float)
        index = int(np.argmin((deltas ** 2).sum(axis=1)))
        return items[index][0]

    def nearest_segment_attributes(self, point: tuple[float, float]) -> RoadSegmentAttributes:
        """Attributes of the road segment nearest to ``point``.

        The paper selects "the nearest road of the location" to build the
        4-d road vector; here we take the best-attributed edge incident to
        the nearest intersection (segments are short in the synthetic city,
        so this matches point-to-segment search to within a block).
        """
        node = self.nearest_node(point)
        edges = list(self.graph.edges(node, data=True))
        if not edges:
            raise ValueError(f"node {node} has no incident road segments")
        # Prefer the most important road touching this intersection.
        best = min(edges, key=lambda e: e[2]["attributes"].highway_level)
        return best[2]["attributes"]

    def shortest_path_distance_matrix(self, points: np.ndarray) -> np.ndarray:
        """Road-network distances between all pairs of ``points``.

        Each point snaps to its nearest intersection; distances are
        shortest-path sums of segment lengths (Dijkstra).  Disconnected
        pairs get ``inf``.
        """
        points = np.asarray(points, dtype=float)
        snapped = [self.nearest_node(tuple(p)) for p in points]
        unique_nodes = sorted(set(snapped), key=str)
        lengths: dict = {}
        for source in unique_nodes:
            lengths[source] = nx.single_source_dijkstra_path_length(
                self.graph, source, weight="length"
            )
        n = len(points)
        out = np.full((n, n), np.inf)
        for i in range(n):
            row = lengths[snapped[i]]
            for j in range(n):
                out[i, j] = row.get(snapped[j], np.inf)
        np.fill_diagonal(out, 0.0)
        return out
