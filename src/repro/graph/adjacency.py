"""Adjacency-matrix construction and normalisation.

Implements the paper's Eq. 2 (Gaussian-kernel thresholded adjacency) used
both for the model's spatial matrix ``A_s`` (threshold ε_s = 0.05) and the
sub-graph matrix ``A_sg`` (per-dataset ε_sg, Table 3), and the symmetric
GCN normalisation of Eq. 6.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "gaussian_kernel_adjacency",
    "gcn_normalise",
    "row_normalise",
    "adjacency_density",
]


def gaussian_kernel_adjacency(
    distances: np.ndarray,
    threshold: float,
    sigma: float | None = None,
    self_loops: bool = False,
) -> np.ndarray:
    """Binary adjacency from distances via the paper's Eq. 2.

    ``A[i, j] = 1`` iff ``exp(-dist(i, j)^2 / sigma^2) >= threshold``.

    Parameters
    ----------
    distances:
        ``(N, N)`` pairwise distance matrix.
    threshold:
        ε in Eq. 2 — larger thresholds keep fewer, closer pairs.
    sigma:
        Kernel bandwidth.  Defaults to the standard deviation of the
        distance entries, the common choice in DCRNN-style pipelines.
    self_loops:
        Whether to keep the diagonal (the kernel value there is 1, so the
        diagonal always passes the threshold; setting False zeroes it).
    """
    distances = np.asarray(distances, dtype=float)
    if distances.shape[0] != distances.shape[1]:
        raise ValueError(f"distances must be square, got {distances.shape}")
    if not 0.0 < threshold <= 1.0:
        raise ValueError(f"threshold must be in (0, 1], got {threshold}")
    if sigma is None:
        off_diag = distances[~np.eye(len(distances), dtype=bool)]
        sigma = float(off_diag.std()) if off_diag.size else 1.0
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    kernel = np.exp(-(distances ** 2) / (sigma ** 2))
    adjacency = (kernel >= threshold).astype(float)
    if not self_loops:
        np.fill_diagonal(adjacency, 0.0)
    return adjacency


def gcn_normalise(adjacency: np.ndarray) -> np.ndarray:
    """Symmetric GCN normalisation ``D^-1/2 (A + I) D^-1/2`` (Eq. 6)."""
    adjacency = np.asarray(adjacency, dtype=float)
    a_tilde = adjacency + np.eye(len(adjacency))
    degrees = a_tilde.sum(axis=1)
    inv_sqrt = 1.0 / np.sqrt(np.maximum(degrees, 1e-12))
    return a_tilde * inv_sqrt[:, None] * inv_sqrt[None, :]


def row_normalise(adjacency: np.ndarray) -> np.ndarray:
    """Row-stochastic normalisation ``D^-1 A`` (used by diffusion GCNs)."""
    adjacency = np.asarray(adjacency, dtype=float)
    degrees = adjacency.sum(axis=1, keepdims=True)
    return adjacency / np.maximum(degrees, 1e-12)


def adjacency_density(adjacency: np.ndarray) -> float:
    """Fraction of non-zero off-diagonal entries (Fig. 7's sparsity view)."""
    adjacency = np.asarray(adjacency)
    n = len(adjacency)
    if n < 2:
        return 0.0
    off = adjacency.copy()
    np.fill_diagonal(off, 0.0)
    return float((off != 0).sum()) / (n * (n - 1))
