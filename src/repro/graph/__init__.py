"""Spatial graph utilities: distances, adjacency construction, sub-graphs,
and the road-network substrate used by the synthetic city and the
road-distance model variants."""

from .adjacency import (
    adjacency_density,
    gaussian_kernel_adjacency,
    gcn_normalise,
    row_normalise,
)
from .distances import (
    euclidean_distance_matrix,
    haversine_distance_matrix,
    pairwise_distances,
)
from .roadnet import HIGHWAY_LEVELS, DEFAULT_MAXSPEED, RoadNetwork, RoadSegmentAttributes
from .subgraph import all_subgraphs, mean_subgraph_size, one_hop_subgraph

__all__ = [
    "gaussian_kernel_adjacency",
    "gcn_normalise",
    "row_normalise",
    "adjacency_density",
    "euclidean_distance_matrix",
    "haversine_distance_matrix",
    "pairwise_distances",
    "RoadNetwork",
    "RoadSegmentAttributes",
    "HIGHWAY_LEVELS",
    "DEFAULT_MAXSPEED",
    "one_hop_subgraph",
    "all_subgraphs",
    "mean_subgraph_size",
]
