"""Pairwise spatial distance computations.

The paper uses Euclidean distance between sensor geo-coordinates "for
efficiency considerations" (§3.3) and evaluates road-network distance as an
alternative (§5.2.6, Table 11).  Haversine is provided for presets whose
coordinates are latitude/longitude degrees.
"""

from __future__ import annotations

import numpy as np

__all__ = ["euclidean_distance_matrix", "haversine_distance_matrix", "pairwise_distances"]

EARTH_RADIUS_M = 6_371_000.0


def euclidean_distance_matrix(coords: np.ndarray) -> np.ndarray:
    """All-pairs Euclidean distances for ``(N, 2)`` planar coordinates."""
    coords = np.asarray(coords, dtype=float)
    if coords.ndim != 2:
        raise ValueError(f"coords must be (N, d), got shape {coords.shape}")
    diff = coords[:, None, :] - coords[None, :, :]
    return np.sqrt((diff ** 2).sum(axis=-1))


def haversine_distance_matrix(latlon: np.ndarray) -> np.ndarray:
    """All-pairs great-circle distances in metres for ``(N, 2)`` (lat, lon) degrees."""
    latlon = np.radians(np.asarray(latlon, dtype=float))
    lat = latlon[:, 0][:, None]
    lon = latlon[:, 1][:, None]
    dlat = lat - lat.T
    dlon = lon - lon.T
    a = np.sin(dlat / 2) ** 2 + np.cos(lat) * np.cos(lat.T) * np.sin(dlon / 2) ** 2
    return 2 * EARTH_RADIUS_M * np.arcsin(np.sqrt(np.clip(a, 0.0, 1.0)))


def pairwise_distances(coords: np.ndarray, metric: str = "euclidean") -> np.ndarray:
    """Dispatch to the requested distance metric ("euclidean" or "haversine")."""
    if metric == "euclidean":
        return euclidean_distance_matrix(coords)
    if metric == "haversine":
        return haversine_distance_matrix(coords)
    raise ValueError(f"unknown metric {metric!r}; expected 'euclidean' or 'haversine'")
