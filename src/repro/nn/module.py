"""Neural network module base classes.

Provides the ``Parameter`` / ``Module`` abstractions that every layer and
model in this repository builds on, mirroring the small subset of
``torch.nn.Module`` behaviour the paper's implementation relies on:
recursive parameter collection, train/eval mode, and state dictionaries.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from ..autograd import Tensor
from ..backend import get_backend

__all__ = ["Parameter", "Module", "Sequential", "ModuleList"]


class Parameter(Tensor):
    """A tensor that is registered as a learnable module parameter."""

    def __init__(self, data, name: str | None = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class with recursive parameter/submodule registration.

    Subclasses assign ``Parameter`` and ``Module`` instances as attributes;
    registration happens automatically through ``__setattr__``.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Parameter access
    # ------------------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        """Yield all parameters of this module and its submodules."""
        for _name, param in self.named_parameters():
            yield param

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth-first."""
        for name, param in self._parameters.items():
            yield f"{prefix}{name}", param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all submodules, depth-first."""
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        """Clear gradients of all parameters."""
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # Train / eval mode
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects dropout etc.)."""
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        return self.train(False)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        """Return host numpy copies of all parameters, keyed by dotted names.

        Always numpy — never backend-native tensors — so checkpoints,
        ``.npz`` bundles and store-scope hashes are identical regardless
        of the backend (and device) a model was trained on, and a state
        saved under one backend loads under any other.
        """
        backend = get_backend()
        return OrderedDict(
            (name, np.array(backend.to_numpy(param.data), copy=True))
            for name, param in self.named_parameters()
        )

    def load_state_dict(self, state: dict) -> None:
        """Load parameter arrays produced by :meth:`state_dict`."""
        backend = get_backend()
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, values in state.items():
            param = own[name]
            values = backend.asarray(values, dtype=param.data.dtype)
            if values.shape != param.shape:
                raise ValueError(f"shape mismatch for {name}: {values.shape} vs {param.shape}")
            backend.copyto(param.data, values)

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        lines = [f"{type(self).__name__}("]
        for name, module in self._modules.items():
            inner = repr(module).replace("\n", "\n  ")
            lines.append(f"  ({name}): {inner}")
        lines.append(")")
        return "\n".join(lines) if self._modules else f"{type(self).__name__}()"


class Sequential(Module):
    """Chain modules, feeding each output into the next module."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = ModuleList(layers)

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x


class ModuleList(Module):
    """A list container that registers contained modules."""

    def __init__(self, modules=()) -> None:
        super().__init__()
        self._items: list[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> None:
        index = len(self._items)
        self._items.append(module)
        self._modules[str(index)] = module

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]
