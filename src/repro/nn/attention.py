"""Attention layers: scaled dot-product, multi-head, transformer encoder.

Used by the STSM-trans variant (paper §5.2.5): the 1-D TCN temporal module
is replaced by a transformer encoder, with a gated fusion of spatial and
temporal embeddings per block (following GMAN, Zheng et al. AAAI 2020).
"""

from __future__ import annotations

import math

import numpy as np

from ..autograd import Tensor, concatenate, softmax
from ..backend import get_backend
from . import init
from .layers import Dropout, Linear
from .layers import LayerNorm
from .module import Module

__all__ = ["MultiHeadAttention", "TransformerEncoderLayer", "positional_encoding"]


def positional_encoding(length: int, dim: int) -> np.ndarray:
    """Sinusoidal positional encoding table of shape ``(length, dim)``.

    Built by interleaving stacked sin/cos columns (reshape of a
    ``(length, dim/2, 2)`` stack) rather than strided assignment, so the
    construction uses only ArrayBackend ops.
    """
    b = get_backend()
    half = (dim + 1) // 2
    # Float the int64 aranges explicitly: numpy would promote them to
    # float64 in the multiply below, but torch promotes int tensors to
    # its float32 default — floating first keeps the backends identical.
    position = b.expand_dims(b.to_float_array(b.arange(length)), 1)
    term = b.exp(
        b.multiply(b.to_float_array(b.arange(0, dim, 2)), -math.log(10000.0) / dim)
    )
    angles = b.multiply(position, term)  # (length, ceil(dim/2))
    paired = b.stack([b.sin(angles), b.cos(angles)], axis=2)
    return b.getitem(b.reshape(paired, (length, 2 * half)), (slice(None), slice(0, dim)))


class MultiHeadAttention(Module):
    """Multi-head scaled dot-product self/cross attention.

    Operates on ``(batch, time, dim)``; heads split the feature axis.
    """

    def __init__(
        self,
        dim: int,
        num_heads: int,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} must be divisible by num_heads {num_heads}")
        rng = rng if rng is not None else init.default_rng()
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.query_proj = Linear(dim, dim, rng=rng)
        self.key_proj = Linear(dim, dim, rng=rng)
        self.value_proj = Linear(dim, dim, rng=rng)
        self.out_proj = Linear(dim, dim, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def _split_heads(self, x: Tensor) -> Tensor:
        batch, time, _ = x.shape
        return x.reshape(batch, time, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, query: Tensor, key: Tensor | None = None, value: Tensor | None = None) -> Tensor:
        key = key if key is not None else query
        value = value if value is not None else key
        batch, time_q, _ = query.shape
        q = self._split_heads(self.query_proj(query))
        k = self._split_heads(self.key_proj(key))
        v = self._split_heads(self.value_proj(value))
        scale = 1.0 / math.sqrt(self.head_dim)
        scores = (q @ k.transpose(0, 1, 3, 2)) * scale
        weights = self.dropout(softmax(scores, axis=-1))
        attended = weights @ v  # (batch, heads, time_q, head_dim)
        merged = attended.transpose(0, 2, 1, 3).reshape(batch, time_q, self.dim)
        return self.out_proj(merged)


class TransformerEncoderLayer(Module):
    """Pre-norm transformer encoder block: MHA + position-wise FFN."""

    def __init__(
        self,
        dim: int,
        num_heads: int,
        ffn_dim: int | None = None,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else init.default_rng()
        ffn_dim = ffn_dim if ffn_dim is not None else 2 * dim
        self.attention = MultiHeadAttention(dim, num_heads, dropout=dropout, rng=rng)
        self.norm1 = LayerNorm(dim)
        self.norm2 = LayerNorm(dim)
        self.ffn_in = Linear(dim, ffn_dim, rng=rng)
        self.ffn_out = Linear(ffn_dim, dim, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        attended = self.attention(self.norm1(x))
        x = x + self.dropout(attended)
        hidden = self.ffn_out(self.ffn_in(self.norm2(x)).relu())
        return x + self.dropout(hidden)
