"""Recurrent layers: GRU cell and multi-step GRU.

The INCREASE baseline (Zheng et al., WWW 2023) encodes temporal patterns
with GRUs; DCRNN-style models in the related-work section do the same.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, concatenate, stack
from ..backend import get_backend
from . import init
from .module import Module, Parameter

__all__ = ["GRUCell", "GRU"]


class GRUCell(Module):
    """Single gated recurrent unit step.

    Follows the standard formulation::

        r = sigmoid([x, h] W_r + b_r)
        z = sigmoid([x, h] W_z + b_z)
        n = tanh([x, r * h] W_n + b_n)
        h' = (1 - z) * n + z * h
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng if rng is not None else init.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        joint = input_size + hidden_size
        self.weight_r = Parameter(init.xavier_uniform((joint, hidden_size), rng), name="weight_r")
        self.weight_z = Parameter(init.xavier_uniform((joint, hidden_size), rng), name="weight_z")
        self.weight_n = Parameter(init.xavier_uniform((joint, hidden_size), rng), name="weight_n")
        self.bias_r = Parameter(init.zeros((hidden_size,)), name="bias_r")
        self.bias_z = Parameter(init.zeros((hidden_size,)), name="bias_z")
        self.bias_n = Parameter(init.zeros((hidden_size,)), name="bias_n")

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        joint = concatenate([x, h], axis=-1)
        reset = (joint @ self.weight_r + self.bias_r).sigmoid()
        update = (joint @ self.weight_z + self.bias_z).sigmoid()
        candidate_in = concatenate([x, reset * h], axis=-1)
        candidate = (candidate_in @ self.weight_n + self.bias_n).tanh()
        one = Tensor(get_backend().ones_like(update.data))
        return (one - update) * candidate + update * h


class GRU(Module):
    """Multi-step GRU over ``(batch, time, features)`` sequences.

    Returns the full hidden sequence ``(batch, time, hidden)`` and the final
    hidden state ``(batch, hidden)``.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.cell = GRUCell(input_size, hidden_size, rng=rng)

    def forward(self, x: Tensor, h0: Tensor | None = None) -> tuple[Tensor, Tensor]:
        batch, steps, _features = x.shape
        h = h0 if h0 is not None else Tensor(get_backend().zeros((batch, self.hidden_size)))
        outputs = []
        for t in range(steps):
            h = self.cell(x[:, t, :], h)
            outputs.append(h)
        return stack(outputs, axis=1), h
