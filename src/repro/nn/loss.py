"""Loss functions: MSE, MAE, BCE, and the NT-Xent contrastive loss.

``nt_xent_loss`` implements the paper's Eq. 17: the positive pair is the
(original view, masked view) representation of the *same* time window; the
negatives are masked-view representations from *other* windows in the batch.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, clip_values, concatenate, log_softmax
from ..backend import get_backend

__all__ = ["mse_loss", "mae_loss", "huber_loss", "bce_loss", "cosine_similarity_matrix", "nt_xent_loss"]


def mse_loss(prediction: Tensor, target: Tensor, mask: np.ndarray | None = None) -> Tensor:
    """Mean squared error, optionally restricted to ``mask`` entries.

    Matches the paper's prediction loss (Eq. 14): squared error averaged
    over locations and horizon steps.
    """
    diff = prediction - target
    squared = diff * diff
    if mask is None:
        return squared.mean()
    weights = get_backend().asarray(mask, dtype=float)
    total = get_backend().sum(weights)
    if total == 0:
        raise ValueError("mse_loss mask selects no elements")
    return (squared * Tensor(weights)).sum() * (1.0 / total)


def mae_loss(prediction: Tensor, target: Tensor, mask: np.ndarray | None = None) -> Tensor:
    """Mean absolute error, optionally masked."""
    gap = (prediction - target).abs()
    if mask is None:
        return gap.mean()
    weights = get_backend().asarray(mask, dtype=float)
    total = get_backend().sum(weights)
    if total == 0:
        raise ValueError("mae_loss mask selects no elements")
    return (gap * Tensor(weights)).sum() * (1.0 / total)


def huber_loss(prediction: Tensor, target: Tensor, delta: float = 1.0) -> Tensor:
    """Huber loss: quadratic below ``delta``, linear above (robust MSE).

    Useful on traffic data with incident spikes; provided as a drop-in
    alternative for the prediction loss in extension studies.
    """
    if delta <= 0:
        raise ValueError(f"delta must be positive, got {delta}")
    gap = (prediction - target).abs()
    quadratic = clip_values(gap, 0.0, delta)
    linear = gap - quadratic
    losses = quadratic * quadratic * 0.5 + linear * delta
    return losses.mean()


def bce_loss(probability: Tensor, target: Tensor) -> Tensor:
    """Binary cross entropy on probabilities (clipped for stability).

    Used by the GE-GAN baseline's discriminator objective.
    """
    p = clip_values(probability, 1e-7, 1.0 - 1e-7)
    one = Tensor(get_backend().ones_like(p.data))
    losses = -(target * p.log() + (one - target) * (one - p).log())
    return losses.mean()


def cosine_similarity_matrix(a: Tensor, b: Tensor, eps: float = 1e-8) -> Tensor:
    """Pairwise cosine similarities between rows of ``a`` and rows of ``b``.

    The epsilon sits *inside* the square root: ``sqrt(x)`` has an infinite
    derivative at 0, so an all-zero representation (possible early in
    training on degenerate data) would otherwise inject NaNs through the
    contrastive loss.
    """
    a_norm = ((a * a).sum(axis=-1, keepdims=True) + eps).sqrt()
    b_norm = ((b * b).sum(axis=-1, keepdims=True) + eps).sqrt()
    return (a / a_norm) @ (b / b_norm).transpose()


def nt_xent_loss(anchor: Tensor, positive: Tensor, temperature: float = 0.5) -> Tensor:
    """Normalised-temperature cross-entropy contrastive loss (paper Eq. 17).

    Parameters
    ----------
    anchor:
        ``(batch, dim)`` representations of the original view ``G_o``.
    positive:
        ``(batch, dim)`` representations of the masked view ``G_mo`` for the
        same time windows (row ``i`` of both corresponds to window ``i``).
    temperature:
        Softmax temperature τ (paper default 0.5).

    The loss for window ``i`` treats ``positive[i]`` as the positive sample
    and ``positive[j], j != i`` as negatives, exactly as described after
    Eq. 16 ("graph G_o and graph G_mo from different time slots in a batch
    form negative pairs").
    """
    batch = anchor.shape[0]
    if batch < 2:
        raise ValueError("nt_xent_loss needs at least 2 windows in a batch for negatives")
    sims = cosine_similarity_matrix(anchor, positive) * (1.0 / temperature)
    log_probs = log_softmax(sims, axis=1)
    eye = get_backend().eye(batch)
    positive_terms = (log_probs * Tensor(eye)).sum() * (1.0 / batch)
    return -positive_terms
