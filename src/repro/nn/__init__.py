"""Neural network layers built on :mod:`repro.autograd`.

Replaces the ``torch.nn`` dependency of the original implementation with the
subset of layers STSM and the baselines need.
"""

from .attention import MultiHeadAttention, TransformerEncoderLayer, positional_encoding
from .gat import GraphAttention
from .layers import Conv1d, Dropout, Embedding, Identity, LayerNorm, Linear, ReLU, Sigmoid, Tanh
from .loss import bce_loss, cosine_similarity_matrix, huber_loss, mae_loss, mse_loss, nt_xent_loss
from .module import Module, ModuleList, Parameter, Sequential
from .lstm import LSTM, LSTMCell
from .recurrent import GRU, GRUCell
from . import init

__all__ = [
    "Module",
    "ModuleList",
    "Parameter",
    "Sequential",
    "Linear",
    "Conv1d",
    "Dropout",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Identity",
    "LayerNorm",
    "GRU",
    "GRUCell",
    "LSTM",
    "LSTMCell",
    "Embedding",
    "huber_loss",
    "MultiHeadAttention",
    "TransformerEncoderLayer",
    "positional_encoding",
    "GraphAttention",
    "mse_loss",
    "mae_loss",
    "bce_loss",
    "nt_xent_loss",
    "cosine_similarity_matrix",
    "init",
]
