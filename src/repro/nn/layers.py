"""Basic neural layers: Linear, Conv1d, Dropout, activations, LayerNorm."""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, conv1d, dropout, embedding
from ..backend import get_backend
from . import init
from .module import Module, Parameter

__all__ = ["Linear", "Conv1d", "Dropout", "ReLU", "Sigmoid", "Tanh", "LayerNorm", "Identity", "Embedding"]


class Linear(Module):
    """Affine map ``y = x W + b`` applied to the last axis.

    Parameters
    ----------
    in_features, out_features:
        Input and output dimensionality of the last axis.
    bias:
        Whether to add the learned offset.
    rng:
        Generator for weight initialisation (deterministic default).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else init.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng), name="weight")
        self.bias = Parameter(init.zeros((out_features,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear(in={self.in_features}, out={self.out_features}, bias={self.bias is not None})"


class Conv1d(Module):
    """Dilated 1-D convolution over ``(batch, channels, length)`` inputs.

    This is the temporal-convolution primitive of the paper's TCN (Eq. 5);
    ``padding='same'`` keeps the sequence length unchanged, which the paper
    relies on ("we use zero-padding").
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        dilation: int = 1,
        padding: int | str = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else init.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.dilation = dilation
        if padding == "same":
            effective = (kernel_size - 1) * dilation + 1
            if effective % 2 == 0:
                raise ValueError("'same' padding requires an odd effective kernel size")
            padding = (effective - 1) // 2
        self.padding = int(padding)
        self.weight = Parameter(
            init.xavier_uniform((out_channels, in_channels, kernel_size), rng), name="weight"
        )
        self.bias = Parameter(init.zeros((out_channels,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return conv1d(x, self.weight, self.bias, dilation=self.dilation, padding=self.padding)

    def __repr__(self) -> str:
        return (
            f"Conv1d(in={self.in_channels}, out={self.out_channels}, "
            f"k={self.kernel_size}, dilation={self.dilation}, padding={self.padding})"
        )


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, rate: float = 0.1, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.rate = rate
        self._rng = rng if rng is not None else init.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return dropout(x, self.rate, training=self.training, rng=self._rng)

    def __repr__(self) -> str:
        return f"Dropout(rate={self.rate})"


class ReLU(Module):
    """Rectified linear activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Sigmoid(Module):
    """Logistic activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Identity(Module):
    """Pass-through layer (useful as a configurable no-op)."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class LayerNorm(Module):
    """Layer normalisation over the last axis with learned scale/offset."""

    def __init__(self, features: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.features = features
        self.eps = eps
        self.gamma = Parameter(get_backend().ones(features), name="gamma")
        self.beta = Parameter(get_backend().zeros(features), name="beta")

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centred = x - mean
        variance = (centred * centred).mean(axis=-1, keepdims=True)
        normalised = centred / (variance + self.eps).sqrt()
        return normalised * self.gamma + self.beta

    def __repr__(self) -> str:
        return f"LayerNorm(features={self.features})"


class Embedding(Module):
    """Learned lookup table: integer ids -> dense vectors.

    Provided for extensions that embed discrete features (e.g. learned
    time-of-day embeddings instead of the paper's linear projection).
    """

    def __init__(self, num_embeddings: int, dim: int, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng if rng is not None else init.default_rng()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(
            get_backend().normal(rng, 0.0, 0.1, (num_embeddings, dim)), name="weight"
        )

    def forward(self, indices: np.ndarray) -> Tensor:
        return embedding(self.weight, indices)

    def __repr__(self) -> str:
        return f"Embedding(num={self.num_embeddings}, dim={self.dim})"
