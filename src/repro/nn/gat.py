"""Graph attention layer (Veličković et al., ICLR 2018) — dense-mask form.

An alternative *spatial* module for STSM: where the paper's GCN (Eq. 6)
aggregates neighbours with fixed normalised weights, graph attention
learns per-edge weights from the node features themselves.  The paper
demonstrates STSM's extensibility by swapping the temporal module
(§5.2.5, STSM-trans); :class:`GraphAttention` provides the matching swap
on the spatial side (the ``STSM-gat`` variant).

The implementation is dense: the adjacency pattern arrives as an ``(N, N)``
mask and attention logits on non-edges are pushed to ``-1e9`` before the
softmax.  Dense masking is exact and fast at the paper's graph sizes
(63–964 sensors); a sparse gather/scatter version would only pay off far
beyond that.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, concatenate, leaky_relu, softmax
from ..backend import get_backend
from .module import Module, Parameter
from . import init

__all__ = ["GraphAttention"]

#: Logit offset that zeroes non-edge attention after the softmax.
_MASK_OFFSET = -1e9


class GraphAttention(Module):
    """Multi-head graph attention over a fixed adjacency pattern.

    Parameters
    ----------
    in_dim:
        Input feature width per node.
    out_dim:
        Output width (total across heads; must divide by ``num_heads``).
    num_heads:
        Independent attention heads, concatenated.
    negative_slope:
        LeakyReLU slope on the attention logits (0.2 in the GAT paper).
    include_self:
        Add self-loops to the mask so every node can attend to itself even
        when the adjacency has an empty row (an isolated sensor); without
        this, softmax over an all-masked row returns uniform weights over
        *all* nodes — exactly the leak the mask is meant to prevent.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        num_heads: int = 2,
        negative_slope: float = 0.2,
        include_self: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if out_dim % num_heads != 0:
            raise ValueError(
                f"out_dim {out_dim} must be divisible by num_heads {num_heads}"
            )
        rng = rng if rng is not None else init.default_rng()
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.num_heads = num_heads
        self.head_dim = out_dim // num_heads
        self.negative_slope = negative_slope
        self.include_self = include_self
        self.weight = Parameter(
            init.xavier_uniform((num_heads, in_dim, self.head_dim), rng), name="weight"
        )
        # Split additive attention vector: e_ij = a_src·h_i + a_dst·h_j.
        self.attn_src = Parameter(
            init.xavier_uniform((num_heads, self.head_dim, 1), rng), name="attn_src"
        )
        self.attn_dst = Parameter(
            init.xavier_uniform((num_heads, self.head_dim, 1), rng), name="attn_dst"
        )

    def _mask_offsets(self, adjacency: np.ndarray) -> np.ndarray:
        """``(N, N)`` additive logit offsets: 0 on edges, -1e9 elsewhere."""
        b = get_backend()
        mask = b.greater(b.asarray(adjacency), 0)
        if self.include_self:
            mask = b.logical_or(mask, b.eye(mask.shape[0], dtype=bool))
        return b.where(mask, 0.0, _MASK_OFFSET)

    def forward(self, adjacency: Tensor | np.ndarray, features: Tensor) -> Tensor:
        """Attend over neighbours.

        Parameters
        ----------
        adjacency:
            ``(N, N)``; only its sparsity pattern is used (edge weights are
            learned), so both raw and GCN-normalised matrices work.
        features:
            ``(..., N, in_dim)`` node features with any leading axes.

        Returns
        -------
        ``(..., N, out_dim)`` attended features (heads concatenated).
        """
        adjacency_data = (
            adjacency.numpy() if isinstance(adjacency, Tensor) else get_backend().asarray(adjacency)
        )
        offsets = Tensor(self._mask_offsets(adjacency_data))
        lead = features.ndim - 2
        head_outputs = []
        for head in range(self.num_heads):
            projected = features @ self.weight[head]  # (..., N, head_dim)
            src = projected @ self.attn_src[head]  # (..., N, 1)
            dst = projected @ self.attn_dst[head]  # (..., N, 1)
            # e[..., i, j] = src_i + dst_j  -> transpose dst's last two axes.
            axes = tuple(range(lead)) + (lead + 1, lead)
            logits = leaky_relu(src + dst.transpose(*axes), self.negative_slope)
            weights = softmax(logits + offsets, axis=-1)  # (..., N, N)
            head_outputs.append(weights @ projected)
        if self.num_heads == 1:
            return head_outputs[0]
        return concatenate(head_outputs, axis=-1)

    def attention_weights(
        self, adjacency: Tensor | np.ndarray, features: Tensor
    ) -> np.ndarray:
        """Per-head attention matrices ``(heads, ..., N, N)`` for inspection."""
        adjacency_data = (
            adjacency.numpy() if isinstance(adjacency, Tensor) else get_backend().asarray(adjacency)
        )
        offsets = Tensor(self._mask_offsets(adjacency_data))
        lead = features.ndim - 2
        out = []
        for head in range(self.num_heads):
            projected = features @ self.weight[head]
            src = projected @ self.attn_src[head]
            dst = projected @ self.attn_dst[head]
            axes = tuple(range(lead)) + (lead + 1, lead)
            logits = leaky_relu(src + dst.transpose(*axes), self.negative_slope)
            out.append(softmax(logits + offsets, axis=-1).numpy())
        return get_backend().to_numpy(get_backend().stack(out, axis=0))

    def extra_repr(self) -> str:
        return (
            f"GraphAttention(in={self.in_dim}, out={self.out_dim}, "
            f"heads={self.num_heads})"
        )
