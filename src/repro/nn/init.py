"""Weight initialisation schemes (Glorot / He / uniform)."""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "he_uniform", "uniform", "zeros", "default_rng"]

_DEFAULT_SEED = 0x5757


def default_rng(seed: int | None = None) -> np.random.Generator:
    """Return the repository-wide default RNG (deterministic unless seeded)."""
    return np.random.default_rng(_DEFAULT_SEED if seed is None else seed)


def _fan(shape: tuple[int, ...]) -> tuple[int, int]:
    """Compute (fan_in, fan_out) for dense and convolutional kernels."""
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    # Convolution kernels: (out_channels, in_channels, *spatial)
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive

def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot uniform: U(-a, a) with a = gain * sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fan(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot normal: N(0, gain^2 * 2 / (fan_in + fan_out))."""
    fan_in, fan_out = _fan(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def he_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform for ReLU fan-in scaling."""
    fan_in, _fan_out = _fan(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def uniform(shape: tuple[int, ...], rng: np.random.Generator, bound: float) -> np.ndarray:
    """Plain uniform U(-bound, bound)."""
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero array (bias default)."""
    return np.zeros(shape)
