"""Weight initialisation schemes (Glorot / He / uniform).

Draws go through the active backend's explicit-generator RNG surface so
initialisation is reproducible across backends (``default_rng(seed)``
must yield numpy-compatible draw sequences; see the backend contract).
"""

from __future__ import annotations

import math

from ..backend import get_backend

__all__ = ["xavier_uniform", "xavier_normal", "he_uniform", "uniform", "zeros", "default_rng"]

_DEFAULT_SEED = 0x5757


def default_rng(seed: int | None = None):
    """Return the repository-wide default RNG (deterministic unless seeded)."""
    return get_backend().default_rng(_DEFAULT_SEED if seed is None else seed)


def _fan(shape: tuple[int, ...]) -> tuple[int, int]:
    """Compute (fan_in, fan_out) for dense and convolutional kernels."""
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    # Convolution kernels: (out_channels, in_channels, *spatial)
    receptive = int(math.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive

def xavier_uniform(shape: tuple[int, ...], rng, gain: float = 1.0):
    """Glorot uniform: U(-a, a) with a = gain * sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fan(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return get_backend().uniform(rng, -bound, bound, shape)


def xavier_normal(shape: tuple[int, ...], rng, gain: float = 1.0):
    """Glorot normal: N(0, gain^2 * 2 / (fan_in + fan_out))."""
    fan_in, fan_out = _fan(shape)
    std = gain * math.sqrt(2.0 / (fan_in + fan_out))
    return get_backend().normal(rng, 0.0, std, shape)


def he_uniform(shape: tuple[int, ...], rng):
    """He/Kaiming uniform for ReLU fan-in scaling."""
    fan_in, _fan_out = _fan(shape)
    bound = math.sqrt(6.0 / fan_in)
    return get_backend().uniform(rng, -bound, bound, shape)


def uniform(shape: tuple[int, ...], rng, bound: float):
    """Plain uniform U(-bound, bound)."""
    return get_backend().uniform(rng, -bound, bound, shape)


def zeros(shape: tuple[int, ...]):
    """All-zero array (bias default)."""
    return get_backend().zeros(shape)
