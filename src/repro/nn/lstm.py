"""LSTM layers (substrate completeness; RNN family alongside GRU).

Several related-work systems (DCRNN variants, missing-data imputation
models) use LSTMs; providing them keeps the substrate reusable for
extensions beyond the paper's exact architecture.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, concatenate, stack
from ..backend import get_backend
from . import init
from .module import Module, Parameter

__all__ = ["LSTMCell", "LSTM"]


class LSTMCell(Module):
    """Single LSTM step with forget-gate bias initialised to 1."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng if rng is not None else init.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        joint = input_size + hidden_size
        self.weight_i = Parameter(init.xavier_uniform((joint, hidden_size), rng), name="weight_i")
        self.weight_f = Parameter(init.xavier_uniform((joint, hidden_size), rng), name="weight_f")
        self.weight_g = Parameter(init.xavier_uniform((joint, hidden_size), rng), name="weight_g")
        self.weight_o = Parameter(init.xavier_uniform((joint, hidden_size), rng), name="weight_o")
        self.bias_i = Parameter(init.zeros((hidden_size,)), name="bias_i")
        self.bias_f = Parameter(get_backend().ones(hidden_size), name="bias_f")
        self.bias_g = Parameter(init.zeros((hidden_size,)), name="bias_g")
        self.bias_o = Parameter(init.zeros((hidden_size,)), name="bias_o")

    def forward(self, x: Tensor, state: tuple[Tensor, Tensor]) -> tuple[Tensor, Tensor]:
        h, c = state
        joint = concatenate([x, h], axis=-1)
        input_gate = (joint @ self.weight_i + self.bias_i).sigmoid()
        forget_gate = (joint @ self.weight_f + self.bias_f).sigmoid()
        candidate = (joint @ self.weight_g + self.bias_g).tanh()
        output_gate = (joint @ self.weight_o + self.bias_o).sigmoid()
        c_next = forget_gate * c + input_gate * candidate
        h_next = output_gate * c_next.tanh()
        return h_next, c_next


class LSTM(Module):
    """Multi-step LSTM over ``(batch, time, features)`` sequences."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.cell = LSTMCell(input_size, hidden_size, rng=rng)

    def forward(
        self, x: Tensor, state: tuple[Tensor, Tensor] | None = None
    ) -> tuple[Tensor, tuple[Tensor, Tensor]]:
        batch, steps, _features = x.shape
        if state is None:
            h = Tensor(get_backend().zeros((batch, self.hidden_size)))
            c = Tensor(get_backend().zeros((batch, self.hidden_size)))
        else:
            h, c = state
        outputs = []
        for t in range(steps):
            h, c = self.cell(x[:, t, :], (h, c))
            outputs.append(h)
        return stack(outputs, axis=1), (h, c)
