"""Streaming ingestion and incremental refit: live-feed model freshness.

Three layers, composable and individually testable:

* **Ingestion** — :class:`FeedReplayer` replays dataset readings on a
  deterministic simulated clock into a thread-safe
  :class:`StreamBuffer` (watermark/window accounting, bounded
  retention, first-class dataset views).
* **Incremental refit** — :class:`RefitScheduler` retrains on the
  rolling window at watermark-derived triggers, warm-starting from the
  previous best-epoch checkpoint and reusing store-cached artifacts;
  :func:`fit_reference` proves each refit bitwise-equal to a
  from-scratch fit of the same window.
* **Live swap** — :class:`LiveSwapBridge` blue/green swaps each
  refreshed model into a :class:`~repro.serving.ServingRuntime`
  without dropping a request, and publishes refit-lag and swap
  telemetry through ``/v1/stats``.

``python -m repro.streaming`` drives the stack end to end (``replay``
and ``serve-live`` subcommands).
"""

from .bridge import LiveSwapBridge
from .buffer import StreamBuffer
from .refit import RefitPolicy, RefitRecord, RefitScheduler, fit_reference
from .replay import FeedReplayer

__all__ = [
    "FeedReplayer",
    "LiveSwapBridge",
    "RefitPolicy",
    "RefitRecord",
    "RefitScheduler",
    "StreamBuffer",
    "fit_reference",
]
