"""CLI: drive the streaming stack end to end.

Examples::

    # Deterministic clocked replay of a synthetic feed (content digest
    # is identical at any speedup)
    python -m repro.streaming replay --dataset pems-bay --sensors 12 \
        --days 1 --speedup 1000

    # Live serving demo: replay the feed, refit on each rolling-window
    # trigger, blue/green swap every refreshed model into a running
    # HTTP server, then print its /v1/stats streaming section
    python -m repro.streaming serve-live --dataset pems-bay \
        --sensors 12 --days 2 --refits 2 --speedup inf --http
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import tempfile


def _speedup(text: str) -> float:
    return float("inf") if text in ("inf", "max") else float(text)


def _add_replay(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("replay", help="replay a synthetic feed into a stream buffer")
    p.add_argument("--dataset", default="pems-bay")
    p.add_argument("--sensors", type=int, default=12)
    p.add_argument("--days", type=int, default=1)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--speedup", type=_speedup, default=1000.0,
                   help="simulated-clock acceleration ('inf' = instant)")
    p.add_argument("--jitter", type=float, default=0.0,
                   help="seeded inter-arrival jitter fraction in [0, 1)")
    p.add_argument("--max-steps", type=int, default=None,
                   help="buffer retention bound (default: unbounded)")


def _add_serve_live(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "serve-live",
        help="replay + rolling refits + blue/green swaps into a live runtime",
    )
    p.add_argument("--dataset", default="pems-bay")
    p.add_argument("--sensors", type=int, default=12)
    p.add_argument("--days", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--speedup", type=_speedup, default=float("inf"))
    p.add_argument("--window-steps", type=int, default=None,
                   help="rolling training window (default: num_steps // 3)")
    p.add_argument("--refit-every", type=int, default=None,
                   help="steps between refit triggers (default: window // 2)")
    p.add_argument("--refit-epochs", type=int, default=1)
    p.add_argument("--refits", type=int, default=2)
    p.add_argument("--hidden", type=int, default=8)
    p.add_argument("--checkpoint-root", default=None,
                   help="per-refit checkpoint directory (default: a tempdir)")
    p.add_argument("--http", action="store_true",
                   help="serve over HTTP and probe /v1/stats on the wire "
                        "(default: in-process runtime)")
    p.add_argument("--probes", type=int, default=4,
                   help="forecast probes issued after each swap")
    # Shared cache surface: with --cache-dir (or $REPRO_CACHE_DIR) the
    # refit artifacts persist across runs, and --cache-max-bytes keeps
    # the long-running tier bounded (the scheduler GCs after each
    # refit's persist).
    from ..engine import add_cache_arguments

    add_cache_arguments(p)


def _cmd_replay(args: argparse.Namespace) -> int:
    from ..data.synthetic import make_dataset
    from . import FeedReplayer, StreamBuffer

    dataset = make_dataset(args.dataset, num_sensors=args.sensors,
                           num_days=args.days, seed=args.seed)
    buffer = StreamBuffer(dataset, max_steps=args.max_steps)
    replayer = FeedReplayer(dataset, buffer, speedup=args.speedup,
                            seed=args.seed, jitter=args.jitter)
    delivered = replayer.run()
    digest = hashlib.sha256(
        buffer.values(buffer.base, buffer.watermark).tobytes()
    ).hexdigest()[:16]
    print(json.dumps({
        "replay": replayer.stats,
        "buffer": buffer.stats,
        "content_sha256_16": digest,
        "delivered": delivered,
    }, indent=2))
    return 0


def _cmd_serve_live(args: argparse.Namespace) -> int:
    import numpy as np

    from ..core import STSMConfig
    from ..data import WindowSpec, space_split
    from ..data.synthetic import make_dataset
    from ..engine import ArtifactStore, reset_store, store_config_from_args
    from ..serving import ServingRuntime
    from . import FeedReplayer, LiveSwapBridge, RefitPolicy, RefitScheduler, StreamBuffer

    dataset = make_dataset(args.dataset, num_sensors=args.sensors,
                           num_days=args.days, seed=args.seed)
    split = space_split(dataset.coords, "horizontal")
    spec = WindowSpec(input_length=8, horizon=8)
    window_steps = args.window_steps or max(spec.total + 24, dataset.num_steps // 3)
    refit_every = args.refit_every or max(1, window_steps // 2)
    policy = RefitPolicy(window_steps=window_steps, refit_every=refit_every,
                         refit_epochs=args.refit_epochs, max_refits=args.refits)
    last_trigger = policy.trigger_watermark(args.refits - 1)
    if last_trigger > dataset.num_steps:
        raise SystemExit(
            f"{args.refits} refits need {last_trigger} steps but the feed "
            f"has {dataset.num_steps}; shrink --window-steps/--refit-every"
        )
    config = STSMConfig(
        hidden_dim=args.hidden, num_blocks=1, tcn_levels=2, gcn_depth=1,
        epochs=args.refit_epochs, patience=args.refit_epochs, batch_size=8,
        window_stride=8, top_k=min(6, args.sensors - 1), seed=args.seed,
    )
    checkpoint_root = args.checkpoint_root or tempfile.mkdtemp(prefix="stream-ckpt-")
    key = f"stsm/{args.dataset}"

    buffer = StreamBuffer(dataset)
    replayer = FeedReplayer(dataset, buffer, speedup=args.speedup,
                            seed=args.seed, stop_step=last_trigger)
    cache_config = store_config_from_args(args)
    # Cache flags (or env) opt into a persistent, quota-bounded tier;
    # the default stays a private in-memory store for this run.
    store = cache_config.build() if cache_config is not None else ArtifactStore()
    runtime = ServingRuntime(deadline_ms=1.0)
    bridge = LiveSwapBridge(runtime, key, store=store)
    scheduler = RefitScheduler(buffer, config, split, spec, policy,
                               checkpoint_root, store=store)
    server = client = None
    if args.http:
        from ..serving.transport import ForecastClient, ForecastHTTPServer

        server = ForecastHTTPServer(runtime, worker_label="serve-live")
        server.start()
        server.set_ready()
        client = ForecastClient(server.host, server.port)
        print(f"[serve-live] http://{server.host}:{server.port}")
    try:
        replayer.start()
        usable = window_steps - spec.total
        probe_starts = np.linspace(0, usable, num=min(args.probes, usable + 1),
                                   dtype=int)
        while True:
            record = scheduler.run_once(timeout=60.0)
            if record is None:
                break
            bridge.deploy(scheduler.model, record)
            entry = bridge.deploys[-1]
            if client is not None:
                block = client.forecast(key, [int(s) for s in probe_starts])
            else:
                block = runtime.forecast(key, probe_starts)
            print(f"[serve-live] refit {record.index}: "
                  f"window=[{record.window_start}, {record.window_end}) "
                  f"warm={record.warm_started} "
                  f"lag={entry['refit_lag_seconds']:.3f}s "
                  f"probe_mean={float(block.mean()):.4f}")
        stats = client.stats()["runtime"] if client is not None else runtime.stats()
        print(json.dumps({
            "streaming": stats.get("streaming"),
            "swaps": stats.get("swaps", {}).get("count", 0),
            "totals": {k: stats["totals"][k]
                       for k in ("submitted", "completed", "failed", "rejected")},
        }, indent=2))
        return 0
    finally:
        replayer.stop()
        replayer.join()
        if client is not None:
            client.close()
        if server is not None:
            server.shutdown()
        runtime.shutdown()
        reset_store()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.streaming",
        description="Streaming ingestion, incremental refit, live swap.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    _add_replay(sub)
    _add_serve_live(sub)
    args = parser.parse_args(argv)
    if args.command == "replay":
        return _cmd_replay(args)
    return _cmd_serve_live(args)


if __name__ == "__main__":
    sys.exit(main())
