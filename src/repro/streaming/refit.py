"""Incremental refits over the stream's rolling window.

The middle layer of the streaming subsystem: a
:class:`RefitScheduler` watches a :class:`~repro.streaming.StreamBuffer`
watermark and, every ``refit_every`` newly ingested steps, fits a fresh
:class:`~repro.core.STSMForecaster` on the latest ``window_steps``-step
window.  Two mechanisms keep a refit much cheaper than the original fit
without changing a single served byte:

* **Warm starts** — refit ``k`` seeds its optimisation from refit
  ``k-1``'s best-epoch checkpoint (refit 0 from an optional external
  checkpoint, e.g. the originally served model's) via
  :meth:`~repro.engine.Trainer.restore`, and runs only
  ``refit_epochs`` epochs instead of a full training budget.
* **Store reuse** — with an :class:`~repro.engine.ArtifactStore`
  installed, DTW pairs and masked adjacencies are content-addressed
  across refits; :meth:`~repro.engine.ArtifactStore.refresh_disk_index`
  runs before every refit so segments persisted by other processes
  (sweep workers, a previous serve) are visible too.

Trigger semantics: refit ``k`` (``k = 0, 1, ...``) becomes due the
moment the watermark reaches ``window_steps + k * refit_every``; its
training window is the trailing ``window_steps`` steps
``[k * refit_every, window_steps + k * refit_every)``.  Triggers are
derived purely from the watermark, never from wall time, so the refit
sequence for a given feed is deterministic at any replay speedup.

**Parity contract** (proved by :func:`fit_reference` and gated in tests
and ``bench_streaming``): an incremental refit — warm-started from a
checkpoint *directory* with the shared store on — produces weights and
served outputs bitwise identical to a from-scratch fit of the same
window that loads the same weights as an in-memory state dict with
every cross-fit cache disabled.  Warm starting and store reuse are
pure accelerations, not approximations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core.config import STSMConfig
from ..core.model import STSMForecaster
from ..data.splits import SpaceSplit
from ..data.windows import WindowSpec
from ..engine import ArtifactStore, EarlyStopping, open_store
from ..obs.trace import (
    TraceContext,
    get_recorder,
    mint_span_id,
    mint_trace_id,
    record_span,
)
from .buffer import StreamBuffer

__all__ = ["RefitPolicy", "RefitRecord", "RefitScheduler", "fit_reference"]


@dataclass(frozen=True)
class RefitPolicy:
    """When to refit and how hard to train.

    ``window_steps`` is the rolling training window; ``refit_every`` the
    number of freshly ingested steps between triggers; ``refit_epochs``
    the (warm-started) training budget per refit; ``max_refits``
    optionally bounds the schedule.
    """

    window_steps: int
    refit_every: int
    refit_epochs: int
    max_refits: int | None = None

    def __post_init__(self) -> None:
        if self.window_steps < 1:
            raise ValueError(f"window_steps must be >= 1, got {self.window_steps}")
        if self.refit_every < 1:
            raise ValueError(f"refit_every must be >= 1, got {self.refit_every}")
        if self.refit_epochs < 1:
            raise ValueError(f"refit_epochs must be >= 1, got {self.refit_epochs}")
        if self.max_refits is not None and self.max_refits < 0:
            raise ValueError(f"max_refits must be >= 0, got {self.max_refits}")

    def trigger_watermark(self, index: int) -> int:
        """Watermark at which refit ``index`` becomes due."""
        return self.window_steps + index * self.refit_every

    def window(self, index: int) -> tuple[int, int]:
        """Absolute step range ``[start, stop)`` refit ``index`` trains on."""
        end = self.trigger_watermark(index)
        return end - self.window_steps, end


@dataclass
class RefitRecord:
    """Accounting for one completed refit (telemetry + parity replay)."""

    index: int
    window_start: int
    window_end: int
    fit_seconds: float
    warm_started: bool
    epochs: int
    best_val_rmse: float
    checkpoint_dir: str
    #: Monotonic stamp of the trigger window's last-row arrival — the
    #: start of the refit-lag clock (the bridge stamps the end when the
    #: refreshed model goes live).
    data_ready_monotonic: float
    fitted_monotonic: float
    store_entries_refreshed: int = 0
    store_entries_persisted: int = 0
    store_segments_evicted: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def fit_lag_seconds(self) -> float:
        """Data-arrival → fit-complete portion of the refit lag."""
        return self.fitted_monotonic - self.data_ready_monotonic

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "window": [self.window_start, self.window_end],
            "fit_seconds": self.fit_seconds,
            "warm_started": self.warm_started,
            "epochs": self.epochs,
            "best_val_rmse": self.best_val_rmse,
            "fit_lag_seconds": self.fit_lag_seconds,
            "store_entries_refreshed": self.store_entries_refreshed,
            "store_entries_persisted": self.store_entries_persisted,
            "store_segments_evicted": self.store_segments_evicted,
            **self.extra,
        }


class RefitScheduler:
    """Watermark-triggered rolling-window refits over a stream buffer.

    Parameters
    ----------
    buffer:
        The ingestion buffer; its retention (``max_steps``) must cover
        at least ``policy.window_steps`` or due refits will raise.
    config:
        Base model configuration.  Each refit runs
        ``config.replace(epochs=policy.refit_epochs)``; everything else
        (seed, architecture, masking) is shared with the original fit.
    split / spec:
        The serving-time space split and window spec, reused verbatim —
        a refit retrains the same estimator on fresher data.
    checkpoint_root:
        Directory receiving one ``window-<k>`` best-epoch checkpoint
        per refit; refit ``k+1`` warm-starts from refit ``k``'s.
    warm_start_dir:
        Optional external checkpoint seeding refit 0 (typically the
        originally served model's training checkpoint).  ``None`` makes
        refit 0 a cold fit.
    store:
        Optional :class:`~repro.engine.ArtifactStore` installed as the
        process store for the refits (DTW pairs, masked adjacencies and
        served windows become content-addressed across refits).  The
        caller owns teardown (:func:`~repro.engine.reset_store`).
    """

    def __init__(
        self,
        buffer: StreamBuffer,
        config: STSMConfig,
        split: SpaceSplit,
        spec: WindowSpec,
        policy: RefitPolicy,
        checkpoint_root: str | Path,
        *,
        warm_start_dir: str | Path | None = None,
        store: ArtifactStore | None = None,
    ) -> None:
        if spec.total >= policy.window_steps:
            raise ValueError(
                f"window_steps={policy.window_steps} cannot fit a "
                f"{spec.total}-step training window"
            )
        self.buffer = buffer
        self.config = config
        self.split = split
        self.spec = spec
        self.policy = policy
        self.checkpoint_root = Path(checkpoint_root)
        self.initial_warm_start_dir = (
            Path(warm_start_dir) if warm_start_dir is not None else None
        )
        self.store = store
        if store is not None:
            open_store(store=store)
        self.records: list[RefitRecord] = []
        self.model: STSMForecaster | None = None

    # ------------------------------------------------------------------
    # Trigger accounting
    # ------------------------------------------------------------------
    @property
    def completed(self) -> int:
        return len(self.records)

    def next_trigger(self) -> int | None:
        """Watermark the next refit needs, or ``None`` if the schedule ended."""
        index = self.completed
        if self.policy.max_refits is not None and index >= self.policy.max_refits:
            return None
        return self.policy.trigger_watermark(index)

    def pending(self) -> bool:
        """Whether the buffer already holds the next refit's trigger window."""
        target = self.next_trigger()
        return target is not None and self.buffer.watermark >= target

    def checkpoint_dir(self, index: int) -> Path:
        return self.checkpoint_root / f"window-{index}"

    def warm_source(self, index: int) -> Path | None:
        """Checkpoint directory refit ``index`` warm-starts from."""
        if index == 0:
            return self.initial_warm_start_dir
        return self.checkpoint_dir(index - 1)

    # ------------------------------------------------------------------
    # Refitting
    # ------------------------------------------------------------------
    def run_once(self, timeout: float | None = None) -> RefitRecord | None:
        """Wait for the next trigger, refit, and return its record.

        ``None`` when the schedule is exhausted or the trigger watermark
        did not arrive within ``timeout``.
        """
        target = self.next_trigger()
        if target is None:
            return None
        if not self.buffer.wait_for_watermark(target, timeout):
            return None
        return self._refit(self.completed)

    def run_pending(self) -> list[RefitRecord]:
        """Run every refit already due at the current watermark."""
        done: list[RefitRecord] = []
        while self.pending():
            done.append(self._refit(self.completed))
        return done

    def _refit(self, index: int) -> RefitRecord:
        policy = self.policy
        start, end = policy.window(index)
        view = self.buffer.dataset_view(start, end, name_suffix=f"refit-{index}")
        data_ready = float(self.buffer.arrival_times(end - 1, end)[0])
        # Each refit gets its own trace (trigger → refresh → fit, with
        # the bridge adding a swap span when it deploys the model).  The
        # root span id is pre-minted so children parent under it while
        # the refit is still running.
        recorder = get_recorder()
        root = (
            TraceContext(mint_trace_id(), mint_span_id())
            if recorder.enabled
            else None
        )
        refit_began = time.monotonic()
        refreshed = 0
        if self.store is not None:
            # Pick up segments persisted by concurrent writers (sweep
            # workers, an earlier serve) before the fit probes the store.
            refresh_began = time.monotonic()
            refreshed = self.store.refresh_disk_index()
            if root is not None:
                record_span(
                    "refit.refresh_index", root, refresh_began,
                    time.monotonic(), entries=refreshed,
                )
        model = STSMForecaster(
            self.config.replace(epochs=policy.refit_epochs),
            name=f"{getattr(self.config, 'name', 'STSM')}-refit{index}",
        )
        warm_dir = self.warm_source(index)
        fit_began = time.monotonic()
        report = model.fit(
            view,
            self.split,
            self.spec,
            np.arange(view.num_steps),
            warm_start_dir=str(warm_dir) if warm_dir is not None else None,
            checkpoint_dir=str(self.checkpoint_dir(index)),
        )
        if root is not None:
            record_span(
                "refit.fit", root, fit_began, time.monotonic(),
                index=index, epochs=report.epochs,
            )
        # Stamp fit completion before store maintenance: the refit-lag
        # clock measures data → model-ready, not disk housekeeping.
        fitted_stamp = time.monotonic()
        persisted = evicted = 0
        if (
            self.store is not None
            and self.store.disk_dir is not None
            and not self.store.read_only
        ):
            # A long-running deployment must not grow the tier without
            # bound: flush this refit's artifacts and let the quota
            # (when configured) collect cold segments.  persist() runs
            # the gc pass itself; a refit that computed nothing new
            # still gets an explicit one.
            gc_began = time.monotonic()
            lifecycle = self.store.stats["totals"]["lifecycle"]
            before_evicted = lifecycle["evicted_segments"]
            persisted = self.store.persist()
            if persisted == 0 and self.store.max_bytes is not None:
                self.store.gc()
            lifecycle = self.store.stats["totals"]["lifecycle"]
            evicted = lifecycle["evicted_segments"] - before_evicted
            if root is not None:
                record_span(
                    "refit.gc", root, gc_began, time.monotonic(),
                    persisted=persisted, evicted_segments=evicted,
                )
            recorder.record({
                "trace": root.trace_id,
                "span": root.span_id,
                "parent": None,
                "name": "refit",
                "start": refit_began,
                "dur": time.monotonic() - refit_began,
                "wall": time.time(),
                "attrs": {"index": index, "window": [start, end]},
            })
        record = RefitRecord(
            index=index,
            window_start=start,
            window_end=end,
            fit_seconds=report.train_seconds,
            warm_started=bool(report.extra.get("warm_started", False)),
            epochs=report.epochs,
            best_val_rmse=float(report.extra.get("best_val_rmse", float("nan"))),
            checkpoint_dir=str(self.checkpoint_dir(index)),
            data_ready_monotonic=data_ready,
            fitted_monotonic=fitted_stamp,
            store_entries_refreshed=refreshed,
            store_entries_persisted=persisted,
            store_segments_evicted=evicted,
        )
        if root is not None:
            # The bridge parents its refit.swap span here when the
            # refreshed model is deployed.
            record.extra["trace_id"] = root.trace_id
            record.extra["trace_span"] = root.span_id
        self.records.append(record)
        self.model = model
        return record

    @property
    def stats(self) -> dict:
        """Refit accounting for telemetry surfaces."""
        return {
            "completed": self.completed,
            "next_trigger": self.next_trigger(),
            "policy": {
                "window_steps": self.policy.window_steps,
                "refit_every": self.policy.refit_every,
                "refit_epochs": self.policy.refit_epochs,
                "max_refits": self.policy.max_refits,
            },
            "refits": [r.as_dict() for r in self.records],
        }


def fit_reference(
    scheduler: RefitScheduler, index: int
) -> STSMForecaster:
    """From-scratch reference fit proving refit ``index`` drift-free.

    Rebuilds refit ``index`` through a maximally different code path:
    a fresh forecaster, ``cache_store=False`` (private cold caches — no
    shared DTW pairs, no masked-adjacency reuse, no served-window
    store), and the warm-start weights loaded as an in-memory state
    dict via :meth:`~repro.engine.EarlyStopping.load_checkpoint` rather
    than through :meth:`~repro.engine.Trainer.restore`.  Because the
    incremental path's store hits are bit-exact and both load paths
    overwrite every parameter identically, the reference's weights and
    ``predict`` outputs must equal the incremental refit's *bitwise* —
    tests and ``bench_streaming`` assert exactly that.
    """
    if index >= scheduler.completed:
        raise ValueError(
            f"refit {index} has not run (completed: {scheduler.completed})"
        )
    record = scheduler.records[index]
    view = scheduler.buffer.dataset_view(
        record.window_start, record.window_end, name_suffix=f"refit-{index}"
    )
    warm_state = None
    if record.warm_started:
        # Mirror the incremental refit's actual warm source — if its
        # restore degraded to a cold start, the reference is cold too.
        state, _metadata = EarlyStopping.load_checkpoint(scheduler.warm_source(index))
        warm_state = state
    reference = STSMForecaster(
        scheduler.config.replace(
            epochs=scheduler.policy.refit_epochs, cache_store=False
        ),
        name=f"{getattr(scheduler.config, 'name', 'STSM')}-reference{index}",
    )
    reference.fit(
        view,
        scheduler.split,
        scheduler.spec,
        np.arange(view.num_steps),
        warm_start_state=warm_state,
    )
    return reference
