"""Trainer → serving bridge: put refreshed models live without drops.

The last hop of the streaming subsystem.  A
:class:`~repro.streaming.RefitScheduler` produces a freshly fitted
forecaster; :class:`LiveSwapBridge` wraps it in a
:class:`~repro.serving.ForecastService` and blue/green swaps it into a
running :class:`~repro.serving.ServingRuntime` under a fixed model key:

1. the new scheduler is built and atomically installed under the key —
   new requests route to the refreshed model from that instant;
2. the outgoing scheduler is drained: every request it had already
   accepted is served (by the old model) before it shuts down;
3. a submit that races the swap and hits the old scheduler after its
   intake closed is transparently resubmitted by
   :meth:`~repro.serving.ServingRuntime.submit`.

No request is dropped or errored by a swap; requests in flight at swap
time are answered by whichever model's scheduler accepted them, which
is exactly blue/green semantics.

The bridge also closes the **refit-lag** loop: lag is defined as the
time from the *arrival of the trigger window's last row* (stamped by
the buffer, carried on the :class:`~repro.streaming.RefitRecord`) to
the *moment the refreshed model is live* (the atomic install — the old
scheduler's drain happens after new traffic is already being served by
the new model).  Per-deploy lag, fit/swap breakdowns and drain times
are published as the ``streaming`` section of
:meth:`ServingRuntime.stats` — and therefore on the wire at
``GET /v1/stats``.
"""

from __future__ import annotations

import time

from ..obs.trace import TraceContext, record_span
from ..serving.runtime import ServingRuntime
from ..serving.service import ForecastService
from .refit import RefitRecord

__all__ = ["LiveSwapBridge"]


class LiveSwapBridge:
    """Deploy refreshed forecasters into a runtime by blue/green swap.

    Parameters
    ----------
    runtime / key:
        The serving runtime and the model key the live model is hosted
        under.  The first :meth:`deploy` registers; later ones swap.
    store:
        Optional :class:`~repro.engine.ArtifactStore` backing each
        deployed service's result cache (content-addressed per model
        weights, so a swapped-in model never serves a predecessor's
        blocks) and attached to the runtime for ``/v1/stats`` cache
        telemetry.
    log_batches:
        Enable each service's batch-composition log (parity replay
        certification in ``bench_streaming``).
    drain_timeout:
        Bound on the outgoing scheduler's drain during a swap.
    service_options / register_options:
        Extra keyword arguments forwarded to every
        :class:`~repro.serving.ForecastService` build and
        :meth:`~repro.serving.ServingRuntime.register` call.
    """

    def __init__(
        self,
        runtime: ServingRuntime,
        key: str,
        *,
        store=None,
        log_batches: bool = False,
        drain_timeout: float | None = None,
        service_options: dict | None = None,
        register_options: dict | None = None,
    ) -> None:
        self.runtime = runtime
        self.key = str(key)
        self.store = store
        self.log_batches = log_batches
        self.drain_timeout = drain_timeout
        self.service_options = dict(service_options or {})
        self.register_options = dict(register_options or {})
        self.deploys: list[dict] = []
        self.service: ForecastService | None = None
        if store is not None:
            runtime.attach_store(store)
        runtime.add_stats_source("streaming", self.stats)
        runtime.metrics.register_collector("streaming", self._metric_samples)

    def build_service(self, forecaster) -> ForecastService:
        """Wrap a fitted forecaster the way :meth:`deploy` serves it."""
        options = dict(self.service_options)
        if self.store is not None:
            options.setdefault("store", self.store)
        return ForecastService(
            forecaster, log_batches=self.log_batches, **options
        )

    def deploy(
        self, forecaster, record: RefitRecord | None = None
    ) -> ForecastService:
        """Put ``forecaster`` live under the bridge's key; returns its service.

        The first deploy is an ordinary register; every later one is a
        blue/green swap (``replace=True``).  With a ``record`` from the
        refit scheduler, the deploy closes that refit's lag clock —
        data-arrival → model-live — and carries the fit/swap breakdown
        into the ``streaming`` stats section.
        """
        service = self.build_service(forecaster)
        swap = self.key in self.runtime
        swap_started = time.monotonic()
        self.runtime.register(
            self.key,
            service,
            replace=swap,
            drain_timeout=self.drain_timeout,
            **self.register_options,
        )
        live_at = time.monotonic()
        # Close the refit trace: the swap span parents under the refit
        # root whose ids the scheduler left on the record.
        if record is not None and "trace_span" in record.extra:
            record_span(
                "refit.swap",
                TraceContext(
                    record.extra["trace_id"], record.extra["trace_span"]
                ),
                swap_started,
                live_at,
                model=self.key,
                deploy=len(self.deploys),
            )
        self.service = service
        entry = {
            "deploy": len(self.deploys),
            "swap": swap,
            "live_at": time.time(),
            "swap_seconds": live_at - swap_started,
        }
        if record is not None:
            entry.update(
                refit_index=record.index,
                window=[record.window_start, record.window_end],
                fit_seconds=record.fit_seconds,
                warm_started=record.warm_started,
                # Full lag: trigger-window data arrival -> model live.
                refit_lag_seconds=live_at - record.data_ready_monotonic,
                fit_lag_seconds=record.fit_lag_seconds,
            )
        self.deploys.append(entry)
        return service

    @property
    def live(self) -> bool:
        return self.key in self.runtime

    def stats(self) -> dict:
        """The runtime's ``streaming`` stats section."""
        lags = [
            d["refit_lag_seconds"] for d in self.deploys
            if "refit_lag_seconds" in d
        ]
        section = {
            "model": self.key,
            "deploys": len(self.deploys),
            "swaps": sum(1 for d in self.deploys if d["swap"]),
            "history": [dict(d) for d in self.deploys],
        }
        if lags:
            section["refit_lag"] = {
                "last_seconds": lags[-1],
                "mean_seconds": sum(lags) / len(lags),
                "max_seconds": max(lags),
            }
        return section

    def _metric_samples(self):
        """Scrape-time samples for the runtime's ``streaming`` collector."""
        deploys = list(self.deploys)
        labels = {"model": self.key}
        yield ("repro_stream_deploys_total", labels, len(deploys))
        yield ("repro_stream_swaps_total", labels,
               sum(1 for d in deploys if d["swap"]))
        lags = [
            d["refit_lag_seconds"] for d in deploys
            if "refit_lag_seconds" in d
        ]
        if lags:
            yield ("repro_stream_refit_lag_seconds", labels, lags[-1])
            yield ("repro_stream_refit_lag_max_seconds", labels, max(lags))
