"""Clocked, deterministic replay of dataset readings into a stream buffer.

There is no live sensor fleet in a reproduction repo, so the feed is
simulated: :class:`FeedReplayer` walks a dataset's ``values`` rows in
step order and appends each to a :class:`~repro.streaming.StreamBuffer`
on a simulated clock — one row per observation interval, accelerated by
a configurable ``speedup`` (``inf`` collapses the clock entirely: the
whole feed arrives in one append block, the mode tests and benchmarks
use).

Determinism contract: the delivered *content* is exactly
``dataset.values[start_step:stop_step]`` in order, independent of
timing, thread scheduling, or speedup — two replays of the same dataset
produce bit-identical buffers.  The optional inter-arrival ``jitter``
is drawn from a seeded generator, so even the sleep schedule is
reproducible; only the wall-clock arrival stamps (used for lag
telemetry, never for model input) vary between runs.
"""

from __future__ import annotations

import math
import threading
import time

import numpy as np

from ..data.dataset import SpatioTemporalDataset
from .buffer import StreamBuffer

__all__ = ["FeedReplayer"]


class FeedReplayer:
    """Replay ``dataset`` rows into ``buffer`` on a simulated clock.

    Parameters
    ----------
    dataset:
        Source of the feed; rows ``[start_step, stop_step)`` of its
        ``values`` are delivered in order.
    buffer:
        Destination :class:`StreamBuffer` (its template's geometry must
        match the dataset's).
    speedup:
        Simulated-clock acceleration: the real inter-arrival gap is
        ``interval_s / speedup``.  ``math.inf`` delivers everything
        immediately.
    interval_s:
        Simulated seconds between readings; defaults to the dataset's
        ``interval_minutes * 60``.
    start_step / stop_step:
        Replay range (``stop_step=None`` runs to the end).  A nonzero
        ``start_step`` models a feed whose history up to that step was
        already ingested (seed the buffer separately).
    seed / jitter:
        ``jitter`` (a fraction of the inter-arrival gap, e.g. ``0.2``)
        perturbs each gap by a seeded uniform draw — deterministic
        irregular arrival, for exercising lag accounting.
    """

    def __init__(
        self,
        dataset: SpatioTemporalDataset,
        buffer: StreamBuffer,
        *,
        speedup: float = 60.0,
        interval_s: float | None = None,
        start_step: int = 0,
        stop_step: int | None = None,
        seed: int = 0,
        jitter: float = 0.0,
    ) -> None:
        if speedup <= 0:
            raise ValueError(f"speedup must be > 0, got {speedup}")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        stop_step = dataset.num_steps if stop_step is None else int(stop_step)
        if not 0 <= start_step < stop_step <= dataset.num_steps:
            raise ValueError(
                f"invalid replay range [{start_step}, {stop_step}) for "
                f"{dataset.num_steps} steps"
            )
        self.dataset = dataset
        self.buffer = buffer
        self.speedup = float(speedup)
        base_interval = (
            dataset.interval_minutes * 60.0 if interval_s is None else float(interval_s)
        )
        self.interval_real = (
            0.0 if math.isinf(self.speedup) else base_interval / self.speedup
        )
        self.start_step = int(start_step)
        self.stop_step = stop_step
        self.seed = int(seed)
        self.jitter = float(jitter)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._delivered = 0
        self._started_at: float | None = None
        self._finished_at: float | None = None

    # ------------------------------------------------------------------
    # Replay loop
    # ------------------------------------------------------------------
    def run(self) -> int:
        """Replay synchronously; returns the number of rows delivered.

        Interruptible via :meth:`stop`; rows already delivered stay in
        the buffer (the feed is append-only, never rolled back).
        """
        count = self.stop_step - self.start_step
        interval = self.interval_real
        if interval > 0 and self.jitter:
            rng = np.random.default_rng(self.seed)
            offsets = rng.uniform(-self.jitter, self.jitter, size=count) * interval
        else:
            offsets = np.zeros(count)
        self._started_at = time.monotonic()
        t0 = self._started_at
        delivered = 0
        while delivered < count and not self._stop.is_set():
            # Collect every row already due (at high speedup several
            # steps fall due per wake) and deliver them as one arrival
            # event; otherwise sleep — interruptibly — until the next.
            due = 0
            now = time.monotonic()
            while delivered + due < count:
                index = delivered + due
                due_at = t0 + (index + 1) * interval + offsets[index]
                if interval == 0.0 or due_at <= now:
                    due += 1
                    continue
                if due == 0:
                    if self._stop.wait(due_at - now):
                        self._finished_at = time.monotonic()
                        return delivered
                    now = time.monotonic()
                    continue
                break
            begin = self.start_step + delivered
            self.buffer.append(self.dataset.values[begin : begin + due])
            delivered += due
            self._delivered = delivered
        self._finished_at = time.monotonic()
        return delivered

    # ------------------------------------------------------------------
    # Background-thread management
    # ------------------------------------------------------------------
    def start(self) -> "FeedReplayer":
        """Run the replay on a daemon thread; returns self for chaining."""
        if self._thread is not None:
            raise RuntimeError("replayer already started")
        self._thread = threading.Thread(
            target=self.run, name="feed-replayer", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Ask the replay loop to end after the current arrival event."""
        self._stop.set()

    def join(self, timeout: float | None = None) -> None:
        if self._thread is not None:
            self._thread.join(timeout)

    @property
    def delivered(self) -> int:
        return self._delivered

    @property
    def done(self) -> bool:
        return self._finished_at is not None

    @property
    def stats(self) -> dict:
        """Replay accounting for telemetry surfaces."""
        elapsed = None
        if self._started_at is not None:
            end = self._finished_at if self._finished_at is not None else time.monotonic()
            elapsed = end - self._started_at
        return {
            "delivered": self._delivered,
            "planned": self.stop_step - self.start_step,
            "speedup": self.speedup,
            "interval_real_s": self.interval_real,
            "elapsed_s": elapsed,
            "done": self.done,
        }
