"""Thread-safe append-only buffer for live sensor readings.

The ingestion half of the streaming subsystem: a
:class:`~repro.streaming.FeedReplayer` (or any producer) appends one
``(N,)`` reading row per time step, in step order, from its own thread;
consumers — the :class:`~repro.streaming.RefitScheduler` above all —
read consistent snapshots, wait on the watermark, and materialise
rolling-window dataset views for refits.

Vocabulary:

* **watermark** — the number of contiguous steps ingested so far; step
  indices ``[0, watermark)`` have arrived.  Rows are accepted strictly
  in step order (the replayer is append-only), so the watermark is both
  a count and an exclusive upper bound.
* **arrival time** — ``time.monotonic()`` stamped (or supplied) per row
  at append time; refit-lag is measured from the arrival of a trigger
  window's last row to the moment the refreshed model is live.
* **retention** — ``max_steps`` optionally bounds the rows held in
  memory.  Eviction drops the *oldest* rows but never renumbers: all
  indices stay absolute, and reads below :attr:`base` raise.  Window
  accounting therefore survives unbounded feeds with bounded memory.

A :class:`SpatioTemporalDataset` template supplies everything a
dataset view needs beyond the values — coordinates, static features,
steps-per-day — so :meth:`dataset_view` can hand a fit a first-class
dataset covering exactly the buffered rows it asks for.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from ..data.dataset import SpatioTemporalDataset

__all__ = ["StreamBuffer"]


class StreamBuffer:
    """Append-only, watermark-tracked row buffer over a dataset template.

    Parameters
    ----------
    template:
        Dataset supplying the location geometry (coords, features,
        steps_per_day) of the feed.  Appended rows must match its
        location count; its ``values`` are *not* consulted — the buffer
        holds only what actually arrived.
    max_steps:
        Optional retention bound: once exceeded, the oldest rows are
        evicted (indices stay absolute; see :attr:`base`).
    """

    def __init__(
        self,
        template: SpatioTemporalDataset,
        max_steps: int | None = None,
    ) -> None:
        if max_steps is not None and max_steps < 1:
            raise ValueError(f"max_steps must be >= 1, got {max_steps}")
        self.template = template
        self.max_steps = max_steps
        self.num_locations = template.num_locations
        self._rows: list[np.ndarray] = []
        self._arrivals: list[float] = []
        self._base = 0  # absolute index of _rows[0]
        self._appends = 0
        self._cond = threading.Condition()

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def append(self, values, arrival_time: float | None = None) -> int:
        """Ingest one ``(N,)`` row or a ``(k, N)`` block of rows in order.

        Returns the new watermark.  ``arrival_time`` (monotonic seconds)
        defaults to now and stamps every row of a block — a block is one
        arrival event, e.g. a high-speedup replay tick delivering
        several steps at once.
        """
        block = np.asarray(values, dtype=float)
        if block.ndim == 1:
            block = block[None, :]
        if block.ndim != 2 or block.shape[1] != self.num_locations:
            raise ValueError(
                f"expected rows of {self.num_locations} locations, "
                f"got shape {block.shape}"
            )
        stamp = time.monotonic() if arrival_time is None else float(arrival_time)
        with self._cond:
            for row in block:
                self._rows.append(np.array(row, dtype=float))
                self._arrivals.append(stamp)
            self._appends += 1
            if self.max_steps is not None:
                excess = len(self._rows) - self.max_steps
                if excess > 0:
                    del self._rows[:excess]
                    del self._arrivals[:excess]
                    self._base += excess
            self._cond.notify_all()
            return self._base + len(self._rows)

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    @property
    def watermark(self) -> int:
        """Exclusive upper bound of ingested step indices."""
        with self._cond:
            return self._base + len(self._rows)

    @property
    def base(self) -> int:
        """Absolute index of the oldest retained row."""
        with self._cond:
            return self._base

    def wait_for_watermark(self, target: int, timeout: float | None = None) -> bool:
        """Block until ``watermark >= target`` (True) or timeout (False)."""
        with self._cond:
            return self._cond.wait_for(
                lambda: self._base + len(self._rows) >= target, timeout
            )

    def _check_range(self, start: int, stop: int) -> None:
        high = self._base + len(self._rows)
        if start < self._base:
            raise IndexError(
                f"steps [{start}, {stop}) reach below the retention base "
                f"{self._base} (max_steps={self.max_steps})"
            )
        if stop > high:
            raise IndexError(
                f"steps [{start}, {stop}) reach beyond the watermark {high}"
            )
        if start >= stop:
            raise IndexError(f"empty step range [{start}, {stop})")

    def values(self, start: int, stop: int) -> np.ndarray:
        """Copy of the ingested rows for absolute steps ``[start, stop)``."""
        with self._cond:
            self._check_range(start, stop)
            rows = self._rows[start - self._base : stop - self._base]
            return np.stack(rows, axis=0)

    def arrival_times(self, start: int, stop: int) -> np.ndarray:
        """Monotonic arrival stamps for absolute steps ``[start, stop)``."""
        with self._cond:
            self._check_range(start, stop)
            return np.asarray(
                self._arrivals[start - self._base : stop - self._base], dtype=float
            )

    def dataset_view(
        self, start: int, stop: int, name_suffix: str | None = None
    ) -> SpatioTemporalDataset:
        """A first-class dataset over ingested steps ``[start, stop)``.

        Carries the template's geometry and static features with the
        *arrived* values — a refit therefore trains on exactly what the
        feed delivered, never on rows the template knows but the stream
        has not produced yet.
        """
        suffix = name_suffix if name_suffix is not None else f"live-{start}-{stop}"
        template = self.template
        return SpatioTemporalDataset(
            name=f"{template.name}-{suffix}",
            values=self.values(start, stop),
            coords=template.coords,
            steps_per_day=template.steps_per_day,
            features=template.features,
            road_network=template.road_network,
            interval_minutes=template.interval_minutes,
            metadata={**template.metadata, "stream_window": [int(start), int(stop)]},
        )

    @property
    def stats(self) -> dict:
        """Ingestion accounting for telemetry surfaces."""
        with self._cond:
            rows = len(self._rows)
            return {
                "watermark": self._base + rows,
                "base": self._base,
                "rows_retained": rows,
                "bytes_retained": int(rows * self.num_locations * 8),
                "appends": self._appends,
            }
