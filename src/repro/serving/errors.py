"""Public serving exception taxonomy.

Everything the serving layer can refuse to do maps to one of three
failures, all rooted at :class:`ServingError`:

* :class:`QueueFull` — admission control shed the request (the bounded
  scheduler queue is at capacity under ``admission="reject"``).
  Retryable: the wire transport maps it to HTTP 503 and the client
  retries with backoff.
* :class:`ModelNotFound` — the request routed to a model key nothing is
  registered under.  Not retryable (HTTP 404).
* :class:`InvalidRequest` — the request itself is malformed: empty
  window list, non-integer starts, an undecodable or oversized wire
  frame.  Not retryable (HTTP 400/413).

The taxonomy exists so the wire protocol's structured error frames map
1:1 to the exceptions in-process callers already catch: a client
talking HTTP sees *the same* ``QueueFull`` a thread submitting to the
scheduler directly would, regardless of transport.

Compatibility: :class:`ModelNotFound` also subclasses :class:`KeyError`
and :class:`InvalidRequest` also subclasses :class:`ValueError`, so
pre-taxonomy callers catching the builtin types keep working.
"""

from __future__ import annotations

__all__ = ["InvalidRequest", "ModelNotFound", "QueueFull", "ServingError"]


class ServingError(RuntimeError):
    """Base class for every failure the serving layer raises on purpose."""


class QueueFull(ServingError):
    """Admission control rejected a request: the scheduler queue is full."""


class ModelNotFound(ServingError, KeyError):
    """A request routed to a model key with nothing registered under it."""

    # KeyError.__str__ repr-quotes the message; keep the plain Exception
    # rendering so error text reads the same across the taxonomy.
    __str__ = BaseException.__str__


class InvalidRequest(ServingError, ValueError):
    """The request itself is malformed (empty, mistyped, or undecodable)."""
