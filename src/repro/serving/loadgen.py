"""Deterministic multi-threaded load generator for the serving layer.

Real forecast traffic is skewed: a few popular windows (the current
time step, dashboard defaults) dominate, with a long tail of one-off
queries.  The generator models that with a **seeded Zipf** popularity
law over a request pool: item at popularity rank ``r`` (1-based) is
drawn with probability proportional to ``r ** -zipf_exponent``.

Determinism contract: the per-thread request *sequences* (and, when
pacing is enabled, the inter-arrival gaps) are pure functions of
``(seed, thread index)`` via ``np.random.default_rng([seed, tid])`` —
rerunning a benchmark replays byte-identical request streams.  Only the
OS thread interleaving varies between runs, which is exactly the
nondeterminism a serving benchmark is supposed to absorb.

The generator is transport-agnostic: ``run(serve_fn)`` drives any
callable from ``request item -> result array``, so the same schedule
can hammer a :class:`~repro.serving.MicroBatchScheduler`, a
:class:`~repro.serving.ServingRuntime` route, or a plain locked
``model.predict`` baseline — the comparison the load benchmark reports.
:class:`WireDriver` is the serve callable for HTTP serving: one
:class:`~repro.serving.transport.ForecastClient` (with its own
kept-alive connection) per generator thread, so wire load tests measure
the server, not client-side connection churn.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "LoadGenerator",
    "LoadReport",
    "LoadSpec",
    "WireDriver",
    "build_schedule",
    "latency_summary",
    "zipf_probabilities",
]


def latency_summary(seconds: Sequence[float] | np.ndarray) -> dict:
    """Millisecond percentile summary of a latency sample (one shape
    everywhere: the scheduler's recorder and load reports emit it)."""
    sample = np.asarray(seconds, dtype=float)
    if sample.size == 0:
        return {"count": 0, "p50_ms": None, "p95_ms": None, "p99_ms": None,
                "mean_ms": None, "max_ms": None}
    ms = sample * 1e3
    p50, p95, p99 = np.percentile(ms, [50.0, 95.0, 99.0])
    return {
        "count": int(sample.size),
        "p50_ms": float(p50),
        "p95_ms": float(p95),
        "p99_ms": float(p99),
        "mean_ms": float(ms.mean()),
        "max_ms": float(ms.max()),
    }


@dataclass(frozen=True)
class LoadSpec:
    """Shape of the synthetic request stream.

    ``arrival_rate_hz`` is a *per-thread* mean open-loop arrival rate
    (seeded exponential inter-arrival gaps); ``None`` runs closed-loop —
    each thread fires its next request the moment the previous one
    completes, which measures saturated throughput.
    """

    num_threads: int = 8
    requests_per_thread: int = 100
    zipf_exponent: float = 1.1
    seed: int = 0
    arrival_rate_hz: float | None = None

    def __post_init__(self) -> None:
        if self.num_threads < 1:
            raise ValueError(f"num_threads must be >= 1, got {self.num_threads}")
        if self.requests_per_thread < 1:
            raise ValueError(
                f"requests_per_thread must be >= 1, got {self.requests_per_thread}"
            )
        if self.zipf_exponent < 0:
            raise ValueError(f"zipf_exponent must be >= 0, got {self.zipf_exponent}")
        if self.arrival_rate_hz is not None and self.arrival_rate_hz <= 0:
            raise ValueError(
                f"arrival_rate_hz must be positive, got {self.arrival_rate_hz}"
            )


def zipf_probabilities(num_items: int, exponent: float) -> np.ndarray:
    """Zipf popularity over ``num_items`` ranks (rank 0 most popular)."""
    if num_items < 1:
        raise ValueError(f"num_items must be >= 1, got {num_items}")
    weights = np.arange(1, num_items + 1, dtype=float) ** -float(exponent)
    return weights / weights.sum()


def build_schedule(pool: Sequence, spec: LoadSpec) -> list[list]:
    """Per-thread request sequences, deterministic in ``(seed, thread)``.

    ``pool`` order is popularity order: ``pool[0]`` is the hottest item.
    Returns ``spec.num_threads`` lists of ``spec.requests_per_thread``
    pool items (not indices), ready for :meth:`LoadGenerator.run`.
    """
    pool = list(pool)
    probabilities = zipf_probabilities(len(pool), spec.zipf_exponent)
    schedule: list[list] = []
    for tid in range(spec.num_threads):
        rng = np.random.default_rng([spec.seed, tid])
        picks = rng.choice(len(pool), size=spec.requests_per_thread, p=probabilities)
        schedule.append([pool[int(i)] for i in picks])
    return schedule


@dataclass
class LoadReport:
    """Outcome of one load run: counts, wall time, client-side latency."""

    num_threads: int
    num_requests: int
    elapsed_seconds: float
    #: Per-thread list of ``(item, result)`` pairs in issue order.
    results: list[list[tuple]] = field(repr=False, default_factory=list)
    #: Client-observed seconds per request, pooled over threads.
    latencies: np.ndarray = field(repr=False, default=None)

    @property
    def throughput_rps(self) -> float:
        return self.num_requests / self.elapsed_seconds if self.elapsed_seconds > 0 else 0.0

    @property
    def latency_ms(self) -> dict:
        return latency_summary(self.latencies)

    def summary(self) -> dict:
        return {
            "num_threads": self.num_threads,
            "num_requests": self.num_requests,
            "elapsed_seconds": self.elapsed_seconds,
            "throughput_rps": self.throughput_rps,
            "latency": self.latency_ms,
        }


class WireDriver:
    """Serve callable that routes load-generator items over HTTP.

    Each generator thread gets its own
    :class:`~repro.serving.transport.ForecastClient` (clients are not
    thread-safe; per-thread clients also mean per-thread kept-alive
    connections, mirroring real fan-in).  Items are window starts when
    ``model`` is fixed, or ``(model_key, start)`` pairs for routed
    multi-model traffic.  Call :meth:`close` after the run to drop every
    connection.
    """

    def __init__(
        self,
        host: str,
        port: int,
        model: str | None = None,
        *,
        timeout: float = 30.0,
        retries: int = 5,
        backoff_s: float = 0.02,
    ) -> None:
        self.host = host
        self.port = port
        self.model = model
        self._client_kwargs = dict(timeout=timeout, retries=retries,
                                   backoff_s=backoff_s)
        self._local = threading.local()
        self._clients: list = []
        self._clients_lock = threading.Lock()

    def client(self):
        """This thread's client (created on first use)."""
        client = getattr(self._local, "client", None)
        if client is None:
            from .transport import ForecastClient  # local import: leaf -> package

            client = ForecastClient(self.host, self.port, **self._client_kwargs)
            self._local.client = client
            with self._clients_lock:
                self._clients.append(client)
        return client

    def __call__(self, item) -> np.ndarray:
        if self.model is not None:
            model, start = self.model, item
        else:
            model, start = item
        return self.client().forecast_one(model, int(start))

    def close(self) -> None:
        """Close every per-thread connection this driver opened."""
        with self._clients_lock:
            clients, self._clients = self._clients, []
        for client in clients:
            client.close()

    def __enter__(self) -> "WireDriver":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class LoadGenerator:
    """Drive a serve callable with a deterministic multi-threaded schedule."""

    def __init__(self, pool: Sequence, spec: LoadSpec) -> None:
        self.spec = spec
        self.schedule = build_schedule(pool, spec)

    def run(
        self,
        serve_fn: Callable[[object], np.ndarray],
        collect_results: bool = True,
    ) -> LoadReport:
        """Replay the schedule from ``spec.num_threads`` threads.

        All threads release together on a barrier; each issues its
        sequence (optionally paced by seeded exponential gaps against an
        absolute timeline, so pacing does not drift with service time)
        and records client-observed latency per request.  Any worker
        exception is re-raised here after all threads join.
        """
        spec = self.spec
        barrier = threading.Barrier(spec.num_threads + 1)
        results: list[list[tuple]] = [[] for _ in range(spec.num_threads)]
        latencies: list[np.ndarray] = [None] * spec.num_threads
        errors: list[BaseException] = []
        errors_lock = threading.Lock()

        def client(tid: int) -> None:
            try:
                # Setup inside the try: a failure here must still abort
                # the barrier, or run() would hang waiting on it.
                sequence = self.schedule[tid]
                gaps = None
                if spec.arrival_rate_hz is not None:
                    rng = np.random.default_rng([spec.seed, tid, 1])
                    gaps = np.cumsum(
                        rng.exponential(1.0 / spec.arrival_rate_hz, size=len(sequence))
                    )
                observed = np.empty(len(sequence))
                barrier.wait()
                thread_began = time.perf_counter()
                for i, item in enumerate(sequence):
                    if gaps is not None:
                        lag = thread_began + gaps[i] - time.perf_counter()
                        if lag > 0:
                            time.sleep(lag)
                    began = time.perf_counter()
                    value = serve_fn(item)
                    observed[i] = time.perf_counter() - began
                    if collect_results:
                        results[tid].append((item, value))
                latencies[tid] = observed
            except BaseException as exc:  # noqa: BLE001 — reported to caller
                with errors_lock:
                    errors.append(exc)
                barrier.abort()

        threads = [
            threading.Thread(target=client, args=(tid,), name=f"loadgen-{tid}")
            for tid in range(spec.num_threads)
        ]
        for thread in threads:
            thread.start()
        try:
            barrier.wait()
        except threading.BrokenBarrierError:
            pass
        began = time.perf_counter()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - began
        if errors:
            raise errors[0]
        return LoadReport(
            num_threads=spec.num_threads,
            num_requests=spec.num_threads * spec.requests_per_thread,
            elapsed_seconds=elapsed,
            results=results,
            latencies=np.concatenate([obs for obs in latencies if obs is not None]),
        )
