"""Batched forecast serving with per-window result caching.

A fitted :class:`~repro.interfaces.Forecaster` exposes
``predict(window_starts)``; callers that ask one window at a time pay
the full per-call overhead (graph setup, batch padding) every time, and
repeated traffic for popular windows recomputes identical answers.  The
:class:`ForecastService` sits in front of the model and fixes both:

* **Coalescing** — requests accumulate via :meth:`submit` (or arrive
  together via :meth:`forecast`); a flush deduplicates the pending
  window starts, drops the ones already cached, and issues the rest to
  the model as large batched ``predict`` calls.
* **Caching** — every window's ``(horizon, N_u)`` block is stored in a
  bounded LRU keyed by its start index, so repeated requests are served
  from memory.

Correctness contract: the service adds zero numerical drift.  A
cold-cache flush issues the model's own ``predict`` over the deduped,
sorted window starts, so its outputs are bitwise identical to the
caller making that predict call directly, and cached repeats are
bitwise identical to the first computation.  Batching is only applied
to models whose per-window outputs are independent of batch
composition (``stateless_predict``); GE-GAN reseeds its noise
generator per ``predict`` call and is therefore served one window per
call, so its cached results always equal the per-window ground truth.
(For STSM, per-window vs batched ``predict`` agree only to the last
ulp — its conv einsum takes batch-size-dependent BLAS paths — which is
a property of the model's own ``predict``, not of the service.)
"""

from __future__ import annotations

import threading
import time
from collections import deque

import numpy as np

from ..engine import LRUCache
from ..interfaces import Forecaster
from .errors import InvalidRequest

__all__ = ["ForecastHandle", "ForecastService"]

_MISSING = object()

#: Bound on the batch-composition log: parity replay certification
#: (bench_serving_load) is only sound for runs issuing fewer predict
#: calls than this.
BATCH_LOG_MAXLEN = 4096


class ForecastHandle:
    """Deferred result of a submitted window-start request.

    ``result()`` flushes the owning service if the window has not been
    computed yet, then returns the ``(horizon, N_u)`` forecast block.
    """

    def __init__(self, service: "ForecastService", start: int) -> None:
        self._service = service
        self.start = start

    @property
    def ready(self) -> bool:
        return self.start in self._service._results

    def result(self) -> np.ndarray:
        if not self.ready:
            self._service.flush()
        value = self._service._results.get(self.start, _MISSING)
        if value is _MISSING:
            # Evicted between flush and pickup (cache smaller than the
            # flush) — recompute just this window.  Under the service
            # lock: a bare _pending insert could land mid-iteration of a
            # concurrent flush's pending sweep.  The recompute is
            # recorded as an eviction miss so hit-rate telemetry stays
            # truthful when a shared bounded store drops entries between
            # flush and pickup.
            with self._service._lock:
                self._service.eviction_recomputes += 1
                self._service._pending[self.start] = None
                self._service.flush()
                value = self._service._results.get(self.start, _MISSING)
        if value is _MISSING:
            # Evicted *again* (adversarially small or shared cache that
            # dropped the refetch before pickup).  Compute the window
            # directly and hand the block back without a cache
            # round-trip, so result() can never return None.
            value = self._service.compute_one(self.start)
        return value


class ForecastService:
    """Coalesce window-start requests into batched, cached predictions.

    Thread-safe: an internal reentrant lock serialises intake and
    flushes, so a :class:`~repro.serving.MicroBatchScheduler` worker and
    direct callers can safely share one service (direct ``forecast``
    calls then simply serialise behind in-progress flushes).

    Parameters
    ----------
    forecaster:
        A *fitted* forecaster (``predict`` must be callable).
    cache_size:
        Capacity of the per-window LRU result cache.
    max_batch_size:
        Upper bound on the number of windows per ``predict`` call; large
        flushes are chunked to keep peak memory flat.
    stateless_predict:
        Declare that the model's ``predict`` output for a window does not
        depend on which other windows share the batch.  Defaults to the
        forecaster's own ``stateless_predict`` attribute (True for every
        model in this repository except GE-GAN, whose per-call noise
        reseed couples outputs to batch position); when False the service
        still caches but issues one single-window ``predict`` per miss so
        cached results always equal the per-window ground truth.
    cache:
        Optionally share an existing :class:`~repro.engine.LRUCache`
        (e.g. between a scheduler-fronted service and a direct one over
        the same model).  The engine cache is thread-safe, so sharing
        across threads is sound; when given, ``cache_size`` is ignored.
    store:
        Optionally draw the result cache from a shared
        :class:`~repro.engine.ArtifactStore` (namespace
        ``forecast_window``) instead of a private LRU: blocks computed
        by other services over the same model content — earlier
        processes, warmed checkpoint bundles — are then served without
        recomputation.  Mutually exclusive with ``cache``.
    store_scope:
        Content scope separating this model's windows from every other
        model's in the shared store.  Defaults to
        :func:`~repro.engine.default_store_scope` (a hash of weights,
        config, dataset and split); required explicitly when that
        returns ``None``.
    log_batches:
        Record the window-start batch of every issued ``predict`` call
        in :attr:`batch_log` (a bounded deque keeping the most recent
        4096 batches, so long-running services cannot grow it without
        bound).  The serving load benchmark replays this log through the
        model directly to certify that every served byte is bitwise a
        direct-``predict`` byte; replay certification therefore needs
        the run to stay under the bound.
    """

    def __init__(
        self,
        forecaster: Forecaster,
        cache_size: int = 256,
        max_batch_size: int = 64,
        stateless_predict: bool | None = None,
        cache: LRUCache | None = None,
        log_batches: bool = False,
        store=None,
        store_scope: bytes | None = None,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        fitted = getattr(forecaster, "_fitted", True)
        if not fitted:
            raise RuntimeError("ForecastService requires a fitted forecaster")
        self.forecaster = forecaster
        self.max_batch_size = max_batch_size
        if stateless_predict is None:
            stateless_predict = getattr(forecaster, "stateless_predict", True)
        self.stateless_predict = stateless_predict
        if store is not None:
            if cache is not None:
                raise ValueError("pass either cache= or store=, not both")
            if store_scope is None:
                from ..engine import default_store_scope  # local: avoid cycle

                store_scope = default_store_scope(forecaster)
            if store_scope is None:
                raise ValueError(
                    "store= needs a content scope; this forecaster has no "
                    "snapshotable network, pass store_scope= explicitly"
                )
            self._results = store.view("forecast_window", scope=store_scope)
        else:
            self._results = cache if cache is not None else LRUCache(maxsize=cache_size)
        #: Window-start composition of recent predict calls, when
        #: ``log_batches`` is on (parity replay for the load benchmark).
        self.batch_log: deque[np.ndarray] | None = None
        if log_batches:
            self.enable_batch_log()
        # Serialises intake (pending set, counters) and flush: a
        # scheduler worker and direct callers can safely share one
        # service.  Reentrant so forecast() -> submit()/flush() nests,
        # which also makes a whole forecast() call atomic against other
        # threads' flushes.
        self._lock = threading.RLock()
        # Insertion-ordered pending set: O(1) membership for coalescing.
        self._pending: dict[int, None] = {}
        # Telemetry for benchmarks and capacity planning.
        self.requests = 0
        self.predict_calls = 0
        self.windows_computed = 0
        self.predict_seconds = 0.0
        #: Requests answered straight from the result cache at submit time.
        self.cache_hits = 0
        #: Requests folded into an already-pending window (batch dedup).
        self.coalesced = 0
        #: Windows whose flushed result was evicted before pickup and had
        #: to be recomputed — a real cache miss under a shared bounded
        #: store, recorded so hit-rate stats stay truthful.
        self.eviction_recomputes = 0

    # ------------------------------------------------------------------
    # Request intake
    # ------------------------------------------------------------------
    def submit(self, start: int) -> ForecastHandle:
        """Enqueue one window-start request; batched at the next flush."""
        start = int(start)
        with self._lock:
            self.requests += 1
            if start in self._results:
                self.cache_hits += 1
            elif start in self._pending:
                self.coalesced += 1
            else:
                self._pending[start] = None
        return ForecastHandle(self, start)

    def flush(self) -> int:
        """Run batched predictions for all pending uncached windows.

        Returns the number of windows actually computed.  Pending starts
        are deduplicated, sorted (so batch composition is reproducible
        regardless of request arrival order), chunked to
        ``max_batch_size`` and dispatched to the model.
        """
        with self._lock:
            missing = sorted({s for s in self._pending if s not in self._results})
            self._pending.clear()
            if not missing:
                return 0
            chunk = 1 if not self.stateless_predict else self.max_batch_size
            computed = 0
            for begin in range(0, len(missing), chunk):
                batch = np.asarray(missing[begin : begin + chunk], dtype=int)
                block = self._predict_batch(batch)
                for row, start in enumerate(batch):
                    # Copy: caching a view would pin the whole batch block
                    # in memory for as long as any one row stays cached.
                    self._results.put(int(start), block[row].copy())
                computed += len(batch)
            self.windows_computed += computed
            return computed

    def _predict_batch(self, batch: np.ndarray) -> np.ndarray:
        """Issue one timed, logged ``predict`` call over ``batch``."""
        began = time.perf_counter()
        block = self.forecaster.predict(batch)
        self.predict_seconds += time.perf_counter() - began
        self.predict_calls += 1
        if self.batch_log is not None:
            self.batch_log.append(batch.copy())
        return block

    def enable_batch_log(self) -> None:
        """Start recording predict-batch compositions (idempotent)."""
        if self.batch_log is None:
            self.batch_log = deque(maxlen=BATCH_LOG_MAXLEN)

    def cached_block(self, start: int) -> np.ndarray | None:
        """Cache-only lookup: the stored block, or ``None`` on a miss.

        Deliberately takes no service lock (the engine cache is itself
        thread-safe): the scheduler's cache-hit fast path must not
        serialise behind an in-flight flush's ``predict`` call — hits
        matter most exactly while the worker is busy computing.  The
        service-level request counters don't move (the caller accounts
        for the hit in its own telemetry); the LRU's internal hit/miss
        counters do, so with a fast path in front each cold request
        shows up there as one extra probe miss.
        """
        value = self._results.get(int(start), _MISSING)
        return None if value is _MISSING else value

    def compute_one(self, start: int) -> np.ndarray:
        """Compute one window directly, bypassing the cache round-trip.

        The block is still written to the cache for future hits, but the
        return value does not depend on it surviving there — the
        eviction-proof fallback for :meth:`ForecastHandle.result`.
        """
        start = int(start)
        with self._lock:
            block = self._predict_batch(np.asarray([start], dtype=int))
            value = block[0].copy()
            self.windows_computed += 1
        self._results.put(start, value)
        return value

    # ------------------------------------------------------------------
    # Synchronous convenience API
    # ------------------------------------------------------------------
    def forecast(self, window_starts: np.ndarray) -> np.ndarray:
        """Batched forecasts for many (possibly duplicated) starts.

        Submits every start, flushes once, and assembles the
        ``(len(window_starts), horizon, N_u)`` result in request order —
        cache hits are served from memory, misses from the coalesced
        ``predict`` calls.
        """
        window_starts = np.asarray(window_starts, dtype=int).ravel()
        if window_starts.size == 0:
            # Validate *before* touching service state: an empty request
            # must not flush (and thus reorder) other callers' pending
            # submissions as a side effect of raising.
            raise InvalidRequest("forecast() needs at least one window start")
        with self._lock:  # atomic: no interleaved flush can split the batch
            handles = [self.submit(int(s)) for s in window_starts]
            self.flush()
            return np.stack([h.result() for h in handles], axis=0)

    @property
    def stats(self) -> dict:
        """Service counters plus the underlying result-cache stats.

        Deliberately lock-free: the intake lock is held across flushes
        (i.e. across model ``predict`` calls), and telemetry reads must
        not block behind a slow model.  Individual counter reads are
        atomic in CPython; a snapshot taken mid-flush may be a few
        requests stale, which monitoring tolerates.
        """
        requests = self.requests
        return {
            "requests": requests,
            "predict_calls": self.predict_calls,
            "windows_computed": self.windows_computed,
            "predict_seconds": self.predict_seconds,
            "cache_hits": self.cache_hits,
            "cache_hit_pct": 100.0 * self.cache_hits / requests if requests else 0.0,
            "coalesced": self.coalesced,
            "eviction_recomputes": self.eviction_recomputes,
            "cache": self._results.stats,
        }
