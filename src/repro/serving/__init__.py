"""Serving layer: batched, cached, scheduled forecasting on fitted models.

Four bricks toward the production system the ROADMAP aims at:

* :class:`ForecastService` — owns one fitted
  :class:`~repro.interfaces.Forecaster`, coalesces window-start requests
  into batched ``predict`` calls, and LRU-caches per-window results so
  repeated traffic never recomputes.
* :class:`MicroBatchScheduler` — accepts requests from many threads,
  micro-batches them (deadline + max-batch triggers) behind a bounded
  admission-controlled queue, and drains through the service on one
  background worker so concurrent callers batch with each other.
* :class:`ServingRuntime` — hosts many named fitted models (one
  scheduler each), routes requests by model key, and aggregates
  per-model latency/throughput/cache telemetry.
* :mod:`repro.serving.transport` — the wire: a versioned binary codec,
  a threaded HTTP/1.1 server over a runtime, a blocking
  :class:`~repro.serving.transport.ForecastClient`, and a multi-worker
  launcher (``python -m repro.serving serve``).

Failures share one public taxonomy (:mod:`repro.serving.errors`):
:class:`ServingError` with :class:`QueueFull` (retryable, HTTP 503),
:class:`ModelNotFound` (HTTP 404) and :class:`InvalidRequest`
(HTTP 400) — wire error frames map 1:1 to the in-process exceptions.

:mod:`repro.serving.loadgen` drives any of them with deterministic
seeded-Zipf multi-threaded traffic for benchmarking, in-process or over
the wire (:class:`~repro.serving.loadgen.WireDriver`).
"""

from .errors import InvalidRequest, ModelNotFound, QueueFull, ServingError
from .loadgen import LoadGenerator, LoadReport, LoadSpec, WireDriver
from .runtime import ServingRuntime
from .scheduler import AsyncForecast, LatencyRecorder, MicroBatchScheduler
from .service import ForecastHandle, ForecastService

__all__ = [
    "AsyncForecast",
    "ForecastHandle",
    "ForecastService",
    "InvalidRequest",
    "LatencyRecorder",
    "LoadGenerator",
    "LoadReport",
    "LoadSpec",
    "MicroBatchScheduler",
    "ModelNotFound",
    "QueueFull",
    "ServingError",
    "ServingRuntime",
    "WireDriver",
]
