"""Serving layer: batched, cached, scheduled forecasting on fitted models.

Three bricks toward the production system the ROADMAP aims at:

* :class:`ForecastService` — owns one fitted
  :class:`~repro.interfaces.Forecaster`, coalesces window-start requests
  into batched ``predict`` calls, and LRU-caches per-window results so
  repeated traffic never recomputes.
* :class:`MicroBatchScheduler` — accepts requests from many threads,
  micro-batches them (deadline + max-batch triggers) behind a bounded
  admission-controlled queue, and drains through the service on one
  background worker so concurrent callers batch with each other.
* :class:`ServingRuntime` — hosts many named fitted models (one
  scheduler each), routes requests by model key, and aggregates
  per-model latency/throughput/cache telemetry.

:mod:`repro.serving.loadgen` drives any of them with deterministic
seeded-Zipf multi-threaded traffic for benchmarking.
"""

from .loadgen import LoadGenerator, LoadReport, LoadSpec
from .runtime import ServingRuntime
from .scheduler import AsyncForecast, LatencyRecorder, MicroBatchScheduler, QueueFull
from .service import ForecastHandle, ForecastService

__all__ = [
    "AsyncForecast",
    "ForecastHandle",
    "ForecastService",
    "LatencyRecorder",
    "LoadGenerator",
    "LoadReport",
    "LoadSpec",
    "MicroBatchScheduler",
    "QueueFull",
    "ServingRuntime",
]
