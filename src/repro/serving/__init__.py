"""Serving layer: batched, cached forecasting on top of fitted models.

The first brick of the production-scale system the ROADMAP aims at:
:class:`ForecastService` owns a fitted :class:`~repro.interfaces.Forecaster`,
coalesces many window-start requests into batched ``predict`` calls, and
LRU-caches per-window results so repeated traffic never recomputes.
"""

from .service import ForecastHandle, ForecastService

__all__ = ["ForecastHandle", "ForecastService"]
