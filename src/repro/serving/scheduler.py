"""Micro-batching request scheduler: concurrent callers, batched predicts.

:class:`~repro.serving.ForecastService` coalesces requests only at
explicit :meth:`~repro.serving.ForecastService.flush` points, so two
threads asking for forecasts at the same instant each pay a full
``predict`` call.  :class:`MicroBatchScheduler` closes that gap: callers
from any thread :meth:`~MicroBatchScheduler.submit` window starts and
get a future-like :class:`AsyncForecast` back; a single background
worker thread collects whatever arrived within a short **micro-batch
deadline** (default 2 ms) — or dispatches early once **max_batch**
requests are queued — and drains the batch through the service's
cache+coalesce path in one flush.

Under concurrent load the worker is busy predicting while new requests
pile up, so batches form naturally and per-call overhead (graph setup,
batch padding, python dispatch) is amortised across the batch; the
deadline only matters when the system is idle, where it bounds the
latency a lone request pays waiting for company.

**Admission control.**  The queue is bounded (``max_queue``).  When it
is full, ``admission="block"`` makes ``submit`` wait for space
(backpressure propagates to callers), while ``admission="reject"``
raises :class:`QueueFull` immediately (shed load, keep latency flat).

**Zero-drift contract.**  All model access happens on the worker thread
through the owned :class:`ForecastService`, whose flush sorts and
dedups each batch before calling the model's own ``predict`` — so every
served block is bitwise a byte the caller could have produced with a
direct ``predict`` call, and cached repeats are bitwise stable.  The
scheduler adds concurrency and batching, never arithmetic.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future

import numpy as np

from ..interfaces import Forecaster
from ..obs.metrics import LATENCY_BUCKETS, Histogram
from ..obs.trace import TraceContext, record_span, use_trace
from .errors import InvalidRequest, QueueFull
from .service import ForecastService

__all__ = ["AsyncForecast", "LatencyRecorder", "MicroBatchScheduler", "QueueFull"]


class AsyncForecast:
    """Future-like handle for a request submitted to the scheduler.

    ``result()`` blocks until the worker thread has served the request
    (or raises the exception that killed its batch / the scheduler).
    """

    def __init__(self, start: int, future: Future) -> None:
        self.start = start
        self._future = future

    def done(self) -> bool:
        return self._future.done()

    def result(self, timeout: float | None = None) -> np.ndarray:
        return self._future.result(timeout)


class LatencyRecorder:
    """Fixed-bucket latency histogram with percentile readout.

    Built on the shared :class:`~repro.obs.metrics.Histogram` type
    (bucket bounds: :data:`~repro.obs.metrics.LATENCY_BUCKETS` —
    exponential 100 µs → 10 s, +inf overflow), so every recorded
    latency costs O(1) memory and the recorder never grows with load.
    ``count``/``mean``/``max`` are exact; p50/p95/p99 are estimated by
    linear interpolation inside the bucket holding the quantile rank —
    resolution is one bucket width, monotone by construction
    (p50 <= p95 <= p99 always).  Appends come from the scheduler worker
    thread and, when the cache-hit fast path is on, from submitter
    threads too; the histogram child's internal lock keeps counts
    exact.

    The ``histogram`` parameter lets a caller aim recordings at a
    registry-owned family child (the runtime labels one per model so
    ``GET /metrics`` exposes real latency buckets); by default the
    recorder owns a private anonymous histogram.
    """

    def __init__(self, histogram=None) -> None:
        self._hist = (
            histogram
            if histogram is not None
            else Histogram(
                "request_latency_seconds", "", buckets=LATENCY_BUCKETS
            ).labels()
        )

    @property
    def count(self) -> int:
        return self._hist.count

    @property
    def histogram(self):
        """The underlying histogram child (bucket exposition hooks)."""
        return self._hist

    def record(self, seconds: float) -> None:
        self._hist.observe(seconds)

    def summary(self) -> dict:
        """Latency percentiles in milliseconds (the shared summary shape)."""
        stats = self._hist.summary()
        if stats["count"] == 0:
            return {"count": 0, "p50_ms": None, "p95_ms": None, "p99_ms": None,
                    "mean_ms": None, "max_ms": None}
        return {
            "count": stats["count"],
            "p50_ms": 1e3 * stats["p50"],
            "p95_ms": 1e3 * stats["p95"],
            "p99_ms": 1e3 * stats["p99"],
            "mean_ms": 1e3 * stats["mean"],
            "max_ms": 1e3 * stats["max"],
        }


class _Request:
    __slots__ = ("start", "future", "enqueued_at", "trace")

    def __init__(self, start: int, future: Future, enqueued_at: float,
                 trace: TraceContext | None = None) -> None:
        self.start = start
        self.future = future
        self.enqueued_at = enqueued_at
        self.trace = trace


class MicroBatchScheduler:
    """Batch concurrent forecast requests through one worker thread.

    Parameters
    ----------
    forecaster:
        A fitted :class:`~repro.interfaces.Forecaster`, or an existing
        :class:`ForecastService` to drain through (its cache and
        counters are then shared with whoever else holds it).
    deadline_ms:
        Micro-batch window: how long the worker holds the first queued
        request open for companions before dispatching.  Smaller bounds
        idle-system latency; larger grows batches under light load.
    max_batch:
        Dispatch immediately once this many requests are queued (also
        the service's per-``predict`` chunk bound when the scheduler
        constructs the service itself).
    max_queue:
        Bound on queued (not yet dispatched) requests — the admission
        control limit.
    admission:
        ``"block"`` (default) parks ``submit`` callers until the queue
        has space; ``"reject"`` raises :class:`QueueFull` instead.
    cache_size:
        Result-cache capacity when the scheduler builds its own service.
        Passing it together with an existing service is an error (the
        service already owns a sized cache).
    log_batches:
        Parity-replay support: ``True`` enables the service's
        ``batch_log`` — also on an existing service that was built
        without one (never disables an already-active log).
    cache_fast_path:
        Serve result-cache hits directly on the submitting thread —
        zero queue hops, no worker-thread round trip, no admission wait.
        Off by default (the queue path preserves strict micro-batch
        telemetry semantics); the wire transport turns it on, where the
        two thread handoffs the queue costs per request dominate
        cache-hot serving.  Bytes are unchanged either way: a hit is the
        block the first computation cached.
    name:
        Label used for the worker thread and error messages.

    Note: when wrapping an existing service, the service's own
    ``max_batch_size`` still chunks each flush — the scheduler's
    ``max_batch`` only controls the dispatch trigger.
    """

    def __init__(
        self,
        forecaster: Forecaster | ForecastService,
        *,
        deadline_ms: float = 2.0,
        max_batch: int = 64,
        max_queue: int = 1024,
        admission: str = "block",
        cache_size: int | None = None,
        log_batches: bool = False,
        cache_fast_path: bool = False,
        name: str = "scheduler",
        latency_histogram=None,
    ) -> None:
        if deadline_ms < 0:
            raise ValueError(f"deadline_ms must be >= 0, got {deadline_ms}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if admission not in ("block", "reject"):
            raise ValueError(f"admission must be 'block' or 'reject', got {admission!r}")
        if isinstance(forecaster, ForecastService):
            if cache_size is not None:
                raise ValueError(
                    "cache_size cannot be applied to an existing ForecastService; "
                    "size its cache at construction instead"
                )
            self.service = forecaster
            if log_batches:
                self.service.enable_batch_log()
        else:
            self.service = ForecastService(
                forecaster,
                cache_size=256 if cache_size is None else cache_size,
                max_batch_size=max_batch,
                log_batches=log_batches,
            )
        self.deadline_s = deadline_ms / 1e3
        self.max_batch = max_batch
        self.max_queue = max_queue
        self.admission = admission
        self.cache_fast_path = cache_fast_path
        self.name = name

        self._cond = threading.Condition()
        self._queue: deque[_Request] = deque()
        self._in_flight = 0  # submitted but not yet completed/failed
        self._closed = False

        # Telemetry (mutated under self._cond, except latency appends
        # which only the worker thread performs).
        self.submitted = 0
        self.completed = 0
        self.rejected = 0
        self.failed = 0
        self.batches = 0
        self.batched_requests = 0
        self.fast_hits = 0
        self.peak_queue_depth = 0
        self.max_batch_observed = 0
        # latency_histogram: optionally a registry-owned histogram child
        # (the runtime labels one per model for /metrics exposition).
        self.latency = LatencyRecorder(histogram=latency_histogram)
        self._first_submit_at: float | None = None
        self._last_complete_at: float | None = None

        self._worker = threading.Thread(
            target=self._run, name=f"{name}-worker", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def submit(self, start: int,
               trace: TraceContext | None = None) -> AsyncForecast:
        """Enqueue one window-start request from any thread.

        With :attr:`cache_fast_path` on, a request whose window is
        already in the result cache is answered on this thread with a
        pre-resolved handle — it never touches the queue, so it cannot
        be rejected, shed, or delayed behind a forming micro-batch.

        ``trace`` threads a request's trace context through the worker:
        the dispatch records queue-wait / batch-dispatch / cache-lookup
        / predict child spans against it (see :mod:`repro.obs.trace`).
        """
        start = int(start)
        if self.cache_fast_path:
            lookup_began = time.monotonic() if trace is not None else 0.0
            value = self.service.cached_block(start)
            if value is not None:
                fast: Future = Future()
                fast.set_result(value)
                with self._cond:
                    if self._closed:
                        raise RuntimeError(f"{self.name} is shut down")
                    self.submitted += 1
                    self.completed += 1
                    self.fast_hits += 1
                    if self._first_submit_at is None:
                        self._first_submit_at = time.monotonic()
                    self._last_complete_at = time.monotonic()
                self.latency.record(0.0)
                if trace is not None:
                    record_span(
                        "scheduler.cache_fast_path", trace,
                        lookup_began, time.monotonic(),
                        model=self.name, start=start,
                    )
                return AsyncForecast(start, fast)
        future: Future = Future()
        with self._cond:
            if self._closed:
                raise RuntimeError(f"{self.name} is shut down")
            while len(self._queue) >= self.max_queue:
                if self.admission == "reject":
                    self.rejected += 1
                    raise QueueFull(
                        f"{self.name} queue is at capacity "
                        f"({self.max_queue}); request for window {start} rejected"
                    )
                self._cond.wait()
                if self._closed:
                    raise RuntimeError(f"{self.name} is shut down")
            now = time.monotonic()
            if self._first_submit_at is None:
                self._first_submit_at = now
            self._queue.append(_Request(start, future, now, trace))
            self.submitted += 1
            self._in_flight += 1
            if len(self._queue) > self.peak_queue_depth:
                self.peak_queue_depth = len(self._queue)
            self._cond.notify_all()
        return AsyncForecast(start, future)

    def forecast(self, window_starts: np.ndarray) -> np.ndarray:
        """Submit many starts and block for the stacked results.

        Convenience for synchronous callers: all requests enter the
        queue before the first result is awaited, so they micro-batch
        with each other (and with any other thread's traffic).
        """
        window_starts = np.asarray(window_starts, dtype=int).ravel()
        if window_starts.size == 0:
            raise InvalidRequest("forecast() needs at least one window start")
        handles = [self.submit(int(s)) for s in window_starts]
        return np.stack([h.result() for h in handles], axis=0)

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if self._closed and not self._queue:
                    return
                # Micro-batch window: hold the batch open until the
                # oldest request's deadline passes or it fills up.
                # Shutdown flushes immediately.
                deadline = self._queue[0].enqueued_at + self.deadline_s
                while len(self._queue) < self.max_batch and not self._closed:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._cond.wait(remaining)
                take = min(len(self._queue), self.max_batch)
                batch = [self._queue.popleft() for _ in range(take)]
                # Space freed: wake submitters blocked on admission.
                self._cond.notify_all()
            if batch:
                self._dispatch(batch)

    def _dispatch(self, batch: list[_Request]) -> None:
        served = 0
        dispatch_began = time.monotonic()
        traced = [req for req in batch if req.trace is not None]
        for req in traced:
            # Queue wait: measured from the submit-side enqueue stamp to
            # the moment the worker picked the batch up.
            record_span(
                "scheduler.queue_wait", req.trace,
                req.enqueued_at, dispatch_began,
                model=self.name, start=req.start,
            )
        # Shared batch work (cache lookup, predict, result pickup) runs
        # once for the whole batch; the store's ambient trace context
        # follows the *first* traced request — a batch mixing several
        # traces attributes shared store spans to that one (documented
        # in DESIGN.md §15).
        ambient = traced[0].trace if traced else None
        try:
            with use_trace(ambient):
                lookup_began = time.monotonic()
                handles = [(req, self.service.submit(req.start)) for req in batch]
                lookup_ended = time.monotonic()
                self.service.flush()
                predict_ended = time.monotonic()
                results = [(req, handle.result()) for req, handle in handles]
            now = time.monotonic()
            for req in traced:
                parent = record_span(
                    "scheduler.batch_dispatch", req.trace,
                    dispatch_began, now,
                    model=self.name, batch_size=len(batch),
                )
                record_span("service.cache_lookup", parent,
                            lookup_began, lookup_ended, batch_size=len(batch))
                record_span("service.predict", parent,
                            lookup_ended, predict_ended, batch_size=len(batch))
            for req, value in results:
                self.latency.record(now - req.enqueued_at)
                req.future.set_result(value)
                served += 1
        except BaseException as exc:  # noqa: BLE001 — propagate to callers
            for req in batch:
                if not req.future.done():
                    req.future.set_exception(exc)
        finally:
            with self._cond:
                self._in_flight -= len(batch)
                self.completed += served
                self.failed += len(batch) - served
                self.batches += 1
                self.batched_requests += len(batch)
                if len(batch) > self.max_batch_observed:
                    self.max_batch_observed = len(batch)
                if served:
                    self._last_complete_at = time.monotonic()
                self._cond.notify_all()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def drain(self, timeout: float | None = None) -> bool:
        """Block until every submitted request has completed or failed."""
        with self._cond:
            return self._cond.wait_for(lambda: self._in_flight == 0, timeout)

    def shutdown(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the scheduler.  Idempotent.

        ``drain=True`` (default) closes intake, serves everything
        already queued, then joins the worker.  ``drain=False`` fails
        all still-queued requests with ``RuntimeError`` and returns as
        soon as the worker exits (a batch already being predicted still
        completes).
        """
        with self._cond:
            if not self._closed:
                self._closed = True
                if not drain:
                    abandoned = list(self._queue)
                    self._queue.clear()
                    self._in_flight -= len(abandoned)
                    self.failed += len(abandoned)
                    for req in abandoned:
                        req.future.set_exception(
                            RuntimeError(f"{self.name} shut down before serving window {req.start}")
                        )
            self._cond.notify_all()
        if drain:
            self.drain(timeout)
        self._worker.join(timeout)

    def __enter__(self) -> "MicroBatchScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        with self._cond:
            return len(self._queue)

    @property
    def throughput_rps(self) -> float | None:
        """Completed requests per second, first submit → last completion."""
        with self._cond:
            if self._first_submit_at is None or self._last_complete_at is None:
                return None
            elapsed = self._last_complete_at - self._first_submit_at
            if elapsed <= 0:
                return None
            return self.completed / elapsed

    @property
    def stats(self) -> dict:
        with self._cond:
            snapshot = {
                "submitted": self.submitted,
                "completed": self.completed,
                "rejected": self.rejected,
                "failed": self.failed,
                "batches": self.batches,
                "fast_hits": self.fast_hits,
                "avg_batch_size": (
                    self.batched_requests / self.batches if self.batches else 0.0
                ),
                "max_batch_observed": self.max_batch_observed,
                "queue_depth": len(self._queue),
                "peak_queue_depth": self.peak_queue_depth,
                # Condition's default lock is an RLock, so the property
                # can re-enter it.
                "throughput_rps": self.throughput_rps,
            }
        snapshot["latency"] = self.latency.summary()
        snapshot["service"] = self.service.stats
        return snapshot
