"""Multi-model serving runtime: named forecasters behind one front door.

The paper evaluates across several regions and datasets at once; a
production deployment of this system hosts one fitted forecaster per
(region, dataset, backend) combination, not one.  :class:`ServingRuntime`
is that host: models register under string keys, each gets its own
:class:`~repro.serving.MicroBatchScheduler` (so one hot model's queue
cannot head-of-line-block another's), and requests route by key.

Lifecycle per model: ``register`` (builds the scheduler, model must be
fitted) → optional ``warm_up`` (pre-populates the result cache through
the real serving path) → traffic via ``submit``/``forecast`` →
``drain`` (barrier: all accepted requests served) → runtime-wide
``shutdown``.  The runtime is a context manager; exiting shuts every
scheduler down.

``stats()`` aggregates per-model serving telemetry — throughput,
p50/p95/p99 latency, queue depth, batch shape, cache-hit rate — plus a
``totals`` rollup, ready for the load benchmark's report and the timing
tables.
"""

from __future__ import annotations

import threading

import numpy as np

from ..interfaces import Forecaster
from .errors import ModelNotFound
from .scheduler import AsyncForecast, MicroBatchScheduler
from .service import ForecastService

__all__ = ["ServingRuntime"]


class ServingRuntime:
    """Host many fitted forecasters and route requests by model key.

    Constructor arguments become the default scheduler settings for
    every registered model; :meth:`register` accepts per-model
    overrides (a region with spiky traffic can run a deeper queue or a
    ``reject`` admission policy without affecting the others).
    """

    def __init__(
        self,
        *,
        deadline_ms: float = 2.0,
        max_batch: int = 64,
        max_queue: int = 1024,
        admission: str = "block",
        cache_size: int | None = None,
        log_batches: bool = False,
        cache_fast_path: bool = False,
    ) -> None:
        self._defaults = {
            "deadline_ms": deadline_ms,
            "max_batch": max_batch,
            "max_queue": max_queue,
            "admission": admission,
            "cache_size": cache_size,
            "log_batches": log_batches,
            "cache_fast_path": cache_fast_path,
        }
        self._schedulers: dict[str, MicroBatchScheduler] = {}
        self._lock = threading.Lock()
        self._closed = False
        # Number of drain() calls currently in flight.  register() and
        # shutdown() during a drain would mutate the scheduler map the
        # drain is iterating over (a new model would silently escape the
        # barrier; a shutdown would fail requests the drain promised to
        # serve), so both raise while this is non-zero.
        self._draining = 0

    # ------------------------------------------------------------------
    # Registration and lookup
    # ------------------------------------------------------------------
    def register(
        self,
        key: str,
        forecaster: Forecaster | ForecastService,
        **overrides,
    ) -> MicroBatchScheduler:
        """Host ``forecaster`` (fitted) under ``key``; returns its scheduler."""
        key = str(key)
        with self._lock:
            if self._closed:
                raise RuntimeError("runtime is shut down")
            if self._draining:
                raise RuntimeError(
                    f"cannot register {key!r} while a drain() is in flight; "
                    "wait for the drain barrier to release"
                )
            if key in self._schedulers:
                raise ValueError(f"model key {key!r} is already registered")
            settings = {**self._defaults, **overrides}
            if isinstance(forecaster, ForecastService) and "cache_size" not in overrides:
                # A pre-built service owns its cache; only an explicit
                # per-model override should reach (and fail) the
                # scheduler's incompatibility check.
                settings.pop("cache_size", None)
            scheduler = MicroBatchScheduler(forecaster, name=f"serve[{key}]", **settings)
            self._schedulers[key] = scheduler
            return scheduler

    def scheduler(self, key: str) -> MicroBatchScheduler:
        with self._lock:
            return self._scheduler_locked(key)

    def _scheduler_locked(self, key: str) -> MicroBatchScheduler:
        try:
            return self._schedulers[key]
        except KeyError:
            raise ModelNotFound(
                f"unknown model key {key!r}; registered: {sorted(self._schedulers)}"
            ) from None

    @property
    def models(self) -> list[str]:
        with self._lock:
            return sorted(self._schedulers)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._schedulers

    # ------------------------------------------------------------------
    # Traffic
    # ------------------------------------------------------------------
    def submit(self, key: str, start: int) -> AsyncForecast:
        """Route one window-start request to the model hosted as ``key``."""
        return self.scheduler(key).submit(start)

    def forecast(self, key: str, window_starts: np.ndarray) -> np.ndarray:
        """Synchronous batched forecasts from one hosted model."""
        return self.scheduler(key).forecast(window_starts)

    def warm_up(self, key: str, window_starts: np.ndarray) -> int:
        """Pre-populate a model's result cache through the serving path.

        Runs the windows through the model's own scheduler (same
        batching, same flush ordering), so warmed entries are bitwise
        the entries live traffic would have produced.  Returns the
        number of windows now cached.
        """
        scheduler = self.scheduler(key)
        window_starts = np.asarray(window_starts, dtype=int).ravel()
        if window_starts.size:
            handles = [scheduler.submit(int(s)) for s in window_starts]
            for handle in handles:
                handle.result()
        return len(scheduler.service._results)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def drain(self, key: str | None = None, timeout: float | None = None) -> bool:
        """Barrier until accepted requests are served (one model or all).

        While the barrier is in flight, :meth:`register` and
        :meth:`shutdown` raise ``RuntimeError`` — mutating the scheduler
        map mid-drain would let a new model escape the barrier or fail
        requests the drain promised to serve.
        """
        with self._lock:
            schedulers = (
                list(self._schedulers.values())
                if key is None
                else [self._scheduler_locked(key)]
            )
            self._draining += 1
        try:
            ok = True
            for scheduler in schedulers:
                ok = scheduler.drain(timeout) and ok
            return ok
        finally:
            with self._lock:
                self._draining -= 1

    def shutdown(self, drain: bool = True, timeout: float | None = None) -> None:
        """Shut down every hosted scheduler.  Idempotent."""
        with self._lock:
            if self._draining:
                raise RuntimeError(
                    "cannot shut down while a drain() is in flight; "
                    "wait for the drain barrier to release"
                )
            self._closed = True
        for scheduler in self._snapshot():
            scheduler.shutdown(drain=drain, timeout=timeout)

    def _snapshot(self) -> list[MicroBatchScheduler]:
        with self._lock:
            return list(self._schedulers.values())

    def __enter__(self) -> "ServingRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def stats(self, key: str | None = None) -> dict:
        """Serving telemetry for one model, or all models plus totals."""
        if key is not None:
            return self.scheduler(key).stats
        with self._lock:
            per_model = {k: s.stats for k, s in self._schedulers.items()}
        fast_hits = sum(s["fast_hits"] for s in per_model.values())
        totals = {
            "models": len(per_model),
            "submitted": sum(s["submitted"] for s in per_model.values()),
            "completed": sum(s["completed"] for s in per_model.values()),
            "rejected": sum(s["rejected"] for s in per_model.values()),
            "failed": sum(s["failed"] for s in per_model.values()),
            "batches": sum(s["batches"] for s in per_model.values()),
            "fast_hits": fast_hits,
            "queue_depth": sum(s["queue_depth"] for s in per_model.values()),
            # Fast-path hits never reach the service's counters, so the
            # rollup adds them to both the hit count and the request
            # denominator to keep the hit rate meaningful.
            "cache_hits": fast_hits
            + sum(s["service"]["cache_hits"] for s in per_model.values()),
            "windows_computed": sum(
                s["service"]["windows_computed"] for s in per_model.values()
            ),
            # Post-flush evictions that forced a recompute: real misses
            # under a shared bounded store, surfaced so serving hit-rate
            # dashboards don't over-report.
            "eviction_recomputes": sum(
                s["service"]["eviction_recomputes"] for s in per_model.values()
            ),
        }
        requests = fast_hits + sum(
            s["service"]["requests"] for s in per_model.values()
        )
        totals["cache_hit_pct"] = (
            100.0 * totals["cache_hits"] / requests if requests else 0.0
        )
        return {"models": per_model, "totals": totals}
