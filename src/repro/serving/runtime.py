"""Multi-model serving runtime: named forecasters behind one front door.

The paper evaluates across several regions and datasets at once; a
production deployment of this system hosts one fitted forecaster per
(region, dataset, backend) combination, not one.  :class:`ServingRuntime`
is that host: models register under string keys, each gets its own
:class:`~repro.serving.MicroBatchScheduler` (so one hot model's queue
cannot head-of-line-block another's), and requests route by key.

Lifecycle per model: ``register`` (builds the scheduler, model must be
fitted) → optional ``warm_up`` (pre-populates the result cache through
the real serving path) → traffic via ``submit``/``forecast`` →
``drain`` (barrier: all accepted requests served) → runtime-wide
``shutdown``.  The runtime is a context manager; exiting shuts every
scheduler down.

``stats()`` aggregates per-model serving telemetry — throughput,
p50/p95/p99 latency, queue depth, batch shape, cache-hit rate — plus a
``totals`` rollup, ready for the load benchmark's report and the timing
tables.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from ..interfaces import Forecaster
from ..obs.metrics import LATENCY_BUCKETS, MetricsRegistry
from ..obs.trace import TraceContext
from .errors import InvalidRequest, ModelNotFound, ServingError
from .scheduler import AsyncForecast, MicroBatchScheduler
from .service import ForecastService

__all__ = ["ServingRuntime"]

#: Swap records retained for telemetry (the counters never reset).
_SWAP_HISTORY_MAXLEN = 64


class ServingRuntime:
    """Host many fitted forecasters and route requests by model key.

    Constructor arguments become the default scheduler settings for
    every registered model; :meth:`register` accepts per-model
    overrides (a region with spiky traffic can run a deeper queue or a
    ``reject`` admission policy without affecting the others).
    """

    def __init__(
        self,
        *,
        deadline_ms: float = 2.0,
        max_batch: int = 64,
        max_queue: int = 1024,
        admission: str = "block",
        cache_size: int | None = None,
        log_batches: bool = False,
        cache_fast_path: bool = False,
    ) -> None:
        self._defaults = {
            "deadline_ms": deadline_ms,
            "max_batch": max_batch,
            "max_queue": max_queue,
            "admission": admission,
            "cache_size": cache_size,
            "log_batches": log_batches,
            "cache_fast_path": cache_fast_path,
        }
        self._schedulers: dict[str, MicroBatchScheduler] = {}
        self._lock = threading.Lock()
        self._closed = False
        # Number of drain() calls currently in flight.  register() and
        # shutdown() during a drain would mutate the scheduler map the
        # drain is iterating over (a new model would silently escape the
        # barrier; a shutdown would fail requests the drain promised to
        # serve), so both raise while this is non-zero.
        self._draining = 0
        # Blue/green swap telemetry: per-key swap counts, bounded swap
        # records, and the final counters of every retired scheduler
        # (folded per key so "every submitted request completed" stays
        # checkable across swaps — a live scheduler's stats start over).
        self._swap_counts: dict[str, int] = {}
        self._swap_history: list[dict] = []
        self._retired: dict[str, dict] = {}
        # Extra /v1/stats sections: an attached ArtifactStore surfaces
        # cache telemetry, named providers (e.g. the streaming bridge's
        # refit-lag stats) contribute their own top-level sections.
        self._store = None
        self._stats_sources: dict[str, object] = {}
        # Per-runtime metrics registry: hand-rolled scheduler/service/
        # store counters publish through a scrape-time collector (zero
        # hot-path cost); per-model latency histograms are real
        # registry instruments the schedulers record into.  Rendered by
        # the HTTP server's GET /metrics and embedded as the `metrics`
        # section of stats().
        self.metrics = MetricsRegistry()
        self.metrics.register_collector("runtime", self._metric_samples)
        self._latency_family = self.metrics.histogram(
            "repro_request_latency_seconds",
            "End-to-end scheduler latency per served request",
            ("model",),
            buckets=LATENCY_BUCKETS,
        )

    # ------------------------------------------------------------------
    # Registration and lookup
    # ------------------------------------------------------------------
    def register(
        self,
        key: str,
        forecaster: Forecaster | ForecastService,
        *,
        replace: bool = False,
        drain_timeout: float | None = None,
        **overrides,
    ) -> MicroBatchScheduler:
        """Host ``forecaster`` (fitted) under ``key``; returns its scheduler.

        With ``replace=True`` an existing registration is blue/green
        swapped: the new scheduler is built and atomically installed
        under the key (new requests route to it from that instant), then
        the old scheduler is drained — every request it already accepted
        is served by the old model — and shut down.  A request that
        races the swap and reaches the old scheduler after its intake
        closed is transparently resubmitted to the new one by
        :meth:`submit`, so no request is ever dropped across a swap.
        The retired scheduler's final counters are folded into the
        ``swaps`` telemetry section (a fresh scheduler's stats start
        over).  ``replace=True`` with no existing registration is an
        ordinary register.
        """
        key = str(key)
        with self._lock:
            if self._closed:
                raise RuntimeError("runtime is shut down")
            if self._draining:
                raise RuntimeError(
                    f"cannot register {key!r} while a drain() is in flight; "
                    "wait for the drain barrier to release"
                )
            old = self._schedulers.get(key)
            if old is not None and not replace:
                raise ValueError(
                    f"model key {key!r} is already registered "
                    "(pass replace=True to blue/green swap it)"
                )
            settings = {**self._defaults, **overrides}
            if isinstance(forecaster, ForecastService) and "cache_size" not in overrides:
                # A pre-built service owns its cache; only an explicit
                # per-model override should reach (and fail) the
                # scheduler's incompatibility check.
                settings.pop("cache_size", None)
            # The latency histogram child is keyed by model, not by
            # scheduler instance: a blue/green swap's replacement
            # scheduler records into the same child, so histogram
            # counts stay monotone across swaps (Prometheus semantics).
            scheduler = MicroBatchScheduler(
                forecaster,
                name=f"serve[{key}]",
                latency_histogram=self._latency_family.labels(model=key),
                **settings,
            )
            # The atomic swap: from here on submit() routes to the new
            # scheduler.  The old one still owes every request it
            # accepted; it is drained below, outside the lock, so the
            # swap never blocks routing.
            self._schedulers[key] = scheduler
        if old is not None:
            drain_started = time.monotonic()
            old.shutdown(drain=True, timeout=drain_timeout)
            drain_seconds = time.monotonic() - drain_started
            final = old.stats
            with self._lock:
                self._swap_counts[key] = self._swap_counts.get(key, 0) + 1
                retired = self._retired.setdefault(
                    key,
                    {k: 0 for k in ("submitted", "completed", "rejected",
                                    "failed", "fast_hits", "batches")},
                )
                for field in retired:
                    retired[field] += final[field]
                self._swap_history.append({
                    "model": key,
                    "swap": self._swap_counts[key],
                    "at": time.time(),
                    "drain_seconds": drain_seconds,
                    "retired_completed": final["completed"],
                    "retired_failed": final["failed"],
                })
                del self._swap_history[:-_SWAP_HISTORY_MAXLEN]
        return scheduler

    def scheduler(self, key: str) -> MicroBatchScheduler:
        with self._lock:
            return self._scheduler_locked(key)

    def _scheduler_locked(self, key: str) -> MicroBatchScheduler:
        try:
            return self._schedulers[key]
        except KeyError:
            raise ModelNotFound(
                f"unknown model key {key!r}; registered: {sorted(self._schedulers)}"
            ) from None

    @property
    def models(self) -> list[str]:
        with self._lock:
            return sorted(self._schedulers)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._schedulers

    # ------------------------------------------------------------------
    # Traffic
    # ------------------------------------------------------------------
    def submit(
        self, key: str, start: int, trace: TraceContext | None = None
    ) -> AsyncForecast:
        """Route one window-start request to the model hosted as ``key``.

        ``trace`` (optional) is the request's trace context; the
        scheduler records queue-wait/dispatch/cache/predict spans
        under it when set.

        Swap-safe: a submit that races a ``register(..., replace=True)``
        and reaches the outgoing scheduler after its intake closed is
        retried against whichever scheduler the key routes to now, so a
        blue/green swap can never drop a request.  A genuine shutdown
        (the closed scheduler is still the registered one) re-raises.
        """
        while True:
            scheduler = self.scheduler(key)
            try:
                return scheduler.submit(start, trace=trace)
            except RuntimeError as error:
                if isinstance(error, ServingError):
                    raise  # QueueFull etc. — admission policy, not a swap
                with self._lock:
                    current = self._schedulers.get(key)
                if current is None or current is scheduler:
                    raise

    def forecast(self, key: str, window_starts: np.ndarray) -> np.ndarray:
        """Synchronous batched forecasts from one hosted model."""
        window_starts = np.asarray(window_starts, dtype=int).ravel()
        if window_starts.size == 0:
            raise InvalidRequest("forecast() needs at least one window start")
        handles = [self.submit(key, int(s)) for s in window_starts]
        return np.stack([h.result() for h in handles], axis=0)

    def warm_up(self, key: str, window_starts: np.ndarray) -> int:
        """Pre-populate a model's result cache through the serving path.

        Runs the windows through the model's own scheduler (same
        batching, same flush ordering), so warmed entries are bitwise
        the entries live traffic would have produced.  Returns the
        number of windows now cached.
        """
        window_starts = np.asarray(window_starts, dtype=int).ravel()
        if window_starts.size:
            handles = [self.submit(key, int(s)) for s in window_starts]
            for handle in handles:
                handle.result()
        return len(self.scheduler(key).service._results)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def drain(self, key: str | None = None, timeout: float | None = None) -> bool:
        """Barrier until accepted requests are served (one model or all).

        While the barrier is in flight, :meth:`register` and
        :meth:`shutdown` raise ``RuntimeError`` — mutating the scheduler
        map mid-drain would let a new model escape the barrier or fail
        requests the drain promised to serve.
        """
        with self._lock:
            schedulers = (
                list(self._schedulers.values())
                if key is None
                else [self._scheduler_locked(key)]
            )
            self._draining += 1
        try:
            ok = True
            for scheduler in schedulers:
                ok = scheduler.drain(timeout) and ok
            return ok
        finally:
            with self._lock:
                self._draining -= 1

    def shutdown(self, drain: bool = True, timeout: float | None = None) -> None:
        """Shut down every hosted scheduler.  Idempotent."""
        with self._lock:
            if self._draining:
                raise RuntimeError(
                    "cannot shut down while a drain() is in flight; "
                    "wait for the drain barrier to release"
                )
            self._closed = True
        for scheduler in self._snapshot():
            scheduler.shutdown(drain=drain, timeout=timeout)

    def _snapshot(self) -> list[MicroBatchScheduler]:
        with self._lock:
            return list(self._schedulers.values())

    def __enter__(self) -> "ServingRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def attach_store(self, store) -> None:
        """Surface an :class:`~repro.engine.ArtifactStore`'s counters.

        The attached store's per-namespace stats (entries, bytes,
        hit/miss counters) appear under a ``store`` key in :meth:`stats`
        — and therefore on the wire at ``GET /v1/stats`` — so serving
        and cache telemetry land in one place.
        """
        with self._lock:
            self._store = store

    def add_stats_source(self, name: str, provider) -> None:
        """Register a callable contributing a named :meth:`stats` section.

        ``provider()`` is invoked on every full ``stats()`` read; the
        streaming bridge uses this to publish refit-lag and swap
        telemetry.  Reserved section names (``models``, ``totals``,
        ``store``, ``swaps``, ``metrics``) are rejected.
        """
        if name in ("models", "totals", "store", "swaps", "metrics"):
            raise ValueError(f"stats section name {name!r} is reserved")
        with self._lock:
            self._stats_sources[name] = provider

    def stats(self, key: str | None = None) -> dict:
        """Serving telemetry for one model, or all models plus totals.

        The full (keyless) form carries optional sections beyond
        ``models``/``totals``: ``swaps`` (blue/green swap history and
        retired-scheduler counters) once a replace has happened,
        ``store`` when an artifact store is attached, plus one section
        per :meth:`add_stats_source` provider.
        """
        if key is not None:
            return self.scheduler(key).stats
        with self._lock:
            per_model = {k: s.stats for k, s in self._schedulers.items()}
        fast_hits = sum(s["fast_hits"] for s in per_model.values())
        totals = {
            "models": len(per_model),
            "submitted": sum(s["submitted"] for s in per_model.values()),
            "completed": sum(s["completed"] for s in per_model.values()),
            "rejected": sum(s["rejected"] for s in per_model.values()),
            "failed": sum(s["failed"] for s in per_model.values()),
            "batches": sum(s["batches"] for s in per_model.values()),
            "fast_hits": fast_hits,
            "queue_depth": sum(s["queue_depth"] for s in per_model.values()),
            # Fast-path hits never reach the service's counters, so the
            # rollup adds them to both the hit count and the request
            # denominator to keep the hit rate meaningful.
            "cache_hits": fast_hits
            + sum(s["service"]["cache_hits"] for s in per_model.values()),
            "windows_computed": sum(
                s["service"]["windows_computed"] for s in per_model.values()
            ),
            # Post-flush evictions that forced a recompute: real misses
            # under a shared bounded store, surfaced so serving hit-rate
            # dashboards don't over-report.
            "eviction_recomputes": sum(
                s["service"]["eviction_recomputes"] for s in per_model.values()
            ),
        }
        requests = fast_hits + sum(
            s["service"]["requests"] for s in per_model.values()
        )
        totals["cache_hit_pct"] = (
            100.0 * totals["cache_hits"] / requests if requests else 0.0
        )
        result = {"models": per_model, "totals": totals}
        with self._lock:
            store = self._store
            sources = dict(self._stats_sources)
            if self._swap_history:
                retired_totals = {
                    field: sum(r[field] for r in self._retired.values())
                    for field in ("submitted", "completed", "rejected",
                                  "failed", "fast_hits", "batches")
                }
                result["swaps"] = {
                    "count": sum(self._swap_counts.values()),
                    "by_model": dict(self._swap_counts),
                    "retired": retired_totals,
                    "history": [dict(r) for r in self._swap_history],
                }
        if store is not None:
            # A wedged store (corrupt manifest, dead disk) must degrade
            # to an error stanza, not take /v1/stats down with it.
            try:
                result["store"] = store.stats
            except Exception as error:  # noqa: BLE001 — stats must not 500
                result["store"] = {"error": f"{type(error).__name__}: {error}"}
        for name, provider in sources.items():
            try:
                result[name] = provider()
            except Exception as error:  # noqa: BLE001 — stats must not 500
                result[name] = {"error": f"{type(error).__name__}: {error}"}
        result["metrics"] = self.metrics.as_dict()
        return result

    def _metric_samples(self):
        """Scrape-time samples for the ``runtime`` collector.

        Reads the live schedulers' counter snapshots (and the attached
        store's, if any) directly — never through :meth:`stats`, which
        itself embeds this registry's output (recursion hazard).
        Retired-scheduler counters fold in so totals stay monotone
        across blue/green swaps.
        """
        with self._lock:
            per_model = {k: s.stats for k, s in self._schedulers.items()}
            retired = {k: dict(r) for k, r in self._retired.items()}
            swap_counts = dict(self._swap_counts)
            store = self._store
        counter_names = {
            "submitted": "repro_requests_submitted_total",
            "completed": "repro_requests_completed_total",
            "rejected": "repro_requests_rejected_total",
            "failed": "repro_requests_failed_total",
            "batches": "repro_batches_total",
            "fast_hits": "repro_fast_hits_total",
        }
        service_names = {
            "cache_hits": "repro_cache_hits_total",
            "windows_computed": "repro_windows_computed_total",
            "coalesced": "repro_coalesced_total",
            "predict_calls": "repro_predict_calls_total",
            "predict_seconds": "repro_predict_seconds_total",
        }
        for key, snap in per_model.items():
            folded = retired.get(key, {})
            for field, name in counter_names.items():
                yield (name, {"model": key},
                       snap[field] + folded.get(field, 0))
            yield ("repro_queue_depth", {"model": key}, snap["queue_depth"])
            service = snap.get("service") or {}
            for field, name in service_names.items():
                if field in service:
                    yield (name, {"model": key}, service[field])
        for key, count in swap_counts.items():
            yield ("repro_swaps_total", {"model": key}, count)
        if store is not None:
            # One shared producer for every repro_store_* surface (hit
            # and byte counters plus PR 10 lifecycle telemetry) — the
            # process registry's collector yields the same names.
            from ..engine.store import store_metric_samples

            try:
                yield from store_metric_samples(store)
            except Exception:  # noqa: BLE001 — scrape must not fail
                pass
