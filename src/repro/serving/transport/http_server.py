"""Threaded HTTP/1.1 front door over a :class:`~repro.serving.ServingRuntime`.

Endpoints (bodies on ``POST`` routes are codec frames, see
:mod:`~repro.serving.transport.codec`):

* ``POST /v1/forecast/<model>`` — one window start -> ``(horizon, N_u)``
  array frame.
* ``POST /v1/forecast_many/<model>`` — many starts ->
  ``(k, horizon, N_u)`` array frame.
* ``GET /v1/models`` — JSON: hosted model keys + readiness.
* ``GET /healthz`` — JSON liveness; 503 until the worker is warmed and
  marked ready.
* ``GET /v1/stats`` — JSON: runtime telemetry (per-model p50/p95/p99,
  queue depth, cache hits) + transport counters + worker label.
* ``GET /v1/batch_log/<model>`` — JSON: logged predict-batch
  compositions (parity certification; 404 when the model's service has
  logging off).

Failures on forecast routes come back as structured **error frames**
with the HTTP status from :data:`~repro.serving.transport.codec.ERROR_CODES`
— ``queue_full``/``not_ready`` are 503 (retryable), ``model_not_found``
404, ``invalid_request``/``codec_error`` 400, ``body_too_large`` 413 —
so a wire client raises exactly the exception an in-process caller
would.

Concurrency model: ``http.server.ThreadingHTTPServer`` — one daemon
thread per connection (HTTP/1.1 keep-alive makes that one thread per
*client*), all submitting into the runtime's per-model micro-batch
schedulers, so concurrent wire requests batch with each other exactly
like in-process threads do.  ``reuse_port=True`` sets ``SO_REUSEPORT``
before bind so N independent worker *processes* can share one port with
kernel load balancing (the multi-worker launcher's scale-out path).
"""

from __future__ import annotations

import json
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, unquote

import numpy as np

from ...obs.metrics import global_registry, render_prometheus
from ...obs.trace import TraceContext, get_recorder, mint_span_id
from ..errors import InvalidRequest, ServingError
from ..runtime import ServingRuntime
from . import codec

__all__ = ["ForecastHTTPServer", "DEFAULT_MAX_BODY_BYTES"]

#: Request bodies above this are refused with a 413 ``body_too_large``
#: frame.  Forecast requests are tiny (a JSON list of ints); anything
#: near this bound is a mistake or an attack.
DEFAULT_MAX_BODY_BYTES = 1 << 20


class _TransportCounters:
    """Thread-safe request/byte counters for ``/v1/stats``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests = 0
        self.errors = 0
        self.bytes_in = 0
        self.bytes_out = 0

    def account(self, *, bytes_in: int, bytes_out: int, error: bool) -> None:
        with self._lock:
            self.requests += 1
            self.errors += int(error)
            self.bytes_in += bytes_in
            self.bytes_out += bytes_out

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "requests": self.requests,
                "errors": self.errors,
                "bytes_in": self.bytes_in,
                "bytes_out": self.bytes_out,
            }


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"  # keep-alive: clients reuse connections
    server_version = "repro-serving/1"
    #: Socket timeout so a dead keep-alive connection releases its thread.
    timeout = 60.0
    # Response headers and frame body are separate writes; with Nagle on
    # the body can sit behind the peer's delayed ACK (~40 ms per request
    # on loopback).  Serving is latency-bound: send segments immediately.
    disable_nagle_algorithm = True

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    @property
    def app(self) -> "ForecastHTTPServer":
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # per-request stderr lines would swamp benchmark output

    def _send(self, status: int, content_type: str, body: bytes,
              *, bytes_in: int = 0) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        self.app.counters.account(
            bytes_in=bytes_in, bytes_out=len(body), error=status >= 400
        )

    def _send_json(self, status: int, payload: dict) -> None:
        self._send(status, "application/json", json.dumps(payload).encode("utf-8"))

    def _send_frame(self, status: int, payload: bytes, *, bytes_in: int) -> None:
        """Write one frame response; a failed write (stalled or vanished
        client) must only drop the connection — emitting a second
        response after partial output would corrupt the keep-alive
        stream."""
        try:
            self._send(status, codec.CONTENT_TYPE, payload, bytes_in=bytes_in)
        except OSError:  # BrokenPipe/ConnectionReset/socket timeout
            self.close_connection = True

    # ------------------------------------------------------------------
    # GET routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 — http.server API
        path = self.path.split("?", 1)[0]
        app = self.app
        if path == "/healthz":
            ready = app.ready
            self._send_json(200 if ready else 503, {
                "status": "ok" if ready else "starting",
                "ready": ready,
                "worker": app.worker_label,
                "models": app.runtime.models,
            })
        elif path == "/v1/models":
            self._send_json(200, {"models": app.runtime.models, "ready": app.ready})
        elif path == "/v1/stats":
            self._send_json(200, {
                "worker": app.worker_label,
                "ready": app.ready,
                "transport": app.counters.snapshot(),
                "runtime": app.runtime.stats(),
            })
        elif path == "/metrics":
            body = render_prometheus(
                app.runtime.metrics, global_registry()
            ).encode("utf-8")
            self._send(200, "text/plain; version=0.0.4; charset=utf-8", body)
        elif path == "/v1/traces":
            query = parse_qs(self.path.partition("?")[2])
            trace_id = (query.get("trace") or [None])[0]
            body = get_recorder().to_jsonl(trace_id).encode("utf-8")
            self._send(200, "application/x-ndjson", body)
        elif path.startswith("/v1/batch_log/"):
            self._batch_log(unquote(path[len("/v1/batch_log/"):]))
        else:
            self._send_json(404, {"error": f"unknown path {path!r}"})

    def _batch_log(self, model: str) -> None:
        try:
            service = self.app.runtime.scheduler(model).service
        except ServingError as exc:
            self._send_json(404, {"error": str(exc)})
            return
        if service.batch_log is None:
            self._send_json(404, {"error": f"batch logging is off for {model!r}"})
            return
        batches = [[int(s) for s in batch] for batch in service.batch_log]
        self._send_json(200, {"model": model, "batches": batches})

    # ------------------------------------------------------------------
    # POST routes (frame bodies)
    # ------------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 — http.server API
        path = self.path.split("?", 1)[0]
        if path.startswith("/v1/forecast_many/"):
            self._forecast(unquote(path[len("/v1/forecast_many/"):]), single=False)
        elif path.startswith("/v1/forecast/"):
            self._forecast(unquote(path[len("/v1/forecast/"):]), single=True)
        else:
            # The unread request body would desync keep-alive parsing.
            self.close_connection = True
            self._send_json(404, {"error": f"unknown path {path!r}"})

    def _read_body(self) -> bytes:
        length = self.headers.get("Content-Length")
        if length is None:
            # Without a length the stream position after this request is
            # unknowable — an error reply must also drop the connection,
            # or the next keep-alive request would parse from stale bytes.
            self.close_connection = True
            raise InvalidRequest("request needs a Content-Length header")
        try:
            length = int(length)
        except ValueError:
            self.close_connection = True
            raise InvalidRequest(f"bad Content-Length {length!r}") from None
        if length > self.app.max_body_bytes:
            # The body is never read; drop the connection after replying
            # rather than parsing a request that might not all arrive.
            self.close_connection = True
            raise _BodyTooLarge(
                f"request body of {length} bytes exceeds the "
                f"{self.app.max_body_bytes}-byte limit"
            )
        # Consume the body *before* any content-type validation can
        # raise, so an error reply leaves the connection aligned on the
        # next request boundary (keep-alive stays usable).
        body = self.rfile.read(length)
        content_type = self.headers.get("Content-Type")
        if content_type is not None:
            base = content_type.split(";", 1)[0].strip()
            if base != "application/x-repro-frame":
                raise InvalidRequest(f"unsupported content type {base!r}")
            if content_type.replace(" ", "") != codec.CONTENT_TYPE.replace(" ", ""):
                raise codec.CodecError(
                    f"content-type version mismatch: got {content_type!r}, "
                    f"this server speaks {codec.CONTENT_TYPE!r}"
                )
        return body

    def _forecast(self, model: str, *, single: bool) -> None:
        """Handle one forecast route: compute the full reply first, then
        write it in one place — request handling can fail into an error
        frame, but nothing may raise after response bytes start flowing.
        """
        app = self.app
        body = b""
        try:
            body = self._read_body()
            if not app.ready:
                raise _NotReady(f"worker {app.worker_label} is still warming up")
            starts, wire_trace = codec.decode_request_meta(body)
            if single and len(starts) != 1:
                raise InvalidRequest(
                    f"/v1/forecast takes exactly one window start (got "
                    f"{len(starts)}); use /v1/forecast_many for batches"
                )
            # The server span's id is pre-minted so scheduler/service
            # spans recorded while the request is in flight can already
            # parent under it; the span itself is recorded on the way
            # out, once its duration is known.
            recorder = get_recorder()
            server_ctx = None
            if wire_trace is not None and recorder.enabled:
                server_ctx = TraceContext(
                    wire_trace["id"], mint_span_id()
                )
                server_began = time.monotonic()
            # Submit all handles before awaiting any, so one wire request's
            # windows micro-batch together (and with concurrent requests).
            handles = [
                app.runtime.submit(model, s, trace=server_ctx) for s in starts
            ]
            blocks = [h.result(app.result_timeout_s) for h in handles]
            values = blocks[0] if single else np.stack(blocks, axis=0)
            status, payload = 200, codec.encode_array(values)
            if server_ctx is not None:
                recorder.record({
                    "trace": server_ctx.trace_id,
                    "span": server_ctx.span_id,
                    "parent": wire_trace["span"],
                    "name": "server.request",
                    "start": server_began,
                    "dur": time.monotonic() - server_began,
                    "wall": time.time(),
                    "attrs": {
                        "model": model,
                        "starts": len(starts),
                        "worker": app.worker_label,
                    },
                })
        except _BodyTooLarge as exc:
            status, payload = 413, codec.encode_error("body_too_large", str(exc))
        except _NotReady as exc:
            status, payload = 503, codec.encode_error("not_ready", str(exc))
        except BaseException as exc:  # noqa: BLE001 — becomes an error frame
            code, status = codec.exception_to_error(exc)
            payload = codec.encode_error(code, str(exc))
        self._send_frame(status, payload, bytes_in=len(body))


class _BodyTooLarge(InvalidRequest):
    """Internal: Content-Length exceeded the server bound (HTTP 413)."""


class _NotReady(ServingError):
    """Internal: forecast arrived before warm-up finished (HTTP 503)."""


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    #: Listen backlog.  socketserver's default of 5 drops SYNs when a
    #: high-fan-in client pool (load generators run 8-96 threads)
    #: connects at once; each dropped SYN costs the client a ~1 s
    #: kernel retransmit that dwarfs every request it then issues.
    request_queue_size = 128

    def __init__(self, address, app: "ForecastHTTPServer", reuse_port: bool) -> None:
        self.app = app
        self._reuse_port = reuse_port
        super().__init__(address, _Handler)

    def server_bind(self) -> None:
        if self._reuse_port:
            self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        super().server_bind()


class ForecastHTTPServer:
    """One bound HTTP server over one runtime.

    ``port=0`` binds an ephemeral port (read it back from :attr:`port`).
    The server starts **not ready**: ``/healthz`` answers 503 and
    forecast routes refuse with retryable ``not_ready`` frames until
    :meth:`set_ready` — the launcher calls it after warm-up so a load
    balancer (or the client's ``wait_ready``) never routes traffic to a
    cold worker.

    Use :meth:`start` for a background daemon thread (tests, in-process
    benchmarks) or :meth:`serve_forever` to block (worker processes).
    """

    def __init__(
        self,
        runtime: ServingRuntime,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        result_timeout_s: float | None = 60.0,
        reuse_port: bool = False,
        worker_label: str = "worker-0",
        counters: _TransportCounters | None = None,
    ) -> None:
        if max_body_bytes < 1:
            raise ValueError(f"max_body_bytes must be >= 1, got {max_body_bytes}")
        self.runtime = runtime
        self.max_body_bytes = max_body_bytes
        self.result_timeout_s = result_timeout_s
        self.worker_label = worker_label
        # Shareable so a worker's public listener and its private
        # control listener report one combined transport view.
        self.counters = counters if counters is not None else _TransportCounters()
        # Publish the transport counters on the runtime's /metrics
        # scrape; keyed by worker label so a re-created server (or a
        # second listener sharing the counters) replaces, not duplicates.
        runtime.metrics.register_collector(
            f"transport[{worker_label}]", self._transport_samples
        )
        self._ready = threading.Event()
        self._server = _Server((host, port), self, reuse_port)
        self._thread: threading.Thread | None = None
        self._started = False
        self._closed = False

    def _transport_samples(self):
        snapshot = self.counters.snapshot()
        labels = {"worker": self.worker_label}
        yield ("repro_transport_requests_total", labels, snapshot["requests"])
        yield ("repro_transport_errors_total", labels, snapshot["errors"])
        yield ("repro_transport_bytes_in_total", labels, snapshot["bytes_in"])
        yield ("repro_transport_bytes_out_total", labels, snapshot["bytes_out"])

    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def ready(self) -> bool:
        return self._ready.is_set()

    def set_ready(self, ready: bool = True) -> None:
        if ready:
            self._ready.set()
        else:
            self._ready.clear()

    # ------------------------------------------------------------------
    def start(self) -> "ForecastHTTPServer":
        """Serve on a background daemon thread; returns self."""
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"http[{self.worker_label}]",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown`."""
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        self._server.serve_forever()

    def shutdown(self) -> None:
        """Stop accepting, close the listener.  Idempotent.

        Does *not* shut the runtime down — draining in-flight scheduler
        work is the launcher's job (it owns the runtime lifecycle).
        """
        if self._closed:
            return
        self._closed = True
        if self._started:
            # Only a serve loop that ran (or will run: serve_forever
            # checks the request flag on entry) can acknowledge the
            # shutdown handshake; signalling a never-started server
            # would block forever on its is-shut-down event.
            self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def __enter__(self) -> "ForecastHTTPServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
